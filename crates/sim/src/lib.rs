//! Process-model simulation and synthetic workflow-log generation — the
//! substrate that stands in for the paper's IBM Flowmark installation.
//!
//! Section 2 of the paper defines a business process as a directed graph
//! of activities with an output function per activity and a Boolean
//! condition per edge; §8.1 describes the synthetic-data generator used
//! for the evaluation. This crate implements both:
//!
//! * [`ProcessModel`] / [`ProcessModelBuilder`] — annotated activity
//!   graphs (Definition 1) with per-edge [`Condition`]s and per-activity
//!   [`OutputSpec`]s;
//! * [`engine`] — a Flowmark-style execution engine: condition-driven
//!   control flow with AND-joins and dead-path elimination, producing
//!   timestamped [`WorkflowLog`](procmine_log::WorkflowLog)s with output
//!   vectors (the input to conditions mining);
//! * [`walk`] — the paper's §8.1 random-walk log generator (ready-list
//!   with random selection), used for the Table 1/2 experiments;
//! * [`randdag`] — the random process-graph generator behind the
//!   synthetic datasets;
//! * [`noise`] — §6-style log corruption (swapped, dropped, inserted
//!   activities);
//! * [`presets`] — fixed process models: the Figure 7 `Graph10` and
//!   stand-ins for the five Flowmark processes of Table 3, with the
//!   paper's vertex/edge counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condition;
mod error;
mod model;
mod output;

pub mod annotate;
pub mod engine;
pub mod noise;
pub mod presets;
pub mod randdag;
pub mod textfmt;
pub mod walk;

pub use condition::{CmpOp, Condition};
pub use error::ModelError;
pub use model::{ProcessModel, ProcessModelBuilder};
pub use output::OutputSpec;
