//! A minimal, std-only stand-in for
//! [`criterion`](https://crates.io/crates/criterion), vendored because
//! this build environment has no registry access.
//!
//! Provides the group/bencher API surface the workspace's benches use,
//! backed by a plain wall-clock timing loop (fixed warm-up, fixed
//! sample count, median-of-samples reporting) instead of criterion's
//! statistical machinery. Benches compiled with `harness = false` run
//! as normal binaries and print one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs the timing loop.
pub struct Bencher {
    /// Nanoseconds per iteration for each timed sample.
    samples_ns: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms have elapsed to stabilize caches,
        // measuring how many iterations fit a sample.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        // Aim each sample at ~10ms of work.
        let iters_per_sample = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        if s.is_empty() {
            return 0.0;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.into_benchmark_id().id, &bencher);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        let ns = bencher.median_ns();
        let mut line = format!("{}/{}  {}", self.name, id, format_ns(ns));
        if ns > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 / (ns / 1e9);
                    let _ = write!(line, "  ({per_sec:.0} elem/s)");
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
                    let _ = write!(line, "  ({per_sec:.1} MiB/s)");
                }
                None => {}
            }
        }
        self.criterion.lines.push(line.clone());
        println!("{line}");
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`] for `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(!c.lines.is_empty());
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
