//! Deprecated pre-session entry points, kept for one release.
//!
//! These twins hand-threaded `(sink, tracer)` through the call; the
//! session-based forms ([`learn_edge_conditions_in`] and
//! [`DecisionTree::fit_with`]) replace them. Migrate by building a
//! [`MineSession`] once:
//!
//! ```
//! use procmine_classify::{learn_edge_conditions_in, ClassifyMetrics, TreeConfig};
//! use procmine_core::{mine_general_dag, MineSession, MinerOptions};
//! # use procmine_log::WorkflowLog;
//! # let log = WorkflowLog::from_strings(["ABC", "AC"]).unwrap();
//! let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
//! let mut metrics = ClassifyMetrics::new();
//! let mut session = MineSession::new().with_sink(&mut metrics);
//! let learned = learn_edge_conditions_in(&mut session, &model, &log, &TreeConfig::default());
//! ```

use crate::learn::{learn_edge_conditions_in, LearnedCondition};
use crate::telemetry::ClassifyMetrics;
use crate::{Dataset, DecisionTree, TreeConfig};
use procmine_core::{MetricsSink, MineSession, MinedModel, Tracer};
use procmine_log::WorkflowLog;

/// Deprecated spelling of [`learn_edge_conditions_in`]: wraps `sink`
/// and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `learn_edge_conditions_in` instead")]
pub fn learn_edge_conditions_instrumented<S: MetricsSink<ClassifyMetrics>>(
    model: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
    sink: &mut S,
    tracer: &Tracer,
) -> Vec<LearnedCondition> {
    let mut session = MineSession::new()
        .with_tracer(tracer.clone())
        .with_sink(sink);
    learn_edge_conditions_in(&mut session, model, log, cfg)
}

impl DecisionTree {
    /// Deprecated spelling of [`fit_with`](DecisionTree::fit_with).
    #[deprecated(note = "renamed to `DecisionTree::fit_with`")]
    pub fn fit_instrumented<S: MetricsSink<ClassifyMetrics>>(
        ds: &Dataset,
        cfg: &TreeConfig,
        sink: &mut S,
    ) -> Self {
        Self::fit_with(ds, cfg, sink)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::learn_edge_conditions;
    use procmine_core::{mine_general_dag, MinerOptions};

    #[test]
    fn deprecated_twins_match_session_forms() {
        let log = procmine_log::WorkflowLog::from_strings(["ABC", "ABC", "AC"]).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let plain = learn_edge_conditions(&model, &log, &TreeConfig::default());
        let mut metrics = ClassifyMetrics::new();
        let shimmed = learn_edge_conditions_instrumented(
            &model,
            &log,
            &TreeConfig::default(),
            &mut metrics,
            &Tracer::disabled(),
        );
        assert_eq!(plain.len(), shimmed.len());
        assert_eq!(metrics.edges_considered, model.edge_count() as u64);

        let ds = Dataset::from_rows(vec![(vec![1], false), (vec![9], true)]).unwrap();
        let mut metrics = ClassifyMetrics::new();
        let tree = DecisionTree::fit_instrumented(&ds, &TreeConfig::default(), &mut metrics);
        assert_eq!(tree.accuracy(&ds), 1.0);
        assert_eq!(metrics.trees_fitted, 1);
    }
}
