//! Path analytics over DAGs: route counting, longest (critical) path,
//! and bounded simple-path enumeration.
//!
//! For a mined process graph these answer practical questions: how many
//! distinct activity routes does the model admit (a proxy for the
//! "extraneous executions" the paper's open problem discusses), and
//! what is the longest dependency chain (the process' critical path).

use crate::topo::topological_sort;
use crate::{DiGraph, GraphError, NodeId};

/// Number of distinct directed paths from `from` to `to` (0 if
/// unreachable; 1 for `from == to`, the empty path). DAG only. Counts
/// saturate at `u128::MAX` rather than overflowing.
pub fn count_paths<N>(g: &DiGraph<N>, from: NodeId, to: NodeId) -> Result<u128, GraphError> {
    let order = topological_sort(g)?;
    let mut counts = vec![0u128; g.node_count()];
    counts[from.index()] = 1;
    for &v in &order {
        if counts[v.index()] == 0 {
            continue;
        }
        let c = counts[v.index()];
        for &s in g.successors(v) {
            counts[s.index()] = counts[s.index()].saturating_add(c);
        }
    }
    Ok(counts[to.index()])
}

/// A longest path from `from` to `to` by edge count (the process'
/// critical dependency chain). Returns `None` if `to` is unreachable;
/// `Some([from])` when `from == to`. DAG only; ties broken by node id
/// (deterministic).
pub fn longest_path<N>(
    g: &DiGraph<N>,
    from: NodeId,
    to: NodeId,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    let order = topological_sort(g)?;
    const UNREACHED: i64 = i64::MIN;
    let mut dist = vec![UNREACHED; g.node_count()];
    let mut pred: Vec<Option<NodeId>> = vec![None; g.node_count()];
    dist[from.index()] = 0;
    for &v in &order {
        if dist[v.index()] == UNREACHED {
            continue;
        }
        for &s in g.successors(v) {
            if dist[v.index()] + 1 > dist[s.index()] {
                dist[s.index()] = dist[v.index()] + 1;
                pred[s.index()] = Some(v);
            }
        }
    }
    if dist[to.index()] == UNREACHED {
        return Ok(None);
    }
    let mut path = vec![to];
    let mut cur = to;
    while let Some(p) = pred[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Ok(Some(path))
}

/// All simple paths from `from` to `to`, stopping after `limit` paths
/// (enumeration can be exponential). Works on any graph — cycles are
/// avoided by the simple-path constraint. Paths come out in DFS order
/// over ascending successor ids.
pub fn all_simple_paths<N>(
    g: &DiGraph<N>,
    from: NodeId,
    to: NodeId,
    limit: usize,
) -> Vec<Vec<NodeId>> {
    let mut result = Vec::new();
    let mut on_path = vec![false; g.node_count()];
    let mut path = vec![from];
    on_path[from.index()] = true;
    dfs(g, to, limit, &mut path, &mut on_path, &mut result);
    result
}

fn dfs<N>(
    g: &DiGraph<N>,
    to: NodeId,
    limit: usize,
    path: &mut Vec<NodeId>,
    on_path: &mut [bool],
    result: &mut Vec<Vec<NodeId>>,
) {
    if result.len() >= limit {
        return;
    }
    // The caller seeds `path` with the source before recursing, and
    // every frame pushes before descending — the path is never empty.
    #[allow(clippy::expect_used)]
    let v = *path.last().expect("path non-empty");
    if v == to {
        result.push(path.clone());
        return;
    }
    for &s in g.successors(v) {
        if !on_path[s.index()] {
            on_path[s.index()] = true;
            path.push(s);
            dfs(g, to, limit, path, on_path, result);
            path.pop();
            on_path[s.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<()> {
        // 0→1→3, 0→2→3, plus 0→3 shortcut.
        DiGraph::from_edges(vec![(); 4], [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])
    }

    #[test]
    fn counts_routes() {
        let g = diamond();
        assert_eq!(count_paths(&g, NodeId::new(0), NodeId::new(3)).unwrap(), 3);
        assert_eq!(count_paths(&g, NodeId::new(1), NodeId::new(2)).unwrap(), 0);
        assert_eq!(count_paths(&g, NodeId::new(0), NodeId::new(0)).unwrap(), 1);
    }

    #[test]
    fn count_saturates_instead_of_overflowing() {
        // A ladder of n diamonds has 2^n paths; build enough to stress
        // but not overflow, then verify exact doubling.
        let n = 20;
        let mut g: DiGraph<()> = DiGraph::new();
        let mut prev = g.add_node(());
        for _ in 0..n {
            let a = g.add_node(());
            let b = g.add_node(());
            let join = g.add_node(());
            g.add_edge(prev, a);
            g.add_edge(prev, b);
            g.add_edge(a, join);
            g.add_edge(b, join);
            prev = join;
        }
        assert_eq!(count_paths(&g, NodeId::new(0), prev).unwrap(), 1u128 << n);
    }

    #[test]
    fn longest_path_is_critical_chain() {
        let g = diamond();
        let path = longest_path(&g, NodeId::new(0), NodeId::new(3))
            .unwrap()
            .unwrap();
        assert_eq!(path.len(), 3, "0→1→3 or 0→2→3 beats the shortcut");
        assert_eq!(path[0], NodeId::new(0));
        assert_eq!(path[2], NodeId::new(3));
        assert_eq!(
            longest_path(&g, NodeId::new(3), NodeId::new(0)).unwrap(),
            None
        );
        assert_eq!(
            longest_path(&g, NodeId::new(0), NodeId::new(0)).unwrap(),
            Some(vec![NodeId::new(0)])
        );
    }

    #[test]
    fn cyclic_graphs_rejected_by_dp_functions() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 1), (1, 0)]);
        assert!(count_paths(&g, NodeId::new(0), NodeId::new(1)).is_err());
        assert!(longest_path(&g, NodeId::new(0), NodeId::new(1)).is_err());
    }

    #[test]
    fn enumerates_simple_paths_with_limit() {
        let g = diamond();
        let paths = all_simple_paths(&g, NodeId::new(0), NodeId::new(3), 10);
        assert_eq!(paths.len(), 3);
        // DFS order over ascending successors: via 1, via 2, direct.
        assert_eq!(
            paths[0],
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        let capped = all_simple_paths(&g, NodeId::new(0), NodeId::new(3), 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn simple_paths_handle_cycles() {
        // 0→1→2 with a 1⇄2 cycle: simple paths don't revisit.
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (2, 1)]);
        let paths = all_simple_paths(&g, NodeId::new(0), NodeId::new(2), 10);
        assert_eq!(
            paths,
            vec![vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]]
        );
    }
}
