//! Streaming/online ingestion: event sinks, composable stages, and the
//! interleaved case assembler.
//!
//! The batch codecs materialize a whole [`WorkflowLog`](crate::WorkflowLog)
//! before any miner runs; the paper's motivating scenario — "evolution
//! of the current process model … by incorporating feedback from
//! successful process executions" — instead wants executions delivered
//! to a consumer *as they complete* out of an unbounded event stream.
//! This module provides that layer:
//!
//! * [`StreamSink`] — anything that consumes a stream of parsed
//!   [`EventRecord`]s (with their source locations);
//! * [`Observer`] — anything that consumes *completed executions*
//!   (the online miner's side of the contract; closures implement it);
//! * [`stages`] — composable [`StreamSink`] adapters: [`Filter`],
//!   [`Repair`], [`Validate`], [`Stats`];
//! * [`CaseAssembler`] — the interleaved case assembler: a keyed
//!   open-case map under a bounded memory window, replacing the
//!   contiguous-cases assumption of
//!   [`codec::stream::ExecutionStream`](crate::codec::stream::ExecutionStream);
//! * [`FlowmarkSource`] — a pull-based Flowmark event source with the
//!   same [`RecoveryPolicy`](crate::RecoveryPolicy) /
//!   [`IngestReport`](crate::IngestReport) semantics as the batch
//!   codecs;
//! * [`TailReader`] — a [`std::io::Read`] adapter that follows a
//!   growing file (`procmine mine --follow`) with bounded retry
//!   ([`RetryPolicy`]) and truncation detection;
//! * [`checkpoint`] — the crash-safe checkpoint envelope (magic,
//!   version, CRC-32, atomic tmp+fsync+rename writes) and the wire
//!   codec used to persist resumable state such as
//!   [`AssemblerState`].
//!
//! A typical pipeline:
//!
//! ```
//! use procmine_log::stream::{CaseAssembler, AssemblerConfig, FlowmarkSource, StreamError};
//! use procmine_log::RecoveryPolicy;
//!
//! let text = "p1,A,START,0\np2,B,START,0\np1,A,END,1\np2,B,END,1\n";
//! let mut seen = Vec::new();
//! let mut assembler = CaseAssembler::new(
//!     AssemblerConfig::default(),
//!     |exec: &procmine_log::Execution, table: &procmine_log::ActivityTable| {
//!         seen.push(exec.display(table));
//!         Ok::<(), StreamError>(())
//!     },
//! );
//! let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
//! source.pump(&mut assembler).unwrap();
//! drop(assembler);
//! assert_eq!(seen, ["A", "B"]);
//! ```

pub mod assembler;
pub mod checkpoint;
pub mod source;
pub mod stages;
pub mod tail;

pub use assembler::{
    AssemblerConfig, AssemblerState, CaseAssembler, OpenCaseState, DEFAULT_OPEN_CASE_WINDOW,
};
pub use checkpoint::{CheckpointError, WireError, WireReader, WireWriter};
pub use source::FlowmarkSource;
pub use stages::{Filter, Repair, Stats, StreamStats, Validate};
pub use tail::{RetryPolicy, TailReader, TailStats};

use crate::{ActivityTable, EventRecord, Execution, LogError};

/// Where an event sat in the source stream — threaded alongside each
/// record so downstream stages can report problems with the same
/// byte-offset/line precision as the batch codecs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceLocation {
    /// Byte offset of the record's start in the source stream.
    pub byte_offset: u64,
    /// 1-based line number (0 when unknown / synthesized).
    pub line: usize,
}

/// Error from a streaming pipeline: a log-layer problem (parse,
/// assembly, I/O) or a failure in a downstream consumer (e.g. the
/// online miner rejecting an execution).
#[derive(Debug)]
pub enum StreamError {
    /// A problem in the log layer itself.
    Log(LogError),
    /// A downstream sink or observer failed.
    Sink(Box<dyn std::error::Error + Send + Sync>),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Log(e) => write!(f, "{e}"),
            StreamError::Sink(e) => write!(f, "stream consumer failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Log(e) => Some(e),
            StreamError::Sink(e) => Some(e.as_ref()),
        }
    }
}

impl From<LogError> for StreamError {
    fn from(e: LogError) -> Self {
        StreamError::Log(e)
    }
}

/// Consumes a stream of parsed event records. Implementations are
/// composable: the [`stages`] adapters wrap a downstream sink and
/// forward (possibly transformed) events to it, and
/// [`CaseAssembler`] terminates a chain by turning events into
/// completed executions for an [`Observer`].
pub trait StreamSink {
    /// Consumes one event record.
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError>;

    /// Signals end of input: flush any buffered state downstream.
    /// Called exactly once, after the last [`StreamSink::on_event`].
    fn finish(&mut self) -> Result<(), StreamError>;
}

/// Consumes executions as they complete out of an event stream.
///
/// Closures of type
/// `FnMut(&Execution, &ActivityTable) -> Result<(), StreamError>`
/// implement this trait, so ad-hoc consumers need no named type.
pub trait Observer {
    /// Called once per completed (or salvaged-at-eviction) execution.
    /// `table` is the assembler's activity table, which grows as the
    /// stream is consumed; ids in `exec` are relative to it.
    fn on_execution(&mut self, exec: &Execution, table: &ActivityTable) -> Result<(), StreamError>;

    /// Called when the assembler's memory bound evicts a case that was
    /// still structurally incomplete (open STARTs or dangling ENDs).
    /// The salvageable part of the case is still delivered through
    /// [`Observer::on_execution`]. Default: ignore.
    fn on_eviction(&mut self, _case: &str, _buffered_events: usize) {}
}

impl<F> Observer for F
where
    F: FnMut(&Execution, &ActivityTable) -> Result<(), StreamError>,
{
    fn on_execution(&mut self, exec: &Execution, table: &ActivityTable) -> Result<(), StreamError> {
        self(exec, table)
    }
}
