//! Pipeline telemetry: monotonic stage timers and counters for the
//! miners, behind a sink trait that is zero-cost when disabled.
//!
//! Every miner has an `*_instrumented` twin taking a
//! [`MetricsSink`]. The plain entry points pass [`NullSink`], whose
//! `ENABLED = false` constant lets the instrumentation monomorphize
//! away entirely — the hot loops compile to the same code as before the
//! telemetry layer existed. Passing a [`MinerMetrics`] collects:
//!
//! * wall-clock nanoseconds per pipeline [`Stage`] (summed across
//!   threads in the parallel miner, so parallel stage times read as CPU
//!   time, not elapsed time);
//! * the counters of [`MinerMetrics`] — executions scanned, pairs
//!   counted, edge populations before/after the noise threshold,
//!   two-cycles dissolved, nontrivial SCCs dissolved, edges dropped by
//!   the per-execution transitive reduction, and final edge count.
//!
//! [`MinerMetrics::to_json`] renders a machine-readable report with a
//! stable key order (locked by a unit test, so downstream golden tests
//! can depend on it); [`MinerMetrics::render_table`] renders the same
//! data as a human-readable table. Codec-level byte/event counts live
//! in `procmine_log::codec::CodecStats` (the log crate cannot depend on
//! this one); the CLI merges both reports.

use std::fmt;
use std::time::Instant;

/// The pipeline stages timed by the instrumented miners.
///
/// Not every algorithm exercises every stage: Algorithm 1 has no
/// separate lowering pass (it lowers while counting) and no marking
/// pass (its step 4 is a global transitive reduction, timed as
/// [`Stage::Reduce`]). Untouched stages report zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Lowering the log to dense vertex ids (instance labeling, for the
    /// cyclic miner).
    Lower,
    /// Step 2: scanning executions and counting ordered/overlapping
    /// pairs.
    CountPairs,
    /// Steps 3–4: noise thresholding, two-cycle removal, and SCC
    /// dissolution.
    Prune,
    /// Transitive reduction: the per-execution marking pass of steps
    /// 5–6 (Algorithms 2–3) or the global reduction of Algorithm 1.
    Reduce,
    /// Final assembly of the named model graph and its edge support.
    Assemble,
}

impl Stage {
    /// Number of stages (size of the timer array).
    pub const COUNT: usize = 5;

    /// All stages, in reporting order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Lower,
        Stage::CountPairs,
        Stage::Prune,
        Stage::Reduce,
        Stage::Assemble,
    ];

    /// Stable machine-readable name, used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lower => "lower",
            Stage::CountPairs => "count_pairs",
            Stage::Prune => "prune",
            Stage::Reduce => "reduce",
            Stage::Assemble => "assemble",
        }
    }
}

/// Counters and stage timings collected by one mining run.
///
/// Counters accumulate: reusing one `MinerMetrics` across several runs
/// (as the CLI's streaming mode does per snapshot) sums them, and
/// [`merge`](Self::merge) folds per-thread metrics together the same
/// way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MinerMetrics {
    /// Nanoseconds per stage, indexed by `Stage as usize`.
    stage_nanos: [u64; Stage::COUNT],
    /// Executions scanned by the step-2 counting pass.
    pub executions_scanned: u64,
    /// Pair observations recorded in step 2 (`k·(k−1)/2` per execution
    /// of length `k` — each unordered instance pair is inspected once).
    pub pairs_counted: u64,
    /// Ordered pairs with at least one observation, before the noise
    /// threshold is applied.
    pub edges_before_threshold: u64,
    /// Edges surviving the threshold (step 3, before two-cycle
    /// removal).
    pub edges_after_threshold: u64,
    /// Mutual edge pairs dissolved as two-cycles (each pair counts
    /// once).
    pub two_cycles_dissolved: u64,
    /// Nontrivial strongly connected components dissolved in step 4.
    pub scc_count: u64,
    /// Edges dropped because no execution's transitive reduction needed
    /// them (step 6), or by Algorithm 1's global reduction.
    pub edges_dropped_by_reduction: u64,
    /// Edges in the final mined graph (vertex-level, before the cyclic
    /// miner's instance merge).
    pub edges_final: u64,
}

impl MinerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        MinerMetrics::default()
    }

    /// Adds `nanos` to a stage timer.
    pub fn add_stage_nanos(&mut self, stage: Stage, nanos: u64) {
        self.stage_nanos[stage as usize] += nanos;
    }

    /// Nanoseconds accumulated for a stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }

    /// Folds another metrics value into this one (all counters and
    /// timers add). Used to merge per-thread metrics at the parallel
    /// miner's join barriers.
    pub fn merge(&mut self, other: &MinerMetrics) {
        for (t, o) in self.stage_nanos.iter_mut().zip(other.stage_nanos) {
            *t += o;
        }
        self.executions_scanned += other.executions_scanned;
        self.pairs_counted += other.pairs_counted;
        self.edges_before_threshold += other.edges_before_threshold;
        self.edges_after_threshold += other.edges_after_threshold;
        self.two_cycles_dissolved += other.two_cycles_dissolved;
        self.scc_count += other.scc_count;
        self.edges_dropped_by_reduction += other.edges_dropped_by_reduction;
        self.edges_final += other.edges_final;
    }

    /// The counters as `(name, value)` pairs in the stable reporting
    /// order used by [`to_json`](Self::to_json) — the single source of
    /// truth for the JSON schema.
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("executions_scanned", self.executions_scanned),
            ("pairs_counted", self.pairs_counted),
            ("edges_before_threshold", self.edges_before_threshold),
            ("edges_after_threshold", self.edges_after_threshold),
            ("two_cycles_dissolved", self.two_cycles_dissolved),
            ("scc_count", self.scc_count),
            (
                "edges_dropped_by_reduction",
                self.edges_dropped_by_reduction,
            ),
            ("edges_final", self.edges_final),
        ]
    }

    /// The stage timers as `(name, nanos)` pairs in reporting order.
    pub fn stages(&self) -> [(&'static str, u64); Stage::COUNT] {
        Stage::ALL.map(|s| (s.name(), self.stage_nanos(s)))
    }

    /// Writes the two JSON fields `"counters":{…},"stages_ns":{…}`
    /// (no surrounding braces) so callers can splice additional
    /// sibling fields — the CLI prepends its codec stats.
    pub fn write_json_fields(&self, out: &mut String) {
        fn obj(out: &mut String, name: &str, pairs: &[(&'static str, u64)]) {
            out.push('"');
            out.push_str(name);
            out.push_str("\":{");
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(key);
                out.push_str("\":");
                out.push_str(&value.to_string());
            }
            out.push('}');
        }
        obj(out, "counters", &self.counters());
        out.push(',');
        obj(out, "stages_ns", &self.stages());
    }

    /// Machine-readable JSON report with a stable key order (suitable
    /// for golden tests, modulo the timing values).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        self.write_json_fields(&mut out);
        out.push('}');
        out
    }

    /// Human-readable two-column table of stages and counters.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("stage                         time\n");
        for (name, nanos) in self.stages() {
            out.push_str(&format!("  {name:<26}  {}\n", format_nanos(nanos)));
        }
        out.push_str("counter                       value\n");
        for (name, value) in self.counters() {
            out.push_str(&format!("  {name:<26}  {value}\n"));
        }
        out
    }
}

impl fmt::Display for MinerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

fn format_nanos(nanos: u64) -> String {
    let ns = nanos as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A destination for miner telemetry.
///
/// The `*_instrumented` miners are generic over this trait and guard
/// every measurement behind `Self::ENABLED`, a compile-time constant:
/// with [`NullSink`] the guards are `if false` and the instrumentation
/// vanishes at monomorphization, so the plain entry points pay nothing.
pub trait MetricsSink {
    /// Whether this sink records anything. Instrumentation code checks
    /// this constant before doing measurement work.
    const ENABLED: bool;

    /// Applies `update` to the underlying metrics; a no-op when
    /// disabled.
    fn record(&mut self, update: impl FnOnce(&mut MinerMetrics));
}

/// The disabled sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _update: impl FnOnce(&mut MinerMetrics)) {}
}

impl MetricsSink for MinerMetrics {
    const ENABLED: bool = true;

    fn record(&mut self, update: impl FnOnce(&mut MinerMetrics)) {
        update(self);
    }
}

/// Starts a stage timer if the sink is enabled (monomorphizes to `None`
/// for [`NullSink`]).
pub(crate) fn stage_start<S: MetricsSink>() -> Option<Instant> {
    S::ENABLED.then(Instant::now)
}

/// Closes a stage timer opened by [`stage_start`], crediting the
/// elapsed nanoseconds to `stage`.
pub(crate) fn stage_end<S: MetricsSink>(sink: &mut S, stage: Stage, started: Option<Instant>) {
    if let Some(started) = started {
        let nanos = started.elapsed().as_nanos() as u64;
        sink.record(|m| m.add_stage_nanos(stage, nanos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MinerMetrics {
        let mut m = MinerMetrics::new();
        m.add_stage_nanos(Stage::Lower, 10);
        m.add_stage_nanos(Stage::CountPairs, 20);
        m.add_stage_nanos(Stage::Prune, 30);
        m.add_stage_nanos(Stage::Reduce, 40);
        m.add_stage_nanos(Stage::Assemble, 50);
        m.executions_scanned = 1;
        m.pairs_counted = 2;
        m.edges_before_threshold = 3;
        m.edges_after_threshold = 4;
        m.two_cycles_dissolved = 5;
        m.scc_count = 6;
        m.edges_dropped_by_reduction = 7;
        m.edges_final = 8;
        m
    }

    #[test]
    fn json_schema_is_locked() {
        // This string is the contract for downstream golden tests: key
        // order and spelling must not change without a migration.
        assert_eq!(
            sample().to_json(),
            "{\"counters\":{\
             \"executions_scanned\":1,\
             \"pairs_counted\":2,\
             \"edges_before_threshold\":3,\
             \"edges_after_threshold\":4,\
             \"two_cycles_dissolved\":5,\
             \"scc_count\":6,\
             \"edges_dropped_by_reduction\":7,\
             \"edges_final\":8},\
             \"stages_ns\":{\
             \"lower\":10,\
             \"count_pairs\":20,\
             \"prune\":30,\
             \"reduce\":40,\
             \"assemble\":50}}"
        );
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.stage_nanos(Stage::Lower), 20);
        assert_eq!(a.stage_nanos(Stage::Assemble), 100);
        assert_eq!(a.executions_scanned, 2);
        assert_eq!(a.edges_final, 16);
    }

    #[test]
    fn default_is_all_zero() {
        let m = MinerMetrics::default();
        assert!(m.counters().iter().all(|&(_, v)| v == 0));
        assert!(m.stages().iter().all(|&(_, v)| v == 0));
    }

    // The disabled path is a compile-time property.
    const _: () = assert!(!NullSink::ENABLED);
    const _: () = assert!(MinerMetrics::ENABLED);

    #[test]
    fn null_sink_records_nothing() {
        let mut sink = NullSink;
        sink.record(|m| m.edges_final += 1);
        // And timers never even start.
        assert!(stage_start::<NullSink>().is_none());
    }

    #[test]
    fn metrics_sink_records() {
        let mut m = MinerMetrics::new();
        m.record(|m| m.edges_final += 3);
        assert_eq!(m.edges_final, 3);
        let started = stage_start::<MinerMetrics>();
        assert!(started.is_some());
        stage_end(&mut m, Stage::Prune, started);
        // Elapsed time is monotonic, possibly zero on coarse clocks —
        // just assert it was credited without panicking.
        let _ = m.stage_nanos(Stage::Prune);
    }

    #[test]
    fn table_lists_all_keys() {
        let table = sample().render_table();
        for (name, _) in sample().counters() {
            assert!(table.contains(name), "missing counter {name}");
        }
        for stage in Stage::ALL {
            assert!(
                table.contains(stage.name()),
                "missing stage {}",
                stage.name()
            );
        }
    }

    #[test]
    fn json_round_trips_through_serde_value() {
        // The report must stay parseable JSON.
        let parsed: serde_json::Value = serde_json::from_str(&sample().to_json()).unwrap();
        match parsed {
            serde_json::Value::Map(fields) => assert_eq!(fields.len(), 2),
            other => panic!("expected object, got {other:?}"),
        }
    }
}
