//! The perfsuite schema: summarized timing cells, JSON serialization,
//! and baseline comparison for the `perfsuite` binary.
//!
//! A perfsuite run produces a `BENCH_perfsuite.json` with a stable
//! schema (`procmine-perfsuite/v1`): one cell per `(scenario, stage)`
//! with median and p95 wall times over a fixed number of repeats, plus
//! a trace-overhead measurement guarding the zero-cost claim of the
//! disabled tracer. [`compare`] diffs two reports cell-by-cell and
//! flags median regressions beyond a threshold, so CI (or a developer
//! with a saved baseline) can catch slowdowns without eyeballing
//! Criterion output.

use serde_json::Value;

/// The schema tag written to (and required of) every perfsuite report.
pub const SCHEMA: &str = "procmine-perfsuite/v1";

/// Summarized timings for one `(scenario, stage)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Workload name, e.g. `rw25x224m1000`.
    pub scenario: String,
    /// Pipeline stage or operation, e.g. `mine.general`.
    pub stage: String,
    /// Median wall time across the runs, in nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile wall time (nearest rank), in nanoseconds.
    pub p95_ns: u64,
    /// Number of timed runs behind the summary.
    pub runs: usize,
    /// Under `--normalize`: this cell's median as a multiple of the
    /// same-scenario `mine.general` median. `None` when not
    /// normalizing, or when the scenario has no `mine.general` cell
    /// (the `micro` graph phases).
    pub ratio_vs_general: Option<f64>,
}

/// The disabled-tracer overhead guard: the plain entry point against
/// a session carrying a disabled tracer, same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOverhead {
    /// Median of the plain (un-traced) mining calls.
    pub plain_median_ns: u64,
    /// Median of the session calls with `Tracer::disabled()`.
    pub traced_disabled_median_ns: u64,
    /// `traced_disabled / plain`; ~1.0 when disabled tracing is free.
    pub ratio: f64,
}

/// The disabled-registry overhead guard: the plain entry point against
/// a session explicitly carrying `Registry::disabled()`, same workload
/// — the metrics twin of [`TraceOverhead`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryOverhead {
    /// Median of the plain (un-metered) mining calls.
    pub plain_median_ns: u64,
    /// Median of the session calls with `Registry::disabled()`.
    pub registry_disabled_median_ns: u64,
    /// `registry_disabled / plain`; ~1.0 when the disabled registry is
    /// free.
    pub ratio: f64,
}

/// A full perfsuite report.
#[derive(Debug, Clone)]
pub struct Report {
    /// `smoke` or `full`.
    pub mode: String,
    /// Repeats per cell.
    pub repeats: usize,
    /// One summarized cell per `(scenario, stage)`.
    pub cells: Vec<Cell>,
    /// The disabled-tracer overhead guard, when measured.
    pub trace_overhead: Option<TraceOverhead>,
    /// The disabled-registry overhead guard, when measured.
    pub registry_overhead: Option<RegistryOverhead>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Collapses raw samples into a [`Cell`].
pub fn summarize(scenario: &str, stage: &str, mut samples: Vec<u64>) -> Cell {
    samples.sort_unstable();
    Cell {
        scenario: scenario.to_string(),
        stage: stage.to_string(),
        median_ns: percentile(&samples, 50),
        p95_ns: percentile(&samples, 95),
        runs: samples.len(),
        ratio_vs_general: None,
    }
}

/// Fills each cell's `ratio_vs_general` with its median relative to the
/// same-scenario `mine.general` median — the serial reference pipeline
/// everything else is judged against. Cells in scenarios without a
/// (nonzero-median) `mine.general` cell stay `None`.
pub fn normalize(cells: &mut [Cell]) {
    let generals: Vec<(String, u64)> = cells
        .iter()
        .filter(|c| c.stage == "mine.general" && c.median_ns > 0)
        .map(|c| (c.scenario.clone(), c.median_ns))
        .collect();
    for c in cells.iter_mut() {
        c.ratio_vs_general = generals
            .iter()
            .find(|(s, _)| *s == c.scenario)
            .map(|&(_, g)| c.median_ns as f64 / g as f64);
    }
}

impl Report {
    /// Renders the report as schema-stable JSON (keys in fixed order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 96);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"mode\": \"");
        out.push_str(&self.mode);
        out.push_str("\",\n  \"repeats\": ");
        out.push_str(&self.repeats.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"scenario\": \"{}\", \"stage\": \"{}\", \
                 \"median_ns\": {}, \"p95_ns\": {}, \"runs\": {}",
                c.scenario, c.stage, c.median_ns, c.p95_ns, c.runs
            ));
            if let Some(r) = c.ratio_vs_general {
                out.push_str(&format!(", \"ratio_vs_general\": {r:.4}"));
            }
            out.push('}');
        }
        out.push_str("\n  ]");
        if let Some(t) = &self.trace_overhead {
            out.push_str(&format!(
                ",\n  \"trace_overhead\": {{\"plain_median_ns\": {}, \
                 \"traced_disabled_median_ns\": {}, \"ratio\": {:.4}}}",
                t.plain_median_ns, t.traced_disabled_median_ns, t.ratio
            ));
        }
        if let Some(r) = &self.registry_overhead {
            out.push_str(&format!(
                ",\n  \"registry_overhead\": {{\"plain_median_ns\": {}, \
                 \"registry_disabled_median_ns\": {}, \"ratio\": {:.4}}}",
                r.plain_median_ns, r.registry_disabled_median_ns, r.ratio
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses and validates a report previously written by
    /// [`Report::to_json`]. Errors describe the first schema violation.
    pub fn from_json(json: &str) -> Result<Report, String> {
        let value: Value = serde_json::from_str(json).map_err(|e| format!("not JSON: {e}"))?;
        let schema = match value.get("schema") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("missing `schema` field".to_string()),
        };
        if schema != SCHEMA {
            return Err(format!("schema mismatch: `{schema}` (want `{SCHEMA}`)"));
        }
        let mode = match value.get("mode") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("missing `mode` field".to_string()),
        };
        let repeats = value
            .get("repeats")
            .and_then(Value::as_u64)
            .ok_or("missing `repeats` field")? as usize;
        let raw_cells = match value.get("cells") {
            Some(Value::Seq(cells)) => cells,
            _ => return Err("missing `cells` array".to_string()),
        };
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let field_str = |key: &str| -> Result<String, String> {
                match c.get(key) {
                    Some(Value::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("cell {i}: missing `{key}`")),
                }
            };
            let field_u64 = |key: &str| -> Result<u64, String> {
                c.get(key)
                    .and_then(Value::as_u64)
                    .ok_or(format!("cell {i}: missing `{key}`"))
            };
            let ratio_vs_general = match c.get("ratio_vs_general") {
                None => None,
                Some(Value::F64(r)) => Some(*r),
                Some(v) => Some(
                    v.as_u64()
                        .ok_or(format!("cell {i}: bad `ratio_vs_general`"))?
                        as f64,
                ),
            };
            cells.push(Cell {
                scenario: field_str("scenario")?,
                stage: field_str("stage")?,
                median_ns: field_u64("median_ns")?,
                p95_ns: field_u64("p95_ns")?,
                runs: field_u64("runs")? as usize,
                ratio_vs_general,
            });
        }
        let trace_overhead = match value.get("trace_overhead") {
            None => None,
            Some(t) => {
                let plain = t
                    .get("plain_median_ns")
                    .and_then(Value::as_u64)
                    .ok_or("trace_overhead: missing `plain_median_ns`")?;
                let traced = t
                    .get("traced_disabled_median_ns")
                    .and_then(Value::as_u64)
                    .ok_or("trace_overhead: missing `traced_disabled_median_ns`")?;
                let ratio = match t.get("ratio") {
                    Some(Value::F64(r)) => *r,
                    Some(v) => v.as_u64().ok_or("trace_overhead: bad `ratio`")? as f64,
                    None => return Err("trace_overhead: missing `ratio`".to_string()),
                };
                Some(TraceOverhead {
                    plain_median_ns: plain,
                    traced_disabled_median_ns: traced,
                    ratio,
                })
            }
        };
        let registry_overhead = match value.get("registry_overhead") {
            None => None,
            Some(r) => {
                let plain = r
                    .get("plain_median_ns")
                    .and_then(Value::as_u64)
                    .ok_or("registry_overhead: missing `plain_median_ns`")?;
                let metered = r
                    .get("registry_disabled_median_ns")
                    .and_then(Value::as_u64)
                    .ok_or("registry_overhead: missing `registry_disabled_median_ns`")?;
                let ratio = match r.get("ratio") {
                    Some(Value::F64(v)) => *v,
                    Some(v) => v.as_u64().ok_or("registry_overhead: bad `ratio`")? as f64,
                    None => return Err("registry_overhead: missing `ratio`".to_string()),
                };
                Some(RegistryOverhead {
                    plain_median_ns: plain,
                    registry_disabled_median_ns: metered,
                    ratio,
                })
            }
        };
        Ok(Report {
            mode,
            repeats,
            cells,
            trace_overhead,
            registry_overhead,
        })
    }
}

/// The worst (largest) per-scenario ratio of `numerator` stage median
/// over `denominator` stage median, across every scenario carrying
/// both cells. Scenarios missing either stage, or whose denominator
/// median is zero, are skipped; `None` when no scenario qualifies.
///
/// This backs the codec fast-path gate: `codec.xes` must stay within a
/// fixed multiple of `codec.jsonl` on the committed baseline.
pub fn max_stage_ratio(cells: &[Cell], numerator: &str, denominator: &str) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for num in cells.iter().filter(|c| c.stage == numerator) {
        let Some(den) = cells
            .iter()
            .find(|c| c.scenario == num.scenario && c.stage == denominator && c.median_ns > 0)
        else {
            continue;
        };
        let ratio = num.median_ns as f64 / den.median_ns as f64;
        if worst.map_or(true, |w| ratio > w) {
            worst = Some(ratio);
        }
    }
    worst
}

/// One cell whose median regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload name of the regressed cell.
    pub scenario: String,
    /// Stage of the regressed cell.
    pub stage: String,
    /// Baseline median, nanoseconds.
    pub old_median_ns: u64,
    /// Current median, nanoseconds.
    pub new_median_ns: u64,
    /// `new / old` slowdown factor.
    pub ratio: f64,
}

/// Compares `new` against the `old` baseline: a cell regresses when its
/// median exceeds the baseline median by more than `threshold_pct`
/// percent. Cells present in only one report are skipped (scenario
/// matrices may evolve), as are baseline cells with a zero median.
pub fn compare(old: &[Cell], new: &[Cell], threshold_pct: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for n in new {
        let Some(o) = old
            .iter()
            .find(|o| o.scenario == n.scenario && o.stage == n.stage)
        else {
            continue;
        };
        if o.median_ns == 0 {
            continue;
        }
        let ratio = n.median_ns as f64 / o.median_ns as f64;
        if ratio > 1.0 + threshold_pct / 100.0 {
            regressions.push(Regression {
                scenario: n.scenario.clone(),
                stage: n.stage.clone(),
                old_median_ns: o.median_ns,
                new_median_ns: n.median_ns,
                ratio,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, stage: &str, median: u64) -> Cell {
        Cell {
            scenario: scenario.to_string(),
            stage: stage.to_string(),
            median_ns: median,
            p95_ns: median + median / 10,
            runs: 5,
            ratio_vs_general: None,
        }
    }

    #[test]
    fn summarize_takes_median_and_p95() {
        let c = summarize("s", "mine", vec![50, 10, 30, 20, 40]);
        assert_eq!(c.median_ns, 30);
        assert_eq!(c.p95_ns, 50);
        assert_eq!(c.runs, 5);
        // Even count: nearest-rank median is the lower middle.
        let c = summarize("s", "mine", vec![4, 1, 2, 3]);
        assert_eq!(c.median_ns, 2);
    }

    #[test]
    fn summarize_of_empty_is_zero() {
        let c = summarize("s", "mine", vec![]);
        assert_eq!((c.median_ns, c.p95_ns, c.runs), (0, 0, 0));
    }

    #[test]
    fn compare_flags_doubled_medians_only() {
        let old = vec![
            cell("rw10", "mine.general", 1_000),
            cell("rw10", "codec.xes", 2_000),
            cell("gone", "mine.general", 9_000),
        ];
        let new = vec![
            cell("rw10", "mine.general", 2_000),  // 2x: regression
            cell("rw10", "codec.xes", 2_100),     // +5%: within threshold
            cell("fresh", "mine.general", 5_000), // no baseline: skipped
        ];
        let regs = compare(&old, &new, 15.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].scenario, "rw10");
        assert_eq!(regs[0].stage, "mine.general");
        assert!((regs[0].ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_stage_ratio_takes_worst_scenario() {
        let cells = vec![
            cell("rw10", "codec.jsonl", 1_000),
            cell("rw10", "codec.xes", 1_500), // 1.5x
            cell("rw25", "codec.jsonl", 2_000),
            cell("rw25", "codec.xes", 3_800),  // 1.9x — the worst
            cell("micro", "codec.xes", 9_000), // no jsonl cell: skipped
        ];
        let worst = max_stage_ratio(&cells, "codec.xes", "codec.jsonl").unwrap();
        assert!((worst - 1.9).abs() < 1e-9, "got {worst}");
    }

    #[test]
    fn max_stage_ratio_skips_zero_denominators() {
        let cells = vec![
            cell("rw10", "codec.jsonl", 0),
            cell("rw10", "codec.xes", 1_500),
        ];
        assert_eq!(max_stage_ratio(&cells, "codec.xes", "codec.jsonl"), None);
        assert_eq!(max_stage_ratio(&[], "codec.xes", "codec.jsonl"), None);
    }

    #[test]
    fn compare_respects_custom_threshold() {
        let old = vec![cell("s", "mine", 1_000)];
        let new = vec![cell("s", "mine", 1_200)];
        assert_eq!(compare(&old, &new, 15.0).len(), 1);
        assert!(compare(&old, &new, 25.0).is_empty());
    }

    #[test]
    fn report_json_round_trips() {
        let report = Report {
            mode: "smoke".to_string(),
            repeats: 3,
            cells: vec![cell("rw10", "mine.general", 1_000)],
            trace_overhead: Some(TraceOverhead {
                plain_median_ns: 1_000,
                traced_disabled_median_ns: 1_010,
                ratio: 1.01,
            }),
            registry_overhead: Some(RegistryOverhead {
                plain_median_ns: 1_000,
                registry_disabled_median_ns: 1_020,
                ratio: 1.02,
            }),
        };
        let json = report.to_json();
        let back = Report::from_json(&json).expect("round trip");
        assert_eq!(back.mode, "smoke");
        assert_eq!(back.repeats, 3);
        assert_eq!(back.cells, report.cells);
        let t = back.trace_overhead.expect("overhead present");
        assert_eq!(t.plain_median_ns, 1_000);
        assert!((t.ratio - 1.01).abs() < 1e-6);
        let r = back.registry_overhead.expect("registry overhead present");
        assert_eq!(r.registry_disabled_median_ns, 1_020);
        assert!((r.ratio - 1.02).abs() < 1e-6);
    }

    #[test]
    fn report_without_overhead_guards_round_trips() {
        // Older reports (and guard-less runs) carry neither overhead
        // block; both must stay optional on read and absent on write.
        let report = Report {
            mode: "full".to_string(),
            repeats: 5,
            cells: vec![cell("rw10", "mine.general", 1_000)],
            trace_overhead: None,
            registry_overhead: None,
        };
        let json = report.to_json();
        assert!(!json.contains("trace_overhead"));
        assert!(!json.contains("registry_overhead"));
        let back = Report::from_json(&json).expect("round trip");
        assert!(back.trace_overhead.is_none());
        assert!(back.registry_overhead.is_none());
    }

    #[test]
    fn normalize_ratios_against_same_scenario_general() {
        let mut cells = vec![
            cell("rw10", "mine.general", 2_000),
            cell("rw10", "mine.parallel4", 1_000),
            cell("rw25", "mine.general", 4_000),
            cell("rw25", "codec.xes", 8_000),
            cell("micro", "scc", 500),
        ];
        normalize(&mut cells);
        let ratio = |scenario: &str, stage: &str| {
            cells
                .iter()
                .find(|c| c.scenario == scenario && c.stage == stage)
                .unwrap()
                .ratio_vs_general
        };
        assert_eq!(ratio("rw10", "mine.general"), Some(1.0));
        assert_eq!(ratio("rw10", "mine.parallel4"), Some(0.5));
        assert_eq!(ratio("rw25", "codec.xes"), Some(2.0));
        assert_eq!(
            ratio("micro", "scc"),
            None,
            "no mine.general to normalize by"
        );
    }

    #[test]
    fn normalized_ratio_round_trips_through_json() {
        let mut c = cell("rw10", "mine.parallel4", 500);
        c.ratio_vs_general = Some(0.25);
        let report = Report {
            mode: "smoke".to_string(),
            repeats: 3,
            cells: vec![c, cell("micro", "scc", 100)],
            trace_overhead: None,
            registry_overhead: None,
        };
        let back = Report::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back.cells[0].ratio_vs_general, Some(0.25));
        assert_eq!(back.cells[1].ratio_vs_general, None);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let json = r#"{"schema": "something-else/v9", "mode": "smoke", "repeats": 3, "cells": []}"#;
        let err = Report::from_json(json).expect_err("must reject");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(Report::from_json("not json at all").is_err());
        assert!(Report::from_json(r#"{"mode": "smoke"}"#).is_err());
    }
}
