//! Convergence study: how many executions does recovery take?
//!
//! Table 2 shows recovery improving with log size; this experiment
//! sweeps `m` densely and reports edge precision/recall and the
//! closure-equality rate across random logs, locating the knee of the
//! curve for each graph size. (Extends the paper's evaluation; no
//! corresponding table.) Run with `--release`.

use procmine_bench::{synthetic_workload, timed_mine, TextTable};
use procmine_core::metrics::compare_models;
use procmine_core::MinedModel;

fn main() {
    println!("Convergence of recovery with log size (5 random logs per cell)\n");
    const TRIALS: u64 = 5;
    let mut table = TextTable::new(["n", "m", "precision", "recall", "exact/5", "closure-eq/5"]);
    for &(n, edges) in &[(10usize, 24usize), (25, 224), (50, 1058)] {
        for &m in &[25usize, 50, 100, 250, 500, 1000, 2500] {
            let mut psum = 0.0;
            let mut rsum = 0.0;
            let mut exact = 0;
            let mut closure = 0;
            for trial in 0..TRIALS {
                let (model, log) = synthetic_workload(n, edges, m, 5000 + trial);
                let (mined, _) = timed_mine(&log);
                let reference = MinedModel::from_graph(model.graph_clone());
                let r = compare_models(&reference, &mined).expect("same activities");
                psum += r.diff.precision();
                rsum += r.diff.recall();
                exact += r.exact as usize;
                closure += (r.exact || r.closure_equal) as usize;
            }
            table.row([
                n.to_string(),
                m.to_string(),
                format!("{:.3}", psum / TRIALS as f64),
                format!("{:.3}", rsum / TRIALS as f64),
                exact.to_string(),
                closure.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("shape: recall rises with m (more skip-patterns observed, more shortcut");
    println!("edges witnessed); small graphs saturate by a few hundred executions,");
    println!("matching Table 2's 'small graphs recovered with a small number of executions'.");
}
