//! The §4 open problem, measured — extraneous executions of conformal
//! graphs.
//!
//! "Properly defining the semantics of an extraneous execution and
//! developing a polynomial algorithm for this task is an open,
//! intriguing problem. However … we did not find this problem to be a
//! major handicap in our experiments."
//!
//! This experiment estimates, by re-executing mined models, what
//! fraction of their behaviour was actually observed (behavioural
//! precision) on the paper's workloads — including the open-problem log
//! of Figure 5, where two equally-sized conformal graphs admit
//! different extraneous executions.

use procmine::bridge::behavioral_fitness;
use procmine::classify::TreeConfig;
use procmine::log::WorkflowLog;
use procmine::mine::{mine_auto, MinerOptions};
use procmine::sim::{annotate, engine, presets};
use procmine_bench::TextTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Extraneous executions (§4 open problem), estimated by model replay\n");
    let mut table = TextTable::new([
        "workload",
        "log variants",
        "sampled variants",
        "precision",
        "recall",
    ]);
    let mut rng = StdRng::seed_from_u64(54);

    // The Figure 5 open-problem log.
    let open_problem = WorkflowLog::from_strings(["ACF", "ADCF", "ABCF", "ADECF"]).unwrap();
    score(&mut table, "Figure 5 log", &open_problem, &mut rng);

    // Example 6 (complete executions, minimal graph).
    let example6 = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
    score(&mut table, "Example 6 log", &example6, &mut rng);

    // Condition-rich processes: learned conditions suppress extraneous
    // routes.
    let orders = presets::order_fulfillment();
    let log = engine::generate_log(&orders, 400, &mut rng).expect("log");
    score(&mut table, "OrderFulfillment", &log, &mut rng);

    let graph10 = annotate::with_xor_conditions(&presets::graph10());
    let log = engine::generate_log(&graph10, 400, &mut rng).expect("log");
    score(&mut table, "Graph10 (XOR)", &log, &mut rng);

    println!("{}", table.render());
    println!("recall 1.0 everywhere: conformal graphs replay every observed variant.");
    println!("precision < 1.0 quantifies the extraneous executions the open problem");
    println!("describes: without edge conditions the graph admits unobserved subsets");
    println!("and interleavings; with learned conditions (§7) precision approaches 1.");
}

fn score(table: &mut TextTable, name: &str, log: &WorkflowLog, rng: &mut StdRng) {
    let (mined, _) = mine_auto(log, &MinerOptions::default()).expect("mine");
    let log_variants = procmine::log::stats::variants(log).len();
    match behavioral_fitness(&mined, log, &TreeConfig::default(), 500, rng) {
        Ok(bf) => table.row([
            name.to_string(),
            log_variants.to_string(),
            bf.sampled_variants.to_string(),
            format!("{:.3}", bf.precision),
            format!("{:.3}", bf.recall),
        ]),
        Err(e) => table.row([
            name.to_string(),
            log_variants.to_string(),
            "-".to_string(),
            format!("({e})"),
            "-".to_string(),
        ]),
    }
}
