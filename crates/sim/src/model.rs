//! The annotated process model of Definition 1: an activity graph with
//! per-edge Boolean conditions and per-activity output specs.

use crate::engine::DurationSpec;
use crate::{Condition, ModelError, OutputSpec};
use procmine_graph::{topo, DiGraph, NodeId};
use procmine_log::{ActivityId, ActivityTable};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A business-process model `P = (V_P, G_P, o_P, {f_(u,v)})`
/// (Definition 1): a directed activity graph with a single initiating
/// and a single terminating activity, an output spec per activity and a
/// Boolean condition per edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessModel {
    name: String,
    table: ActivityTable,
    graph: DiGraph<String>,
    outputs: Vec<OutputSpec>,
    /// Per-activity service-time overrides; activities without one use
    /// the engine configuration's duration model.
    durations: Vec<Option<DurationSpec>>,
    /// Conditions keyed by `(from, to)` dense indices; edges absent from
    /// the map have condition `True`.
    conditions: HashMap<(usize, usize), Condition>,
    start: usize,
    end: usize,
}

impl ProcessModel {
    /// Starts building a model with the given name.
    pub fn builder(name: impl Into<String>) -> ProcessModelBuilder {
        ProcessModelBuilder {
            name: name.into(),
            table: ActivityTable::new(),
            outputs: Vec::new(),
            durations: Vec::new(),
            edges: Vec::new(),
            error: None,
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activity table (shared index space with the graph).
    pub fn activities(&self) -> &ActivityTable {
        &self.table
    }

    /// The activity graph (node payloads are names).
    pub fn graph(&self) -> &DiGraph<String> {
        &self.graph
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The initiating activity.
    pub fn start(&self) -> ActivityId {
        ActivityId::from_index(self.start)
    }

    /// The terminating activity.
    pub fn end(&self) -> ActivityId {
        ActivityId::from_index(self.end)
    }

    /// The condition on edge `(from, to)` (`True` if none was set).
    /// Returns `None` if the edge does not exist.
    pub fn condition(&self, from: ActivityId, to: ActivityId) -> Option<&Condition> {
        if !self
            .graph
            .has_edge(NodeId::new(from.index()), NodeId::new(to.index()))
        {
            return None;
        }
        Some(
            self.conditions
                .get(&(from.index(), to.index()))
                .unwrap_or(&Condition::True),
        )
    }

    /// The output spec of an activity.
    pub fn output_spec(&self, a: ActivityId) -> &OutputSpec {
        &self.outputs[a.index()]
    }

    /// The activity's service-time override, if declared
    /// ([`ProcessModelBuilder::activity_timed`]). `None` means the
    /// engine configuration's duration model applies.
    pub fn duration_spec(&self, a: ActivityId) -> Option<DurationSpec> {
        self.durations[a.index()]
    }

    /// `true` if the graph is acyclic (guaranteed for models built with
    /// [`ProcessModelBuilder::build`]).
    pub fn is_acyclic(&self) -> bool {
        topo::is_acyclic(&self.graph)
    }

    /// A clone of the activity graph, for wrapping as ground truth in
    /// comparisons against mined models.
    pub fn graph_clone(&self) -> DiGraph<String> {
        self.graph.clone()
    }
}

/// Builder for [`ProcessModel`]. Declare activities first, then edges;
/// the first error encountered is reported by
/// [`build`](ProcessModelBuilder::build), keeping the declaration chain
/// fluent.
pub struct ProcessModelBuilder {
    name: String,
    table: ActivityTable,
    outputs: Vec<OutputSpec>,
    durations: Vec<Option<DurationSpec>>,
    edges: Vec<(usize, usize, Condition)>,
    error: Option<ModelError>,
}

impl ProcessModelBuilder {
    /// Declares an activity with no output.
    pub fn activity(self, name: &str) -> Self {
        self.activity_with(name, OutputSpec::None)
    }

    /// Declares an activity with an output spec.
    pub fn activity_with(self, name: &str, output: OutputSpec) -> Self {
        self.activity_timed(name, output, None)
    }

    /// Declares an activity with an output spec and a service-time
    /// model of its own (overriding the engine configuration).
    pub fn activity_timed(
        mut self,
        name: &str,
        output: OutputSpec,
        duration: Option<DurationSpec>,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        if self.table.id(name).is_some() {
            self.error = Some(ModelError::DuplicateActivity {
                name: name.to_string(),
            });
            return self;
        }
        self.table.intern(name);
        self.outputs.push(output);
        self.durations.push(duration);
        self
    }

    /// Declares an unconditional edge.
    pub fn edge(self, from: &str, to: &str) -> Self {
        self.edge_if(from, to, Condition::True)
    }

    /// Declares an edge guarded by a condition on the source's output.
    pub fn edge_if(mut self, from: &str, to: &str, condition: Condition) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (f, t) = match (self.table.id(from), self.table.id(to)) {
            (Some(f), Some(t)) => (f.index(), t.index()),
            (None, _) => {
                self.error = Some(ModelError::UnknownActivity {
                    name: from.to_string(),
                });
                return self;
            }
            (_, None) => {
                self.error = Some(ModelError::UnknownActivity {
                    name: to.to_string(),
                });
                return self;
            }
        };
        self.edges.push((f, t, condition));
        self
    }

    /// Validates and builds the model: exactly one source and one sink,
    /// acyclic, no duplicate edges or self-loops, and every condition
    /// arity within its source's output arity.
    pub fn build(self) -> Result<ProcessModel, ModelError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        if self.table.is_empty() {
            return Err(ModelError::NoActivities);
        }

        let n = self.table.len();
        let mut graph: DiGraph<String> = DiGraph::with_capacity(n);
        for name in self.table.names() {
            graph.add_node(name.clone());
        }
        let mut conditions = HashMap::new();
        for (f, t, cond) in self.edges {
            if f == t {
                return Err(ModelError::SelfLoop {
                    name: self.table.names()[f].clone(),
                });
            }
            if !graph.add_edge(NodeId::new(f), NodeId::new(t)) {
                return Err(ModelError::DuplicateEdge {
                    from: self.table.names()[f].clone(),
                    to: self.table.names()[t].clone(),
                });
            }
            let needs = cond.min_arity();
            let produces = self.outputs[f].arity();
            if needs > produces {
                return Err(ModelError::ConditionArity {
                    from: self.table.names()[f].clone(),
                    to: self.table.names()[t].clone(),
                    needs,
                    produces,
                });
            }
            if cond != Condition::True {
                conditions.insert((f, t), cond);
            }
        }

        let sources = graph.sources();
        if sources.len() != 1 {
            return Err(ModelError::BadSources {
                found: sources.iter().map(|&s| graph.node(s).clone()).collect(),
            });
        }
        let sinks = graph.sinks();
        if sinks.len() != 1 {
            return Err(ModelError::BadSinks {
                found: sinks.iter().map(|&s| graph.node(s).clone()).collect(),
            });
        }
        if !topo::is_acyclic(&graph) {
            return Err(ModelError::NotAcyclic);
        }

        Ok(ProcessModel {
            name: self.name,
            table: self.table,
            graph,
            outputs: self.outputs,
            durations: self.durations,
            conditions,
            start: sources[0].index(),
            end: sinks[0].index(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;

    fn diamond() -> ProcessModel {
        ProcessModel::builder("diamond")
            .activity_with("A", OutputSpec::Uniform(vec![(0, 9)]))
            .activity("B")
            .activity("C")
            .activity("D")
            .edge_if("A", "B", Condition::cmp(0, CmpOp::Ge, 5))
            .edge_if("A", "C", Condition::cmp(0, CmpOp::Lt, 5))
            .edge("B", "D")
            .edge("C", "D")
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_queries() {
        let m = diamond();
        assert_eq!(m.activity_count(), 4);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(m.activities().name(m.start()), "A");
        assert_eq!(m.activities().name(m.end()), "D");
        let a = m.activities().id("A").unwrap();
        let b = m.activities().id("B").unwrap();
        let d = m.activities().id("D").unwrap();
        assert_eq!(m.condition(a, b), Some(&Condition::cmp(0, CmpOp::Ge, 5)));
        assert_eq!(m.condition(b, d), Some(&Condition::True));
        assert_eq!(m.condition(a, d), None, "no such edge");
        assert!(m.is_acyclic());
    }

    #[test]
    fn rejects_multiple_sources() {
        let err = ProcessModel::builder("bad")
            .activity("A")
            .activity("B")
            .activity("C")
            .edge("A", "C")
            .edge("B", "C")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::BadSources { found } if found.len() == 2));
    }

    #[test]
    fn rejects_multiple_sinks() {
        let err = ProcessModel::builder("bad")
            .activity("A")
            .activity("B")
            .activity("C")
            .edge("A", "B")
            .edge("A", "C")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::BadSinks { found } if found.len() == 2));
    }

    #[test]
    fn rejects_cycles() {
        let err = ProcessModel::builder("bad")
            .activity("S")
            .activity("A")
            .activity("B")
            .activity("E")
            .edge("S", "A")
            .edge("A", "B")
            .edge("B", "A")
            .edge("B", "E")
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::NotAcyclic);
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        let err = ProcessModel::builder("bad")
            .activity("A")
            .activity("A")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateActivity { name } if name == "A"));

        let err = ProcessModel::builder("bad")
            .activity("A")
            .edge("A", "Z")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownActivity { name } if name == "Z"));

        let err = ProcessModel::builder("bad")
            .activity("A")
            .activity("B")
            .edge("A", "B")
            .edge("A", "B")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateEdge { .. }));

        let err = ProcessModel::builder("bad")
            .activity("A")
            .edge("A", "A")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::SelfLoop { .. }));
    }

    #[test]
    fn rejects_condition_arity_overflow() {
        let err = ProcessModel::builder("bad")
            .activity("A") // no output
            .activity("B")
            .edge_if("A", "B", Condition::cmp(0, CmpOp::Gt, 1))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::ConditionArity {
                needs: 1,
                produces: 0,
                ..
            }
        ));
    }

    #[test]
    fn rejects_empty_model() {
        assert_eq!(
            ProcessModel::builder("empty").build().unwrap_err(),
            ModelError::NoActivities
        );
    }

    #[test]
    fn first_error_wins() {
        // Unknown activity reported even though a later edge also
        // duplicates — the chain short-circuits on the first problem.
        let err = ProcessModel::builder("bad")
            .activity("A")
            .edge("A", "Z")
            .edge("A", "A")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownActivity { .. }));
    }
}
