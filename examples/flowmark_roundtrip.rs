//! Working with on-disk logs in the three supported formats.
//!
//! Generates a Flowmark-style audit trail to a temp directory, reads it
//! back, mines it, and re-exports the log as JSON-lines and sequence
//! files — the ingestion path a real deployment would use.
//!
//! ```sh
//! cargo run --example flowmark_roundtrip
//! ```

use procmine::log::codec::{flowmark, jsonl, seqs};
use procmine::mine::{mine_auto, MinerOptions};
use procmine::sim::{presets, walk};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("procmine-roundtrip");
    std::fs::create_dir_all(&dir)?;

    // 1. Simulate the Upload_and_Notify process and write a Flowmark-
    //    style event log (one START/END record per activity instance).
    let process = presets::upload_and_notify();
    let mut rng = StdRng::seed_from_u64(134);
    let log = walk::random_walk_log(&process, 134, &mut rng)?;
    let fm_path = dir.join("upload_and_notify.fm");
    flowmark::write_log(&log, BufWriter::new(File::create(&fm_path)?))?;
    println!(
        "wrote {} ({} bytes, {} executions)",
        fm_path.display(),
        std::fs::metadata(&fm_path)?.len(),
        log.len()
    );

    // 2. Read it back and confirm the round trip is faithful.
    let parsed = flowmark::read_log(BufReader::new(File::open(&fm_path)?))?;
    assert_eq!(parsed.len(), log.len());
    assert_eq!(parsed.display_sequences(), log.display_sequences());
    println!("round trip OK; first events of execution 0:");
    for inst in parsed.executions()[0].instances().iter().take(3) {
        println!(
            "  {} [{}..{}]",
            parsed.activities().name(inst.activity),
            inst.start,
            inst.end
        );
    }

    // 3. Mine the parsed log.
    let (model, algorithm) = mine_auto(&parsed, &MinerOptions::default())?;
    println!("\nmined with {algorithm:?}: {} edges", model.edge_count());
    for (u, v) in model.edges_named() {
        println!("  {u} -> {v}");
    }

    // 4. Re-export in the other formats.
    let jsonl_path = dir.join("upload_and_notify.jsonl");
    jsonl::write_log(&parsed, BufWriter::new(File::create(&jsonl_path)?))?;
    let seqs_path = dir.join("upload_and_notify.seqs");
    seqs::write_log(&parsed, BufWriter::new(File::create(&seqs_path)?))?;
    println!(
        "\nexported {} and {}",
        jsonl_path.display(),
        seqs_path.display()
    );

    // 5. All three parse to the same sequences.
    let from_jsonl = jsonl::read_log(BufReader::new(File::open(&jsonl_path)?))?;
    let from_seqs = seqs::read_log(BufReader::new(File::open(&seqs_path)?))?;
    assert_eq!(from_jsonl.display_sequences(), parsed.display_sequences());
    assert_eq!(from_seqs.display_sequences(), parsed.display_sequences());
    println!("all formats agree.");
    Ok(())
}
