//! Observability: a registry of named counters, gauges, and
//! log-linear-bucket histograms, with Prometheus text exposition and a
//! versioned JSON snapshot export.
//!
//! Where [`telemetry`](crate::telemetry) collects one-shot totals for a
//! single run and [`trace`](crate::trace) records post-hoc span
//! intervals, this module is the *live* surface: a long-running
//! `mine --follow` session (and, eventually, the `procmine serve`
//! daemon) samples distributions and health gauges into a shared
//! [`Registry`] and re-exports them on an interval.
//!
//! The design mirrors [`Tracer`](crate::trace::Tracer):
//!
//! * a [`Registry`] is a cheap clonable handle around
//!   `Option<Arc<…>>` — [`Registry::disabled`] (the
//!   [`MineSession`](crate::MineSession) default) carries `None`, and
//!   every recording path through a disabled registry is a single
//!   branch that **never reads the clock** ([`Registry::start`]
//!   returns `None`, so no `Instant::now` happens);
//! * recording through an enabled handle is **lock-free**: counters,
//!   gauges, and histogram bucket cells are plain relaxed atomics, so
//!   the parallel kernels' workers can share one registry without a
//!   merge step at the join barrier (the atomic cells *are* the merged
//!   state — addition commutes, exactly like the per-thread
//!   `TraceBuffer` lanes folding into one store);
//! * the only lock is a registration mutex taken when a metric handle
//!   is first acquired (name → cell lookup), never per sample.
//!
//! # Naming and units
//!
//! Families follow Prometheus conventions with a `procmine_` prefix:
//! counters end in `_total`, durations carry an explicit `_ns` unit
//! suffix and are recorded as integer nanoseconds (no float formatting
//! ambiguity in either export). Label sets are fixed per family —
//! `{stage="…"}` for the per-stage latency histogram, `{format="…"}`
//! for the ingest counters.
//!
//! # Histogram buckets
//!
//! Histograms use a fixed log-linear layout: values `0..4` map to four
//! linear buckets, and every power-of-two octave above that is split
//! into four linear sub-buckets ([`SUB_BUCKETS`]), giving ≤ 12.5%
//! relative bucket width over the full `u64` range in
//! [`BUCKET_COUNT`] = 252 cells (~2 KiB of atomics per series). The
//! Prometheus export renders the cumulative `_bucket{le="…"}` form,
//! emitting only non-empty buckets plus the mandatory `+Inf`.
//!
//! # Export
//!
//! [`Registry::render_prometheus`] produces text exposition format
//! (one `# HELP`/`# TYPE` header per family, series sorted by label
//! set); [`Registry::to_json`] produces a snapshot named by
//! [`SNAPSHOT_SCHEMA`] (`procmine-metrics/v1`) whose layout is locked
//! by unit tests like the other JSON reports. Both renderings are
//! deterministic (families and series in sorted order).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::telemetry::Stage;
use crate::trace::escape;

/// Schema identifier written into every JSON snapshot. Bump only with
/// a migration note in DESIGN.md.
pub const SNAPSHOT_SCHEMA: &str = "procmine-metrics/v1";

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;

/// Total histogram bucket cells: 4 linear cells for `0..4`, then 4 per
/// octave for `2^2 ..= 2^63`.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + 62 * SUB_BUCKETS;

/// The bucket index a value lands in (log-linear; see module docs).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    // v >= 4, so msb >= 2: v lies in the octave [2^msb, 2^(msb+1)),
    // split into 4 linear sub-buckets of width 2^(msb-2).
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 2)) & 0b11) as usize;
    (msb - 1) * SUB_BUCKETS + sub
}

/// The largest value mapping to bucket `i` — the bucket's inclusive
/// upper bound, rendered as the Prometheus `le` label.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let msb = i / SUB_BUCKETS + 1;
    let sub = (i % SUB_BUCKETS) as u128;
    let upper = (1u128 << msb) + ((sub + 1) << (msb - 2)) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// What a registered family measures; fixed at first registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The atomic cells behind one histogram series.
#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest observed value; `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bucket_counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: match self.min.load(Ordering::Relaxed) {
                u64::MAX => None,
                v => Some(v),
            },
            max: match self.count.load(Ordering::Relaxed) {
                0 => None,
                _ => Some(self.max.load(Ordering::Relaxed)),
            },
        }
    }
}

/// A point-in-time copy of one histogram series, with value-space
/// merge: bucket counts add elementwise, `count`/`sum` add, `min`/`max`
/// take the extremum. Merge is associative and commutative (pinned by
/// unit tests), so per-shard snapshots fold in any order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative), `BUCKET_COUNT` long.
    pub bucket_counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`None` when empty).
    pub min: Option<u64>,
    /// Largest observed value (`None` when empty).
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            bucket_counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Folds `other` into `self` (see the type docs for the laws).
    /// Additions saturate, so the laws hold over the whole `u64` range.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (t, o) in self.bucket_counts.iter_mut().zip(&other.bucket_counts) {
            *t = t.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n => Some(self.sum as f64 / n as f64),
        }
    }
}

/// One registered series: the shared cells a handle records into.
#[derive(Clone, Debug)]
enum SeriesCell {
    Counter(Arc<AtomicU64>),
    /// Gauges store `f64::to_bits` so rates fit alongside integers.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCells>),
}

/// A sorted label set — the series key within a family.
type LabelSet = Vec<(&'static str, String)>;

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: &'static str,
    /// Sorted label pairs (possibly empty) → cells.
    series: BTreeMap<LabelSet, SeriesCell>,
}

#[derive(Debug, Default)]
struct Shared {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// A handle to the metrics registry; clones share the same store.
/// [`Registry::disabled`] is inert: every recording call is one branch,
/// and no clock is ever read (see the module docs for the contract).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    shared: Option<Arc<Shared>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            shared: Some(Arc::new(Shared::default())),
        }
    }

    /// The disabled registry: records nothing, reads no clocks.
    pub fn disabled() -> Registry {
        Registry { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Reads the clock — only if enabled. Pair with
    /// [`Histogram::observe_since`] for the timer idiom that keeps the
    /// disabled path clock-free.
    pub fn start(&self) -> Option<Instant> {
        self.is_enabled().then(Instant::now)
    }

    /// Acquires (registering on first use) the cell for one series.
    /// Returns `None` when disabled or when `name` was already
    /// registered as a different kind (the handle is then inert — a
    /// registry never panics on misuse).
    fn cell(
        &self,
        kind: MetricKind,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<SeriesCell> {
        let shared = self.shared.as_ref()?;
        let mut families = shared
            .families
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            return None;
        }
        let mut key: LabelSet = labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        key.sort();
        let cell = family.series.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => SeriesCell::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Gauge => SeriesCell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            MetricKind::Histogram => SeriesCell::Histogram(Arc::new(HistCells::new())),
        });
        Some(cell.clone())
    }

    /// A counter handle for `name{labels}`, registered on first use.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        Counter {
            cell: match self.cell(MetricKind::Counter, name, help, labels) {
                Some(SeriesCell::Counter(c)) => Some(c),
                _ => None,
            },
        }
    }

    /// A gauge handle for `name{labels}`, registered on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        Gauge {
            cell: match self.cell(MetricKind::Gauge, name, help, labels) {
                Some(SeriesCell::Gauge(c)) => Some(c),
                _ => None,
            },
        }
    }

    /// A histogram handle for `name{labels}`, registered on first use.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        Histogram {
            cells: match self.cell(MetricKind::Histogram, name, help, labels) {
                Some(SeriesCell::Histogram(c)) => Some(c),
                _ => None,
            },
        }
    }

    /// The per-stage wall-latency histogram every
    /// [`MineSession`](crate::MineSession) stage samples into.
    pub fn stage_latency(&self, stage: Stage) -> Histogram {
        self.histogram(
            "procmine_stage_latency_ns",
            "Wall-clock latency per pipeline stage invocation, in nanoseconds.",
            &[("stage", stage.name())],
        )
    }

    /// Renders the registry in Prometheus text exposition format.
    /// Returns an empty string when disabled.
    pub fn render_prometheus(&self) -> String {
        let Some(shared) = &self.shared else {
            return String::new();
        };
        let families = shared
            .families
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, cell) in &family.series {
                match cell {
                    SeriesCell::Counter(c) => {
                        let v = c.load(Ordering::Relaxed);
                        out.push_str(&format!("{name}{} {v}\n", braced(labels)));
                    }
                    SeriesCell::Gauge(g) => {
                        let v = f64::from_bits(g.load(Ordering::Relaxed));
                        out.push_str(&format!("{name}{} {}\n", braced(labels), format_f64(v)));
                    }
                    SeriesCell::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &c) in snap.bucket_counts.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            cumulative += c;
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                braced_with(labels, "le", &bucket_upper(i).to_string()),
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            braced_with(labels, "le", "+Inf"),
                            snap.count
                        ));
                        out.push_str(&format!("{name}_sum{} {}\n", braced(labels), snap.sum));
                        out.push_str(&format!("{name}_count{} {}\n", braced(labels), snap.count));
                    }
                }
            }
        }
        out
    }

    /// Renders the versioned JSON snapshot ([`SNAPSHOT_SCHEMA`]).
    /// Deterministic key order; `{"schema":…,"metrics":[]}` when
    /// disabled or empty.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"metrics\":[");
        if let Some(shared) = &self.shared {
            let families = shared
                .families
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (fi, (name, family)) in families.iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"type\":\"{}\",\"help\":\"{}\",\"series\":[",
                    family.kind.as_str(),
                    escape(family.help)
                ));
                for (si, (labels, cell)) in family.series.iter().enumerate() {
                    if si > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"labels\":{");
                    out.push_str(&labels_json(labels));
                    out.push_str("},");
                    match cell {
                        SeriesCell::Counter(c) => {
                            out.push_str(&format!("\"value\":{}", c.load(Ordering::Relaxed)));
                        }
                        SeriesCell::Gauge(g) => {
                            let v = f64::from_bits(g.load(Ordering::Relaxed));
                            out.push_str(&format!("\"value\":{}", format_f64(v)));
                        }
                        SeriesCell::Histogram(h) => {
                            let snap = h.snapshot();
                            out.push_str(&format!(
                                "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                                snap.count,
                                snap.sum,
                                snap.min.map_or("null".into(), |v| v.to_string()),
                                snap.max.map_or("null".into(), |v| v.to_string()),
                            ));
                            let mut first = true;
                            for (i, &c) in snap.bucket_counts.iter().enumerate() {
                                if c == 0 {
                                    continue;
                                }
                                if !first {
                                    out.push(',');
                                }
                                first = false;
                                out.push_str(&format!(
                                    "{{\"le\":{},\"count\":{c}}}",
                                    bucket_upper(i)
                                ));
                            }
                            out.push(']');
                        }
                    }
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Renders a label set as Prometheus `{k="v",…}` (empty set → nothing).
fn braced(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Like [`braced`], with one extra label appended (the histogram `le`).
fn braced_with(labels: &LabelSet, key: &str, value: &str) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.push(format!("{key}=\"{value}\""));
    format!("{{{}}}", parts.join(","))
}

/// Renders a label set as JSON object fields (no surrounding braces).
fn labels_json(labels: &LabelSet) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Escapes a Prometheus label value (backslash, quote, newline) — the
/// same set JSON needs, with JSON-compatible spellings.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a gauge value: finite floats in shortest form, non-finite
/// clamped to 0 (neither export format can carry NaN portably).
fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A monotonically increasing counter. Cheap to clone; thread-safe;
/// inert when acquired from a disabled registry.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when inert).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge holding one `f64` (integers round-trip exactly up to 2⁵³).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets the gauge from an integer.
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value (0 when inert).
    pub fn value(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// A log-linear-bucket histogram of `u64` observations (durations in
/// nanoseconds, by convention — see the module docs).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Option<Arc<HistCells>>,
}

impl Histogram {
    /// Whether observations land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cells.is_some()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if let Some(cells) = &self.cells {
            cells.observe(v);
        }
    }

    /// Records the nanoseconds elapsed since `started` (from
    /// [`Registry::start`]); a no-op — with no clock read — when the
    /// timer never started.
    pub fn observe_since(&self, started: Option<Instant>) {
        if let (Some(cells), Some(started)) = (&self.cells, started) {
            cells.observe(started.elapsed().as_nanos() as u64);
        }
    }

    /// A point-in-time copy ([`HistogramSnapshot::empty`] when inert).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for v in 0u64..4096 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < BUCKET_COUNT);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_value_space() {
        // Every value maps into the bucket whose [lower, upper] range
        // contains it: upper(i-1) < v <= upper(i).
        for v in [0, 1, 3, 4, 5, 7, 8, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "v={v} above its bucket");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "v={v} below its bucket");
            }
        }
        assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Log-linear with 4 sub-buckets: width / lower_bound <= 1/4
        // once past the linear range.
        for i in SUB_BUCKETS..BUCKET_COUNT - 1 {
            let lo = bucket_upper(i - 1) as f64 + 1.0;
            let width = bucket_upper(i) as f64 - bucket_upper(i - 1) as f64;
            assert!(width / lo <= 0.26, "bucket {i} too wide: {width}/{lo}");
        }
    }

    fn snap_of(values: &[u64]) -> HistogramSnapshot {
        let reg = Registry::new();
        let h = reg.histogram("h_test", "test", &[]);
        for &v in values {
            h.observe(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_commutative() {
        let (a, b) = (snap_of(&[1, 5, 900]), snap_of(&[0, 7, 7, 1 << 30]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (snap_of(&[3]), snap_of(&[10, 20]), snap_of(&[u64::MAX, 0]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_identity_is_empty() {
        let a = snap_of(&[2, 4, 8]);
        let mut merged = a.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, a);
        let mut from_empty = HistogramSnapshot::empty();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn merge_equals_single_store() {
        // Observing everything into one histogram equals merging two
        // halves — the atomic-cells-as-merged-state claim.
        let whole = snap_of(&[1, 2, 3, 4, 5, 6]);
        let mut halves = snap_of(&[1, 3, 5]);
        halves.merge(&snap_of(&[2, 4, 6]));
        assert_eq!(whole, halves);
        assert_eq!(halves.count, 6);
        assert_eq!(halves.sum, 21);
        assert_eq!(halves.min, Some(1));
        assert_eq!(halves.max, Some(6));
        assert_eq!(halves.mean(), Some(3.5));
    }

    #[test]
    fn disabled_registry_is_inert_and_clock_free() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        assert!(reg.start().is_none(), "no clock read when disabled");
        let c = reg.counter("c_total", "h", &[]);
        c.inc();
        assert_eq!(c.value(), 0);
        let g = reg.gauge("g", "h", &[]);
        g.set(3.5);
        assert_eq!(g.value(), 0.0);
        let h = reg.histogram("h_ns", "h", &[]);
        h.observe(7);
        h.observe_since(reg.start());
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(reg.render_prometheus(), "");
        assert_eq!(
            reg.to_json(),
            format!("{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"metrics\":[]}}")
        );
    }

    #[test]
    fn clones_share_the_store() {
        let reg = Registry::new();
        reg.counter("c_total", "h", &[]).add(2);
        let clone = reg.clone();
        clone.counter("c_total", "h", &[]).add(3);
        assert_eq!(reg.counter("c_total", "h", &[]).value(), 5);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = Registry::new();
        reg.counter("c_total", "h", &[("stage", "prune")]).inc();
        reg.counter("c_total", "h", &[("stage", "reduce")]).add(4);
        assert_eq!(
            reg.counter("c_total", "h", &[("stage", "prune")]).value(),
            1
        );
        assert_eq!(
            reg.counter("c_total", "h", &[("stage", "reduce")]).value(),
            4
        );
    }

    #[test]
    fn kind_mismatch_yields_inert_handles_not_panics() {
        let reg = Registry::new();
        reg.counter("name", "h", &[]).inc();
        let g = reg.gauge("name", "h", &[]);
        g.set(9.0);
        assert_eq!(g.value(), 0.0, "mismatched re-registration is inert");
        assert_eq!(reg.counter("name", "h", &[]).value(), 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("procmine_b_total", "Counts b.", &[("format", "xes")])
            .add(2);
        reg.gauge("procmine_g", "A gauge.", &[]).set(1.5);
        let h = reg.histogram("procmine_h_ns", "A histogram.", &[("stage", "prune")]);
        h.observe(3);
        h.observe(5);
        let text = reg.render_prometheus();
        let expected = "\
# HELP procmine_b_total Counts b.
# TYPE procmine_b_total counter
procmine_b_total{format=\"xes\"} 2
# HELP procmine_g A gauge.
# TYPE procmine_g gauge
procmine_g 1.5
# HELP procmine_h_ns A histogram.
# TYPE procmine_h_ns histogram
procmine_h_ns_bucket{stage=\"prune\",le=\"3\"} 1
procmine_h_ns_bucket{stage=\"prune\",le=\"5\"} 2
procmine_h_ns_bucket{stage=\"prune\",le=\"+Inf\"} 2
procmine_h_ns_sum{stage=\"prune\"} 8
procmine_h_ns_count{stage=\"prune\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_snapshot_schema_is_locked() {
        let reg = Registry::new();
        reg.counter("procmine_b_total", "Counts b.", &[("format", "xes")])
            .add(2);
        let h = reg.histogram("procmine_h_ns", "A histogram.", &[]);
        h.observe(3);
        assert_eq!(
            reg.to_json(),
            "{\"schema\":\"procmine-metrics/v1\",\"metrics\":[\
             {\"name\":\"procmine_b_total\",\"type\":\"counter\",\"help\":\"Counts b.\",\
             \"series\":[{\"labels\":{\"format\":\"xes\"},\"value\":2}]},\
             {\"name\":\"procmine_h_ns\",\"type\":\"histogram\",\"help\":\"A histogram.\",\
             \"series\":[{\"labels\":{},\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\
             \"buckets\":[{\"le\":3,\"count\":1}]}]}]}"
        );
    }

    #[test]
    fn json_snapshot_parses_as_json() {
        let reg = Registry::new();
        reg.gauge("g", "A \"quoted\" gauge\\name.", &[("k", "va\"lue")])
            .set(2.0);
        reg.stage_latency(Stage::Prune).observe(100);
        let parsed: serde_json::Value = serde_json::from_str(&reg.to_json()).unwrap();
        match parsed.get("schema") {
            Some(serde_json::Value::Str(s)) => assert_eq!(s, SNAPSHOT_SCHEMA),
            other => panic!("expected schema string, got {other:?}"),
        }
        assert!(parsed.get("metrics").is_some());
    }

    #[test]
    fn timer_idiom_records_elapsed_nanos() {
        let reg = Registry::new();
        let h = reg.stage_latency(Stage::CountPairs);
        let started = reg.start();
        assert!(started.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        h.observe_since(started);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 1_000_000, "expected >= 1ms, got {}ns", snap.sum);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    let c = reg.counter("c_total", "h", &[]);
                    let h = reg.histogram("h_ns", "h", &[]);
                    for v in 0..1000u64 {
                        c.inc();
                        h.observe(v);
                    }
                });
            }
        });
        assert_eq!(reg.counter("c_total", "h", &[]).value(), 4000);
        assert_eq!(reg.histogram("h_ns", "h", &[]).snapshot().count, 4000);
    }
}
