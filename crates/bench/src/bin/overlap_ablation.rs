//! Ablation A5 — what interval overlap buys the miner.
//!
//! §2 justifies the list-form simplification with "if there are two
//! activities in the log that overlap in time, then they must be
//! independent activities". With a sequential log, independence of a
//! parallel pair can only be learned by observing *both orders across
//! executions*; with a multi-agent interval log, one overlapping
//! execution suffices. This ablation mines StressSleep (four parallel
//! lanes) from sequential vs. overlapping logs at increasing m and
//! reports how many spurious lane-ordering edges survive.
//! Run with `--release`.

use procmine_bench::TextTable;
use procmine_core::metrics::compare_models;
use procmine_core::{mine_general_dag, MinedModel, MinerOptions};
use procmine_sim::engine::{generate_log_with, DurationSpec, EngineConfig};
use procmine_sim::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = presets::stress_sleep();
    let reference = MinedModel::from_graph(model.graph_clone());
    println!(
        "Overlap ablation: {} ({} activities, {} edges; 4 parallel lanes)\n",
        model.name(),
        model.activity_count(),
        model.edge_count()
    );

    let sequential = EngineConfig {
        duration: DurationSpec::Instant,
        agents: 1,
    };
    let overlapping = EngineConfig {
        duration: DurationSpec::Uniform(10, 50),
        agents: 6,
    };

    let mut table = TextTable::new([
        "m",
        "seq precision",
        "seq recall",
        "ovl precision",
        "ovl recall",
    ]);
    for &m in &[5usize, 10, 20, 40, 80, 160] {
        let mut row = vec![m.to_string()];
        for cfg in [&sequential, &overlapping] {
            let mut rng = StdRng::seed_from_u64(7000 + m as u64);
            let log = generate_log_with(&model, m, cfg, &mut rng).expect("log");
            let mined = mine_general_dag(&log, &MinerOptions::default()).expect("mine");
            let r = compare_models(&reference, &mined).expect("same activities");
            row.push(format!("{:.3}", r.diff.precision()));
            row.push(format!("{:.3}", r.diff.recall()));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("shape: a single overlapping execution shows parallel lanes as unordered,");
    println!("so the interval miner starts at higher precision in the tiny-log regime");
    println!("(m=5); the sequential engine needs enough executions to sample both");
    println!("orders of every independent pair, but its random interleaving gets there");
    println!("within tens of executions on this process. (recall < 1 reflects the");
    println!("preset's redundant shortcut edges, which complete-execution logs cannot");
    println!("witness — Lemma 2 closure equality still holds, see table3.)");
}
