//! ChaCha12 keystream generator matching `rand_chacha`'s `ChaCha12Rng`.
//!
//! The word stream equals the classic djb ChaCha stream (64-bit block
//! counter in words 12–13, 64-bit stream id in words 14–15, both
//! starting at zero) with 12 rounds, consumed sequentially through a
//! `rand_core::BlockRng`-shaped buffer. Buffer size does not affect the
//! consumed stream, so a single 16-word block per refill reproduces the
//! real crate's output exactly.

const ROUNDS: usize = 12;

#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    /// Key words (state words 4–11).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Stream id (state words 14–15); zero for `from_seed`.
    stream: u64,
}

impl ChaCha12Core {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha12Core {
            key,
            counter: 0,
            stream: 0,
        }
    }

    /// Produces the next 16-word keystream block and advances the
    /// counter.
    pub fn generate(&mut self, out: &mut [u32; 16]) {
        let state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut x = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = x[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// `rand_core::BlockRng`-equivalent word buffer over the ChaCha core.
#[derive(Clone, Debug)]
pub struct BlockRng {
    core: ChaCha12Core,
    results: [u32; 16],
    index: usize,
}

impl BlockRng {
    pub fn new(core: ChaCha12Core) -> Self {
        BlockRng {
            core,
            results: [0; 16],
            index: 16, // empty: refill on first use
        }
    }

    #[inline]
    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let len = 16;
        let index = self.index;
        if index < len - 1 {
            self.index = index + 2;
            u64::from(self.results[index]) | (u64::from(self.results[index + 1]) << 32)
        } else if index >= len {
            self.generate_and_set(2);
            u64::from(self.results[0]) | (u64::from(self.results[1]) << 32)
        } else {
            // One word left: combine it with the first word of the next
            // block, exactly like rand_core's BlockRng.
            let x = u64::from(self.results[len - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-aligned filling (matches BlockRng::fill_bytes via
        // fill_via_u32_chunks: consumes whole words, LE).
        let mut written = 0;
        while written < dest.len() {
            if self.index >= 16 {
                self.generate_and_set(0);
            }
            while self.index < 16 && written < dest.len() {
                let bytes = self.results[self.index].to_le_bytes();
                let take = (dest.len() - written).min(4);
                dest[written..written + take].copy_from_slice(&bytes[..take]);
                written += take;
                self.index += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_rounds_structure_changes_counter() {
        let mut core = ChaCha12Core::from_seed([0u8; 32]);
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        core.generate(&mut a);
        core.generate(&mut b);
        assert_ne!(a, b, "distinct blocks for successive counters");
    }

    #[test]
    fn block_rng_u64_straddles_block_boundary() {
        let core = ChaCha12Core::from_seed([7u8; 32]);
        let mut words = BlockRng::new(core.clone());
        let stream: Vec<u32> = (0..33).map(|_| words.next_u32()).collect();

        // Consume 15 u32s then a u64: the u64 must combine word 15 (low)
        // with word 16 (high), continuing the same stream.
        let mut rng = BlockRng::new(core);
        for _ in 0..15 {
            rng.next_u32();
        }
        let v = rng.next_u64();
        assert_eq!(v as u32, stream[15]);
        assert_eq!((v >> 32) as u32, stream[16]);
        assert_eq!(rng.next_u32(), stream[17]);
    }
}
