//! Broken-pipe-tolerant CLI output.
//!
//! `println!` panics when stdout is a closed pipe (`procmine mine … |
//! head` used to abort with a backtrace once `head` exited). The
//! [`out!`]/[`outln!`] macros route every stdout write through
//! [`stdout_write`], which exits with the conventional SIGPIPE status
//! instead of panicking; [`errln!`] writes diagnostics to stderr on a
//! best-effort basis (a closed stderr silently drops them — there is
//! nowhere left to complain to).

use std::io::Write;

/// Exit status for a closed stdout: `128 + SIGPIPE`, the status a
/// shell reports for a process actually killed by SIGPIPE.
pub const SIGPIPE_EXIT: u8 = 141;

/// True if any error in the source chain is an I/O broken pipe.
/// `main` uses this to exit quietly (status [`SIGPIPE_EXIT`]) instead
/// of printing an error banner for what is normal pipeline teardown.
pub fn error_is_broken_pipe(e: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(e);
    while let Some(err) = cur {
        if let Some(io) = err.downcast_ref::<std::io::Error>() {
            if io.kind() == std::io::ErrorKind::BrokenPipe {
                return true;
            }
        }
        cur = err.source();
    }
    false
}

fn handle_stdout_failure(e: std::io::Error) -> ! {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        std::process::exit(i32::from(SIGPIPE_EXIT));
    }
    let _ = writeln!(std::io::stderr(), "procmine: cannot write to stdout: {e}");
    std::process::exit(1);
}

/// Writes to stdout; a broken pipe exits with [`SIGPIPE_EXIT`], any
/// other write failure reports to stderr and exits 1.
pub fn stdout_write(args: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_fmt(args) {
        handle_stdout_failure(e);
    }
}

/// [`stdout_write`] plus a trailing newline.
pub fn stdout_writeln(args: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_fmt(args).and_then(|()| out.write_all(b"\n")) {
        handle_stdout_failure(e);
    }
}

/// Best-effort stderr line; write failures are ignored.
pub fn stderr_writeln(args: std::fmt::Arguments<'_>) {
    let mut err = std::io::stderr().lock();
    let _ = err.write_fmt(args).and_then(|()| err.write_all(b"\n"));
}

/// `print!` that tolerates a closed stdout.
macro_rules! out {
    ($($arg:tt)*) => {
        $crate::output::stdout_write(format_args!($($arg)*))
    };
}

/// `println!` that tolerates a closed stdout.
macro_rules! outln {
    () => {
        $crate::output::stdout_writeln(format_args!(""))
    };
    ($($arg:tt)*) => {
        $crate::output::stdout_writeln(format_args!($($arg)*))
    };
}

/// `eprintln!` that tolerates a closed stderr.
macro_rules! errln {
    () => {
        $crate::output::stderr_writeln(format_args!(""))
    };
    ($($arg:tt)*) => {
        $crate::output::stderr_writeln(format_args!($($arg)*))
    };
}

pub(crate) use {errln, out, outln};
