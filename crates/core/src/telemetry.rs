//! Pipeline telemetry: monotonic stage timers and counters for the
//! miners and the conformance checker, behind a sink trait that is
//! zero-cost when disabled.
//!
//! Every miner has a `*_in` form running inside a
//! [`MineSession`](crate::MineSession), whose [`MetricsSink`] receives
//! the measurements. The plain entry points use a default session
//! carrying [`NullSink`], whose `ENABLED = false` constant lets the
//! instrumentation monomorphize away entirely — the hot loops compile
//! to the same code as before the telemetry layer existed. A session
//! built `with_sink(&mut MinerMetrics)` collects:
//!
//! * per-thread CPU nanoseconds per pipeline [`Stage`] (summed across
//!   threads in the parallel miner);
//! * wall-clock nanoseconds per stage, recorded by [`WallStage`]
//!   timers at the parallel miner's fan-out/join barriers — the ratio
//!   CPU-ns / wall-ns per stage is the stage's parallel efficiency;
//! * the counters of [`MinerMetrics`] — executions scanned, pairs
//!   counted, edge populations before/after the noise threshold,
//!   two-cycles dissolved, nontrivial SCCs dissolved, edges dropped by
//!   the per-execution transitive reduction, and final edge count.
//!
//! The sink trait is generic over the metrics type it carries:
//! `MetricsSink<MinerMetrics>` (the default) feeds the miners,
//! [`MetricsSink<ConformanceMetrics>`] feeds
//! [`conformance`](crate::conformance), and the classify crate supplies
//! its own metrics type against the same trait. [`NullSink`] disables
//! all of them.
//!
//! [`MinerMetrics::to_json`] renders a machine-readable report with a
//! stable key order (locked by a unit test, so downstream golden tests
//! can depend on it); [`MinerMetrics::render_table`] renders the same
//! data as a human-readable table. Codec-level byte/event counts live
//! in `procmine_log::codec::CodecStats` (the log crate cannot depend on
//! this one); the CLI merges both reports.

use std::fmt;
use std::time::Instant;

/// The pipeline stages timed by the session-based miners.
///
/// Not every algorithm exercises every stage: Algorithm 1 has no
/// separate lowering pass (it lowers while counting) and no marking
/// pass (its step 4 is a global transitive reduction, timed as
/// [`Stage::Reduce`]). Untouched stages report zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Lowering the log to dense vertex ids (instance labeling, for the
    /// cyclic miner).
    Lower,
    /// Step 2: scanning executions and counting ordered/overlapping
    /// pairs.
    CountPairs,
    /// Step 3: noise thresholding and two-cycle removal.
    Prune,
    /// Step 4: dissolving strongly connected components (general and
    /// cyclic miners only; Algorithm 1 never forms cycles).
    SccRemoval,
    /// Transitive reduction: the per-execution marking pass of steps
    /// 5–6 (Algorithms 2–3) or the global reduction of Algorithm 1.
    Reduce,
    /// Final assembly of the named model graph and its edge support.
    Assemble,
}

impl Stage {
    /// Number of stages (size of the timer array).
    pub const COUNT: usize = 6;

    /// All stages, in reporting order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Lower,
        Stage::CountPairs,
        Stage::Prune,
        Stage::SccRemoval,
        Stage::Reduce,
        Stage::Assemble,
    ];

    /// Stable machine-readable name, used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lower => "lower",
            Stage::CountPairs => "count_pairs",
            Stage::Prune => "prune",
            Stage::SccRemoval => "scc_removal",
            Stage::Reduce => "reduce",
            Stage::Assemble => "assemble",
        }
    }

    /// The trace-span name for this stage (see [`crate::trace`]). This
    /// differs from [`name`](Self::name) only for [`Stage::Reduce`],
    /// whose span has always been called `transitive_reduction` while
    /// its JSON key stays `reduce`.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Reduce => "transitive_reduction",
            other => other.name(),
        }
    }
}

/// Counters and stage timings collected by one mining run.
///
/// Counters accumulate: reusing one `MinerMetrics` across several runs
/// (as the CLI's streaming mode does per snapshot) sums them, and
/// [`merge`](Self::merge) folds per-thread metrics together the same
/// way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MinerMetrics {
    /// CPU nanoseconds per stage, indexed by `Stage as usize` (summed
    /// across threads in the parallel miner).
    stage_nanos: [u64; Stage::COUNT],
    /// Wall-clock nanoseconds per stage, recorded by [`WallStage`]
    /// barrier timers. Zero for stages no barrier timed.
    wall_nanos: [u64; Stage::COUNT],
    /// Executions scanned by the step-2 counting pass.
    pub executions_scanned: u64,
    /// Pair observations recorded in step 2 (`k·(k−1)/2` per execution
    /// of length `k` — each unordered instance pair is inspected once).
    pub pairs_counted: u64,
    /// Ordered pairs with at least one observation, before the noise
    /// threshold is applied.
    pub edges_before_threshold: u64,
    /// Edges surviving the threshold (step 3, before two-cycle
    /// removal).
    pub edges_after_threshold: u64,
    /// Mutual edge pairs dissolved as two-cycles (each pair counts
    /// once).
    pub two_cycles_dissolved: u64,
    /// Nontrivial strongly connected components dissolved in step 4.
    pub scc_count: u64,
    /// Edges dropped because no execution's transitive reduction needed
    /// them (step 6), or by Algorithm 1's global reduction.
    pub edges_dropped_by_reduction: u64,
    /// Edges in the final mined graph (vertex-level, before the cyclic
    /// miner's instance merge).
    pub edges_final: u64,
    /// Bytes handed out by the marking pass's scratch arenas (cumulative
    /// across executions and threads; see `procmine_graph::arena`).
    pub arena_bytes: u64,
    /// Scratch-arena recycle events (one per marked execution).
    pub arena_resets: u64,
    /// Largest per-arena resident scratch footprint, in bytes (max
    /// across threads, not summed — it bounds one worker's memory).
    pub arena_high_water_bytes: u64,
}

impl MinerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        MinerMetrics::default()
    }

    /// Adds `nanos` to a stage timer.
    pub fn add_stage_nanos(&mut self, stage: Stage, nanos: u64) {
        self.stage_nanos[stage as usize] += nanos;
    }

    /// CPU nanoseconds accumulated for a stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }

    /// Adds `nanos` to a stage's wall-clock timer (see [`WallStage`]).
    pub fn add_wall_nanos(&mut self, stage: Stage, nanos: u64) {
        self.wall_nanos[stage as usize] += nanos;
    }

    /// Wall-clock nanoseconds accumulated for a stage (zero if no
    /// barrier timer ran for it).
    pub fn wall_nanos(&self, stage: Stage) -> u64 {
        self.wall_nanos[stage as usize]
    }

    /// Folds another metrics value into this one (all counters and
    /// timers add). Used to merge per-thread metrics at the parallel
    /// miner's join barriers.
    pub fn merge(&mut self, other: &MinerMetrics) {
        for (t, o) in self.stage_nanos.iter_mut().zip(other.stage_nanos) {
            *t += o;
        }
        for (t, o) in self.wall_nanos.iter_mut().zip(other.wall_nanos) {
            *t += o;
        }
        self.executions_scanned += other.executions_scanned;
        self.pairs_counted += other.pairs_counted;
        self.edges_before_threshold += other.edges_before_threshold;
        self.edges_after_threshold += other.edges_after_threshold;
        self.two_cycles_dissolved += other.two_cycles_dissolved;
        self.scc_count += other.scc_count;
        self.edges_dropped_by_reduction += other.edges_dropped_by_reduction;
        self.edges_final += other.edges_final;
        self.arena_bytes += other.arena_bytes;
        self.arena_resets += other.arena_resets;
        self.arena_high_water_bytes = self
            .arena_high_water_bytes
            .max(other.arena_high_water_bytes);
    }

    /// The counters as `(name, value)` pairs in the stable reporting
    /// order used by [`to_json`](Self::to_json) — the single source of
    /// truth for the JSON schema.
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("executions_scanned", self.executions_scanned),
            ("pairs_counted", self.pairs_counted),
            ("edges_before_threshold", self.edges_before_threshold),
            ("edges_after_threshold", self.edges_after_threshold),
            ("two_cycles_dissolved", self.two_cycles_dissolved),
            ("scc_count", self.scc_count),
            (
                "edges_dropped_by_reduction",
                self.edges_dropped_by_reduction,
            ),
            ("edges_final", self.edges_final),
        ]
    }

    /// The CPU stage timers as `(name, nanos)` pairs in reporting order.
    pub fn stages(&self) -> [(&'static str, u64); Stage::COUNT] {
        Stage::ALL.map(|s| (s.name(), self.stage_nanos(s)))
    }

    /// The wall-clock stage timers as `(name, nanos)` pairs in
    /// reporting order.
    pub fn stages_wall(&self) -> [(&'static str, u64); Stage::COUNT] {
        Stage::ALL.map(|s| (s.name(), self.wall_nanos(s)))
    }

    /// The arena-telemetry fields as `(name, value)` pairs in the
    /// stable order of the `"arena"` JSON section.
    pub fn arena_counters(&self) -> [(&'static str, u64); 3] {
        [
            ("bytes", self.arena_bytes),
            ("resets", self.arena_resets),
            ("high_water_bytes", self.arena_high_water_bytes),
        ]
    }

    /// Writes the JSON fields
    /// `"counters":{…},"stages_ns":{…},"stages_wall_ns":{…},"arena":{…}`
    /// (no surrounding braces) so callers can splice additional sibling
    /// fields — the CLI prepends its codec stats.
    pub fn write_json_fields(&self, out: &mut String) {
        write_json_object(out, "counters", &self.counters());
        out.push(',');
        write_json_object(out, "stages_ns", &self.stages());
        out.push(',');
        write_json_object(out, "stages_wall_ns", &self.stages_wall());
        out.push(',');
        write_json_object(out, "arena", &self.arena_counters());
    }

    /// Machine-readable JSON report with a stable key order (suitable
    /// for golden tests, modulo the timing values).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        self.write_json_fields(&mut out);
        out.push('}');
        out
    }

    /// Human-readable table of stages (CPU time, wall time, parallel
    /// efficiency) and counters. The wall and efficiency columns show
    /// `-` for stages no barrier timer measured (serial stages).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("stage                         cpu         wall        cpu/wall\n");
        for ((name, cpu), (_, wall)) in self.stages().iter().zip(self.stages_wall()) {
            let (wall_col, eff_col) = if wall > 0 {
                (
                    format_nanos(wall),
                    format!("{:.2}x", *cpu as f64 / wall as f64),
                )
            } else {
                ("-".to_string(), "-".to_string())
            };
            out.push_str(&format!(
                "  {name:<26}  {:<10}  {wall_col:<10}  {eff_col}\n",
                format_nanos(*cpu)
            ));
        }
        out.push_str("counter                       value\n");
        for (name, value) in self.counters() {
            out.push_str(&format!("  {name:<26}  {value}\n"));
        }
        out
    }
}

/// Writes one `"name":{"key":value,…}` JSON object (shared by the
/// metrics types' `write_json_fields`).
fn write_json_object(out: &mut String, name: &str, pairs: &[(&'static str, u64)]) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":{");
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push('}');
}

impl fmt::Display for MinerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

fn format_nanos(nanos: u64) -> String {
    let ns = nanos as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A destination for pipeline telemetry carrying metrics of type `M`
/// (defaulting to [`MinerMetrics`], so miner code writes plain
/// `S: MetricsSink` bounds).
///
/// The session-based entry points are generic over this trait and
/// guard every measurement behind `Self::ENABLED`, a compile-time
/// constant: with [`NullSink`] the guards are `if false` and the
/// instrumentation vanishes at monomorphization, so the plain entry
/// points pay nothing.
pub trait MetricsSink<M = MinerMetrics> {
    /// Whether this sink records anything. Instrumentation code checks
    /// this constant before doing measurement work.
    const ENABLED: bool;

    /// Applies `update` to the underlying metrics; a no-op when
    /// disabled.
    fn record(&mut self, update: impl FnOnce(&mut M));
}

/// The disabled sink: records nothing, costs nothing — for any metrics
/// type.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl<M> MetricsSink<M> for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _update: impl FnOnce(&mut M)) {}
}

/// A mutable reference to a sink is itself a sink, so a
/// [`MineSession`](crate::MineSession) can borrow caller-owned metrics
/// (`session.with_sink(&mut metrics)`) without taking ownership.
impl<M, S: MetricsSink<M>> MetricsSink<M> for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn record(&mut self, update: impl FnOnce(&mut M)) {
        (**self).record(update);
    }
}

impl MetricsSink for MinerMetrics {
    const ENABLED: bool = true;

    fn record(&mut self, update: impl FnOnce(&mut MinerMetrics)) {
        update(self);
    }
}

/// A wall-clock timer for one stage across a parallel fan-out/join
/// barrier.
///
/// Start it on the coordinating thread before spawning workers and
/// finish it after the join; the elapsed wall time is credited to the
/// stage's [`MinerMetrics::wall_nanos`], alongside the per-thread CPU
/// time the workers record themselves. With at least two busy workers
/// the stage's wall time is below its summed CPU time; the ratio is the
/// stage's parallel efficiency.
#[must_use = "a started WallStage must be finished to record anything"]
pub struct WallStage {
    stage: Stage,
    started: Option<Instant>,
}

impl WallStage {
    /// Starts a wall timer for `stage`; free when `S` is disabled.
    pub fn start<S: MetricsSink>(stage: Stage) -> WallStage {
        WallStage {
            stage,
            started: S::ENABLED.then(Instant::now),
        }
    }

    /// Stops the timer, crediting the elapsed wall nanoseconds.
    pub fn finish<S: MetricsSink>(self, sink: &mut S) {
        if let Some(started) = self.started {
            let nanos = started.elapsed().as_nanos() as u64;
            let stage = self.stage;
            sink.record(move |m| m.add_wall_nanos(stage, nanos));
        }
    }
}

/// Counters and timers collected by one conformance-checking run (see
/// [`crate::conformance`]): executions checked, violations by variant,
/// and the Definition-7 closure/SCC analysis times. Fields accumulate,
/// like [`MinerMetrics`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConformanceMetrics {
    /// Executions checked against Definition 6.
    pub executions_checked: u64,
    /// Executions with no violations.
    pub consistent_executions: u64,
    /// Count of `Violation::UnknownActivity`.
    pub violations_unknown_activity: u64,
    /// Count of `Violation::NotConnected`.
    pub violations_not_connected: u64,
    /// Count of `Violation::WrongInitiating`.
    pub violations_wrong_initiating: u64,
    /// Count of `Violation::WrongTerminating`.
    pub violations_wrong_terminating: u64,
    /// Count of `Violation::Unreachable`.
    pub violations_unreachable: u64,
    /// Count of `Violation::DependencyViolated`.
    pub violations_dependency: u64,
    /// Missing dependencies found (dependency completeness failures).
    pub missing_dependencies: u64,
    /// Spurious dependencies found (irredundancy failures).
    pub spurious_dependencies: u64,
    /// Log activities with no same-named model node.
    pub unknown_activities: u64,
    /// Nanoseconds computing the model's transitive closure.
    pub closure_nanos: u64,
    /// Nanoseconds computing the model's strongly connected components.
    pub scc_nanos: u64,
    /// Nanoseconds spent in per-execution Definition-6 checks.
    pub check_nanos: u64,
}

impl ConformanceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ConformanceMetrics::default()
    }

    /// Folds another metrics value into this one (everything adds).
    pub fn merge(&mut self, other: &ConformanceMetrics) {
        for (t, o) in [
            (&mut self.executions_checked, other.executions_checked),
            (&mut self.consistent_executions, other.consistent_executions),
            (
                &mut self.violations_unknown_activity,
                other.violations_unknown_activity,
            ),
            (
                &mut self.violations_not_connected,
                other.violations_not_connected,
            ),
            (
                &mut self.violations_wrong_initiating,
                other.violations_wrong_initiating,
            ),
            (
                &mut self.violations_wrong_terminating,
                other.violations_wrong_terminating,
            ),
            (
                &mut self.violations_unreachable,
                other.violations_unreachable,
            ),
            (&mut self.violations_dependency, other.violations_dependency),
            (&mut self.missing_dependencies, other.missing_dependencies),
            (&mut self.spurious_dependencies, other.spurious_dependencies),
            (&mut self.unknown_activities, other.unknown_activities),
            (&mut self.closure_nanos, other.closure_nanos),
            (&mut self.scc_nanos, other.scc_nanos),
            (&mut self.check_nanos, other.check_nanos),
        ] {
            *t += o;
        }
    }

    /// The counters as `(name, value)` pairs in the stable reporting
    /// order used by [`to_json`](Self::to_json).
    pub fn counters(&self) -> [(&'static str, u64); 11] {
        [
            ("executions_checked", self.executions_checked),
            ("consistent_executions", self.consistent_executions),
            (
                "violations_unknown_activity",
                self.violations_unknown_activity,
            ),
            ("violations_not_connected", self.violations_not_connected),
            (
                "violations_wrong_initiating",
                self.violations_wrong_initiating,
            ),
            (
                "violations_wrong_terminating",
                self.violations_wrong_terminating,
            ),
            ("violations_unreachable", self.violations_unreachable),
            ("violations_dependency", self.violations_dependency),
            ("missing_dependencies", self.missing_dependencies),
            ("spurious_dependencies", self.spurious_dependencies),
            ("unknown_activities", self.unknown_activities),
        ]
    }

    /// The timers as `(name, nanos)` pairs in reporting order.
    pub fn timers(&self) -> [(&'static str, u64); 3] {
        [
            ("closure", self.closure_nanos),
            ("scc", self.scc_nanos),
            ("execution_checks", self.check_nanos),
        ]
    }

    /// Writes the JSON fields `"counters":{…},"timers_ns":{…}` (no
    /// surrounding braces) so callers can splice sibling fields.
    pub fn write_json_fields(&self, out: &mut String) {
        write_json_object(out, "counters", &self.counters());
        out.push(',');
        write_json_object(out, "timers_ns", &self.timers());
    }

    /// Machine-readable JSON report with a stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        self.write_json_fields(&mut out);
        out.push('}');
        out
    }

    /// Human-readable two-column table of timers and counters.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("conformance timer             time\n");
        for (name, nanos) in self.timers() {
            out.push_str(&format!("  {name:<26}  {}\n", format_nanos(nanos)));
        }
        out.push_str("conformance counter           value\n");
        for (name, value) in self.counters() {
            out.push_str(&format!("  {name:<26}  {value}\n"));
        }
        out
    }
}

impl fmt::Display for ConformanceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

impl MetricsSink<ConformanceMetrics> for ConformanceMetrics {
    const ENABLED: bool = true;

    fn record(&mut self, update: impl FnOnce(&mut ConformanceMetrics)) {
        update(self);
    }
}

/// Starts a stage timer if the sink is enabled (monomorphizes to `None`
/// for [`NullSink`]).
pub(crate) fn stage_start<S: MetricsSink>() -> Option<Instant> {
    S::ENABLED.then(Instant::now)
}

/// Closes a stage timer opened by [`stage_start`], crediting the
/// elapsed nanoseconds to `stage`.
pub(crate) fn stage_end<S: MetricsSink>(sink: &mut S, stage: Stage, started: Option<Instant>) {
    if let Some(started) = started {
        let nanos = started.elapsed().as_nanos() as u64;
        sink.record(|m| m.add_stage_nanos(stage, nanos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MinerMetrics {
        let mut m = MinerMetrics::new();
        m.add_stage_nanos(Stage::Lower, 10);
        m.add_stage_nanos(Stage::CountPairs, 20);
        m.add_stage_nanos(Stage::Prune, 30);
        m.add_stage_nanos(Stage::SccRemoval, 35);
        m.add_stage_nanos(Stage::Reduce, 40);
        m.add_stage_nanos(Stage::Assemble, 50);
        m.add_wall_nanos(Stage::CountPairs, 11);
        m.add_wall_nanos(Stage::Reduce, 12);
        m.executions_scanned = 1;
        m.pairs_counted = 2;
        m.edges_before_threshold = 3;
        m.edges_after_threshold = 4;
        m.two_cycles_dissolved = 5;
        m.scc_count = 6;
        m.edges_dropped_by_reduction = 7;
        m.edges_final = 8;
        m.arena_bytes = 64;
        m.arena_resets = 2;
        m.arena_high_water_bytes = 32;
        m
    }

    #[test]
    fn json_schema_is_locked() {
        // This string is the contract for downstream golden tests: key
        // order and spelling must not change without a migration.
        assert_eq!(
            sample().to_json(),
            "{\"counters\":{\
             \"executions_scanned\":1,\
             \"pairs_counted\":2,\
             \"edges_before_threshold\":3,\
             \"edges_after_threshold\":4,\
             \"two_cycles_dissolved\":5,\
             \"scc_count\":6,\
             \"edges_dropped_by_reduction\":7,\
             \"edges_final\":8},\
             \"stages_ns\":{\
             \"lower\":10,\
             \"count_pairs\":20,\
             \"prune\":30,\
             \"scc_removal\":35,\
             \"reduce\":40,\
             \"assemble\":50},\
             \"stages_wall_ns\":{\
             \"lower\":0,\
             \"count_pairs\":11,\
             \"prune\":0,\
             \"scc_removal\":0,\
             \"reduce\":12,\
             \"assemble\":0},\
             \"arena\":{\
             \"bytes\":64,\
             \"resets\":2,\
             \"high_water_bytes\":32}}"
        );
    }

    #[test]
    fn conformance_json_schema_is_locked() {
        let mut m = ConformanceMetrics::new();
        m.executions_checked = 1;
        m.consistent_executions = 2;
        m.violations_unknown_activity = 3;
        m.violations_not_connected = 4;
        m.violations_wrong_initiating = 5;
        m.violations_wrong_terminating = 6;
        m.violations_unreachable = 7;
        m.violations_dependency = 8;
        m.missing_dependencies = 9;
        m.spurious_dependencies = 10;
        m.unknown_activities = 11;
        m.closure_nanos = 12;
        m.scc_nanos = 13;
        m.check_nanos = 14;
        assert_eq!(
            m.to_json(),
            "{\"counters\":{\
             \"executions_checked\":1,\
             \"consistent_executions\":2,\
             \"violations_unknown_activity\":3,\
             \"violations_not_connected\":4,\
             \"violations_wrong_initiating\":5,\
             \"violations_wrong_terminating\":6,\
             \"violations_unreachable\":7,\
             \"violations_dependency\":8,\
             \"missing_dependencies\":9,\
             \"spurious_dependencies\":10,\
             \"unknown_activities\":11},\
             \"timers_ns\":{\
             \"closure\":12,\
             \"scc\":13,\
             \"execution_checks\":14}}"
        );
        let mut twice = m.clone();
        twice.merge(&m);
        assert_eq!(twice.executions_checked, 2);
        assert_eq!(twice.unknown_activities, 22);
        assert_eq!(twice.check_nanos, 28);
        let table = m.render_table();
        for (name, _) in m.counters() {
            assert!(table.contains(name), "missing counter {name}");
        }
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.stage_nanos(Stage::Lower), 20);
        assert_eq!(a.stage_nanos(Stage::Assemble), 100);
        assert_eq!(a.wall_nanos(Stage::CountPairs), 22);
        assert_eq!(a.wall_nanos(Stage::Reduce), 24);
        assert_eq!(a.executions_scanned, 2);
        assert_eq!(a.edges_final, 16);
    }

    #[test]
    fn default_is_all_zero() {
        let m = MinerMetrics::default();
        assert!(m.counters().iter().all(|&(_, v)| v == 0));
        assert!(m.stages().iter().all(|&(_, v)| v == 0));
        assert!(m.stages_wall().iter().all(|&(_, v)| v == 0));
    }

    // The disabled path is a compile-time property.
    const _: () = assert!(!<NullSink as MetricsSink>::ENABLED);
    const _: () = assert!(MinerMetrics::ENABLED);
    const _: () = assert!(<ConformanceMetrics as MetricsSink<ConformanceMetrics>>::ENABLED);

    #[test]
    fn wall_stage_records_elapsed_time() {
        let mut m = MinerMetrics::new();
        let wall = WallStage::start::<MinerMetrics>(Stage::CountPairs);
        wall.finish(&mut m);
        // Elapsed time is monotonic, possibly zero on coarse clocks —
        // the credit itself must land on the right stage.
        let _ = m.wall_nanos(Stage::CountPairs);
        assert_eq!(m.wall_nanos(Stage::Reduce), 0);
    }

    #[test]
    fn wall_stage_is_inert_for_null_sink() {
        let mut sink = NullSink;
        let wall = WallStage::start::<NullSink>(Stage::Reduce);
        assert!(wall.started.is_none(), "no clock read when disabled");
        wall.finish(&mut sink);
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut sink = NullSink;
        sink.record(|m: &mut MinerMetrics| m.edges_final += 1);
        sink.record(|m: &mut ConformanceMetrics| m.executions_checked += 1);
        // And timers never even start.
        assert!(stage_start::<NullSink>().is_none());
    }

    #[test]
    fn metrics_sink_records() {
        let mut m = MinerMetrics::new();
        m.record(|m| m.edges_final += 3);
        assert_eq!(m.edges_final, 3);
        let started = stage_start::<MinerMetrics>();
        assert!(started.is_some());
        stage_end(&mut m, Stage::Prune, started);
        // Elapsed time is monotonic, possibly zero on coarse clocks —
        // just assert it was credited without panicking.
        let _ = m.stage_nanos(Stage::Prune);
    }

    #[test]
    fn table_lists_all_keys() {
        let table = sample().render_table();
        for (name, _) in sample().counters() {
            assert!(table.contains(name), "missing counter {name}");
        }
        for stage in Stage::ALL {
            assert!(
                table.contains(stage.name()),
                "missing stage {}",
                stage.name()
            );
        }
    }

    #[test]
    fn json_round_trips_through_serde_value() {
        // The report must stay parseable JSON.
        let parsed: serde_json::Value = serde_json::from_str(&sample().to_json()).unwrap();
        match parsed {
            serde_json::Value::Map(fields) => assert_eq!(fields.len(), 4),
            other => panic!("expected object, got {other:?}"),
        }
    }
}
