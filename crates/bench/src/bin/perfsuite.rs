//! The unified perf-regression harness.
//!
//! Runs a fixed matrix of (workload × pipeline stage) timings — the
//! §8.1 random-walk workloads through every miner, conformance
//! checking, and the four codec round-trips, plus micro-benchmarks of
//! the transitive-reduction and SCC graph phases — and writes
//! median/p95 wall times to a schema-stable JSON report
//! (`BENCH_perfsuite.json` by default). With `--compare old.json` it
//! diffs the fresh run against a saved baseline and exits nonzero when
//! any cell's median regressed past the threshold, so CI can gate on
//! performance without Criterion's runtime cost.
//!
//! ```text
//! perfsuite [--smoke] [--out FILE] [--repeats N] [--compare OLD.json]
//!           [--threshold-pct N] [--check-schema FILE] [--normalize]
//!           [--assert-xes-ratio FILE] [--assert-checkpoint-ratio FILE]
//!           [--assert-columnar-ratio FILE]
//! ```
//!
//! `--normalize` adds a `ratio_vs_general` field to every cell: its
//! median as a multiple of the same-scenario `mine.general` median, so
//! stage costs read as fractions of the reference pipeline.
//!
//! `--assert-xes-ratio FILE` runs no benchmarks: it loads a saved
//! report and fails when any scenario's `codec.xes` median exceeds
//! [`XES_RATIO_LIMIT`] times its `codec.jsonl` median — the codec
//! fast-path gate, pinned against the committed baseline.
//!
//! `--assert-checkpoint-ratio FILE` is the same kind of saved-report
//! gate for the `--follow` checkpoint subsystem: it fails when any
//! scenario's `stream.checkpoint` median (the follow pipeline with
//! cadenced atomic checkpoint saves, amortized per pass) exceeds
//! [`CHECKPOINT_RATIO_LIMIT`] times its `stream.mine` median.
//!
//! `--assert-columnar-ratio FILE` is the saved-report gate for the
//! columnar data-layer refactor: every scenario's `mine.columnar_ratio`
//! cell (the `mine.general` median over the `mine.legacy` median, in
//! milli-units — 1000 is parity) must stay at or below
//! [`COLUMNAR_RATIO_MILLI_LIMIT`], i.e. the columnar path may never be
//! slower than the retained nested-`Vec` reference implementation on
//! the §8.1 workloads.
//!
//! Exit status: 0 on success, 1 on usage or I/O errors, 2 when
//! `--compare` found regressions, 3 when the disabled-tracer overhead
//! guard tripped (a default-session `mine_general_dag_in` call
//! measurably slower than the plain entry point), 4 when
//! `--assert-xes-ratio` found the XES decoder too far behind JSONL,
//! 5 when `--assert-checkpoint-ratio` found checkpointing too far
//! above the plain follow pipeline, 6 when the disabled-registry
//! overhead guard tripped (a session explicitly carrying
//! `Registry::disabled()` measurably slower than the plain entry
//! point), 7 when `--assert-columnar-ratio` found the columnar miner
//! slower than the legacy layout.

use procmine_bench::perf::{
    compare, max_stage_ratio, normalize, summarize, Cell, RegistryOverhead, Report, TraceOverhead,
};
use procmine_bench::synthetic_workload;
use procmine_core::conformance::check_conformance;
use procmine_core::reference::mine_general_reference;
use procmine_core::{
    mine_auto, mine_cyclic, mine_general_dag, mine_general_dag_in, mine_general_dag_parallel,
    FollowCheckpoint, IncrementalMiner, MineSession, MinerOptions, OnlineMiner, OptionsFingerprint,
    Registry, SnapshotPolicy, SourceState, DEFAULT_CHECKPOINT_EVERY,
};
use procmine_graph::reduction::{
    transitive_reduction_matrix, transitive_reduction_matrix_parallel_budgeted,
};
use procmine_graph::scc::{tarjan_scc, tarjan_scc_parallel_budgeted};
use procmine_graph::{AdjMatrix, Budget, DiGraph};
use procmine_log::codec::{self, CodecStats};
use procmine_log::{IngestReport, RecoveryPolicy, WorkflowLog};
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

/// Ratio above which disabled tracing counts as "not free". The plain
/// miners run through a default session, so today's expected ratio is
/// ~1.0; the guard exists to catch future divergence.
const TRACE_OVERHEAD_LIMIT: f64 = 1.5;

/// Ratio above which a disabled metrics registry counts as "not free".
/// Same contract as the tracer guard: a disabled [`Registry`] never
/// reads the clock and every recording path is a single branch, so a
/// session carrying one must track the plain entry point.
const REGISTRY_OVERHEAD_LIMIT: f64 = 1.5;

/// Thread count for the parallel micro cells and `mine.parallel4`.
const MICRO_THREADS: usize = 4;

/// `--assert-xes-ratio` limit: the `codec.xes` median may cost at most
/// this multiple of the same-scenario `codec.jsonl` median. The
/// zero-copy XES parser landed well under it; the gate keeps the XML
/// path from quietly sliding back to its pre-rewrite 10–20x.
const XES_RATIO_LIMIT: f64 = 2.0;

/// `--assert-checkpoint-ratio` limit: the `stream.checkpoint` median
/// (follow pipeline + cadenced atomic saves, amortized per pass) may
/// cost at most this multiple of the same-scenario `stream.mine`
/// median. At [`DEFAULT_CHECKPOINT_EVERY`] the save's ~1.5ms fsync is
/// spread over enough consumed events to stay inside 10%.
const CHECKPOINT_RATIO_LIMIT: f64 = 1.10;

/// `--assert-columnar-ratio` limit, in milli-units: the
/// `mine.columnar_ratio` cell (columnar `mine.general` median × 1000 /
/// `mine.legacy` median) must not exceed 1000 — the columnar layout
/// must be at least at parity with the nested-`Vec` reference path it
/// replaced.
const COLUMNAR_RATIO_MILLI_LIMIT: u64 = 1000;

/// [`MICRO_THREADS`] clamped to the host's cores: oversubscribing a
/// smaller machine only measures context-switch thrash, so on (say) a
/// single-core runner the parallel micro cells exercise the kernels'
/// serial fallback instead and stay comparable to the serial cells.
fn micro_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(MICRO_THREADS)
}

struct Args {
    smoke: bool,
    out: String,
    repeats: usize,
    compare: Option<String>,
    threshold_pct: f64,
    check_schema: Option<String>,
    assert_xes_ratio: Option<String>,
    assert_checkpoint_ratio: Option<String>,
    assert_columnar_ratio: Option<String>,
    normalize: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_perfsuite.json".to_string(),
        repeats: 0, // resolved after --smoke is known
        compare: None,
        threshold_pct: 15.0,
        check_schema: None,
        assert_xes_ratio: None,
        assert_checkpoint_ratio: None,
        assert_columnar_ratio: None,
        normalize: false,
    };
    let mut repeats: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value("--out")?,
            "--repeats" => {
                repeats = Some(
                    value("--repeats")?
                        .parse()
                        .map_err(|e| format!("--repeats: {e}"))?,
                );
            }
            "--compare" => args.compare = Some(value("--compare")?),
            "--threshold-pct" => {
                args.threshold_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            "--check-schema" => args.check_schema = Some(value("--check-schema")?),
            "--assert-xes-ratio" => args.assert_xes_ratio = Some(value("--assert-xes-ratio")?),
            "--assert-checkpoint-ratio" => {
                args.assert_checkpoint_ratio = Some(value("--assert-checkpoint-ratio")?);
            }
            "--assert-columnar-ratio" => {
                args.assert_columnar_ratio = Some(value("--assert-columnar-ratio")?);
            }
            "--normalize" => args.normalize = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    args.repeats = repeats.unwrap_or(if args.smoke { 3 } else { 5 });
    if args.repeats == 0 {
        return Err("--repeats must be positive".to_string());
    }
    Ok(args)
}

/// Times `op` (after `setup`-free warmup) `repeats` times in
/// nanoseconds. One untimed warmup run absorbs cold caches and lazy
/// allocations.
fn time_runs<F: FnMut()>(repeats: usize, mut op: F) -> Vec<u64> {
    op();
    (0..repeats)
        .map(|_| {
            let started = Instant::now();
            op();
            started.elapsed().as_nanos() as u64
        })
        .collect()
}

/// The names of a log's executions, for replaying through the
/// incremental miner's absorb path.
fn sequences(log: &WorkflowLog) -> Vec<Vec<String>> {
    log.executions()
        .iter()
        .map(|exec| {
            exec.sequence()
                .iter()
                .map(|&a| log.activities().name(a).to_string())
                .collect()
        })
        .collect()
}

fn workload_cells(scenario: &str, log: &WorkflowLog, repeats: usize, cells: &mut Vec<Cell>) {
    let options = MinerOptions::default();

    let general = summarize(
        scenario,
        "mine.general",
        time_runs(repeats, || {
            mine_general_dag(log, &options).expect("mining succeeds");
        }),
    );
    // The retained nested-`Vec` implementation the columnar refactor
    // replaced: same Algorithm 2 semantics (pinned by the differential
    // suite), pre-refactor data layout.
    let legacy = summarize(
        scenario,
        "mine.legacy",
        time_runs(repeats, || {
            mine_general_reference(log, &options).expect("mining succeeds");
        }),
    );
    // Derived cell in milli-units (1000 == parity) so the committed
    // baseline records how the columnar layout compares to the legacy
    // one, and `--assert-columnar-ratio` can gate on it.
    let milli = |num: u64, den: u64| num.saturating_mul(1000) / den.max(1);
    cells.push(Cell {
        scenario: scenario.to_string(),
        stage: "mine.columnar_ratio".to_string(),
        median_ns: milli(general.median_ns, legacy.median_ns),
        p95_ns: milli(general.p95_ns, legacy.p95_ns),
        runs: repeats,
        ratio_vs_general: None,
    });
    cells.push(general);
    cells.push(legacy);
    cells.push(summarize(
        scenario,
        "mine.auto",
        time_runs(repeats, || {
            mine_auto(log, &options).expect("mining succeeds");
        }),
    ));
    cells.push(summarize(
        scenario,
        "mine.cyclic",
        time_runs(repeats, || {
            mine_cyclic(log, &options).expect("mining succeeds");
        }),
    ));
    cells.push(summarize(
        scenario,
        "mine.parallel4",
        time_runs(repeats, || {
            mine_general_dag_parallel(log, &options, MICRO_THREADS).expect("mining succeeds");
        }),
    ));

    let seqs = sequences(log);
    cells.push(summarize(
        scenario,
        "mine.incremental",
        time_runs(repeats, || {
            let mut miner = IncrementalMiner::new(options.clone());
            for seq in &seqs {
                miner.absorb_sequence(seq).expect("absorb succeeds");
            }
            miner.model().expect("model succeeds");
        }),
    ));

    // The --follow pipeline end to end: decode a pre-encoded flowmark
    // buffer event-by-event, assemble interleavable cases, feed the
    // online miner, and materialize the final snapshot. One pass over
    // the workload is sub-10ms — scheduler-noise territory — so the
    // cell loops enough passes to cover two DEFAULT_CHECKPOINT_EVERY
    // cadence windows and records per-pass time. stream.checkpoint
    // below runs the identical pass count with the checkpoint
    // subsystem engaged, so their ratio isolates the checkpoint cost.
    let mut follow_buf = Vec::new();
    codec::flowmark::write_log(log, &mut follow_buf).expect("write succeeds");
    let events_per_pass: u64 = log.executions().iter().map(|e| e.len() as u64).sum();
    let passes = (2 * DEFAULT_CHECKPOINT_EVERY / events_per_pass.max(1) + 1) as usize;
    let follow_pass = |capture: bool| -> Option<FollowCheckpoint> {
        use procmine_log::stream::{AssemblerConfig, CaseAssembler, FlowmarkSource, StreamError};
        use procmine_log::{ActivityTable, Execution};
        let mut miner = OnlineMiner::new(options.clone(), SnapshotPolicy::on_demand());
        let mut source = FlowmarkSource::new(&follow_buf[..], RecoveryPolicy::Strict);
        let mut assembler = CaseAssembler::new(
            AssemblerConfig::default(),
            |exec: &Execution, table: &ActivityTable| -> Result<(), StreamError> {
                miner
                    .absorb(exec, table)
                    .map(|_| ())
                    .map_err(|e| StreamError::Sink(Box::new(e)))
            },
        );
        source.pump(&mut assembler).expect("stream succeeds");
        let assembler_state = capture.then(|| assembler.export_state());
        drop(assembler);
        let ck = assembler_state.map(|assembler_state| {
            let (byte_offset, line) = source.position();
            FollowCheckpoint {
                fingerprint: OptionsFingerprint {
                    noise_threshold: options.noise_threshold,
                    max_open_cases: 1024,
                    strict_assembly: true,
                },
                miner: miner.export_state(),
                assembler: assembler_state,
                source: SourceState {
                    byte_offset,
                    line: line as u64,
                    source_len: follow_buf.len() as u64,
                    stats: source.stats(),
                    report: source.report().clone(),
                },
            }
        });
        miner.snapshot().expect("snapshot succeeds");
        ck
    };
    cells.push(summarize(
        scenario,
        "stream.mine",
        time_runs(repeats, || {
            for _ in 0..passes {
                follow_pass(false);
            }
        })
        .into_iter()
        .map(|ns| ns / passes as u64)
        .collect(),
    ));

    // The same pipeline with the checkpoint subsystem engaged: a real
    // atomic save (tmp + fsync + rename) every DEFAULT_CHECKPOINT_EVERY
    // consumed events — the steady-state cost of a crash-safe session
    // (the load side runs once per restart, not per cadence; its
    // correctness is pinned by tests/checkpoint_recovery.rs). The
    // carry counter survives passes and runs, exactly like a
    // long-lived follow session, so each run pays for exactly the
    // saves the cadence demands. Per-pass time, same pass count as
    // stream.mine; the --assert-checkpoint-ratio gate pins the ratio.
    let ck_path = std::env::temp_dir().join(format!(
        "procmine-perfsuite-{}-{scenario}.ckpt",
        std::process::id()
    ));
    let mut carry = 0u64;
    let runs = time_runs(repeats, || {
        for _ in 0..passes {
            carry += events_per_pass;
            let checkpoint_now = carry >= DEFAULT_CHECKPOINT_EVERY;
            if let Some(ck) = follow_pass(checkpoint_now) {
                carry = 0;
                ck.save(&ck_path).expect("save succeeds");
            }
        }
    });
    let _ = fs::remove_file(&ck_path);
    cells.push(summarize(
        scenario,
        "stream.checkpoint",
        runs.into_iter().map(|ns| ns / passes as u64).collect(),
    ));

    let model = mine_general_dag(log, &options).expect("mining succeeds");
    cells.push(summarize(
        scenario,
        "check_conformance",
        time_runs(repeats, || {
            check_conformance(&model, log);
        }),
    ));

    // Codec round-trips: serialize to a buffer, parse it back.
    macro_rules! codec_cell {
        ($stage:literal, $module:ident) => {
            cells.push(summarize(
                scenario,
                $stage,
                time_runs(repeats, || {
                    let mut buf = Vec::new();
                    codec::$module::write_log(log, &mut buf).expect("write succeeds");
                    codec::$module::read_log(&buf[..]).expect("read succeeds");
                }),
            ));
        };
    }
    codec_cell!("codec.flowmark", flowmark);
    codec_cell!("codec.seqs", seqs);
    codec_cell!("codec.jsonl", jsonl);
    codec_cell!("codec.xes", xes);

    // XES chunked-parallel decode at the micro thread count (on a
    // single-core runner this measures the serial-fallback dispatch).
    cells.push(summarize(
        scenario,
        "codec.xes_parallel",
        time_runs(repeats, || {
            let mut buf = Vec::new();
            codec::xes::write_log(log, &mut buf).expect("write succeeds");
            codec::xes::read_log_with_threads(
                &buf[..],
                RecoveryPolicy::Strict,
                micro_threads(),
                &mut CodecStats::default(),
                &mut IngestReport::default(),
            )
            .expect("read succeeds");
        }),
    ));

    // Read→write round-trip from a pre-encoded buffer: isolates the
    // decode+encode cost from the initial materialization above.
    let mut pre_encoded = Vec::new();
    codec::xes::write_log(log, &mut pre_encoded).expect("write succeeds");
    cells.push(summarize(
        scenario,
        "codec.xes_roundtrip",
        time_runs(repeats, || {
            let back = codec::xes::read_log(&pre_encoded[..]).expect("read succeeds");
            let mut out = Vec::new();
            codec::xes::write_log(&back, &mut out).expect("write succeeds");
        }),
    ));
}

/// `k` disjoint directed cycles whose sizes sum to `total` vertices
/// (and therefore `total` edges) — the same V+E as one big cycle, but
/// with `k` weak components for the parallel SCC to spread over.
fn disjoint_cycles(total: usize, k: usize) -> DiGraph<()> {
    let base = total / k;
    let extra = total % k;
    let mut edges = Vec::with_capacity(total);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        for j in 0..len {
            edges.push((start + j, start + (j + 1) % len));
        }
        start += len;
    }
    DiGraph::from_edges(vec![(); total], edges)
}

/// Micro-benchmarks of the two graph phases the miners lean on — matrix
/// transitive reduction over a transitive tournament (worst case — every
/// edge above the diagonal) and Tarjan SCC over 64 disjoint directed
/// cycles — each in its serial form and its [`micro_threads`]-way
/// parallel strategy.
fn micro_cells(smoke: bool, repeats: usize, cells: &mut Vec<Cell>) {
    let n = if smoke { 100 } else { 300 };
    let mut tournament = AdjMatrix::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            tournament.add_edge(u, v);
        }
    }
    cells.push(summarize(
        "micro",
        "transitive_reduction",
        time_runs(repeats, || {
            transitive_reduction_matrix(&tournament).expect("tournament is a DAG");
        }),
    ));
    cells.push(summarize(
        "micro",
        "transitive_reduction_parallel",
        time_runs(repeats, || {
            transitive_reduction_matrix_parallel_budgeted(
                &tournament,
                micro_threads(),
                &Budget::unlimited(),
            )
            .expect("tournament is a DAG");
        }),
    ));

    let cycle_n = if smoke { 2_000 } else { 10_000 };
    let cycles = disjoint_cycles(cycle_n, 64);
    cells.push(summarize(
        "micro",
        "scc",
        time_runs(repeats, || {
            tarjan_scc(&cycles);
        }),
    ));
    cells.push(summarize(
        "micro",
        "scc_parallel",
        time_runs(repeats, || {
            tarjan_scc_parallel_budgeted(&cycles, micro_threads(), &Budget::unlimited())
                .expect("unlimited budget");
        }),
    ));
}

/// Measures the disabled-tracer overhead: the plain general miner
/// against `mine_general_dag_in` with a default session (null sink,
/// no-op tracer), interleaved so drift hits both arms equally.
fn trace_overhead(log: &WorkflowLog, repeats: usize) -> TraceOverhead {
    let options = MinerOptions::default();
    let mut plain = Vec::with_capacity(repeats);
    let mut traced = Vec::with_capacity(repeats);
    mine_general_dag(log, &options).expect("mining succeeds"); // warmup
    for _ in 0..repeats {
        let started = Instant::now();
        mine_general_dag(log, &options).expect("mining succeeds");
        plain.push(started.elapsed().as_nanos() as u64);

        let started = Instant::now();
        mine_general_dag_in(&mut MineSession::new(), log, &options).expect("mining succeeds");
        traced.push(started.elapsed().as_nanos() as u64);
    }
    let plain_cell = summarize("overhead", "plain", plain);
    let traced_cell = summarize("overhead", "traced", traced);
    TraceOverhead {
        plain_median_ns: plain_cell.median_ns,
        traced_disabled_median_ns: traced_cell.median_ns,
        ratio: traced_cell.median_ns as f64 / plain_cell.median_ns.max(1) as f64,
    }
}

/// Measures the disabled-registry overhead: the plain general miner
/// against `mine_general_dag_in` with a session explicitly carrying
/// `Registry::disabled()`, interleaved so drift hits both arms equally.
/// Every stage boundary consults the registry (`Registry::start`), so
/// a disabled handle that started reading the clock — or grew a lookup
/// on the record path — shows up here.
fn registry_overhead(log: &WorkflowLog, repeats: usize) -> RegistryOverhead {
    let options = MinerOptions::default();
    let mut plain = Vec::with_capacity(repeats);
    let mut metered = Vec::with_capacity(repeats);
    mine_general_dag(log, &options).expect("mining succeeds"); // warmup
    for _ in 0..repeats {
        let started = Instant::now();
        mine_general_dag(log, &options).expect("mining succeeds");
        plain.push(started.elapsed().as_nanos() as u64);

        let started = Instant::now();
        mine_general_dag_in(
            &mut MineSession::new().with_obs(Registry::disabled()),
            log,
            &options,
        )
        .expect("mining succeeds");
        metered.push(started.elapsed().as_nanos() as u64);
    }
    let plain_cell = summarize("overhead", "plain", plain);
    let metered_cell = summarize("overhead", "registry_disabled", metered);
    RegistryOverhead {
        plain_median_ns: plain_cell.median_ns,
        registry_disabled_median_ns: metered_cell.median_ns,
        ratio: metered_cell.median_ns as f64 / plain_cell.median_ns.max(1) as f64,
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if let Some(path) = &args.check_schema {
        let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = Report::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: valid perfsuite report ({} mode, {} cells)",
            report.mode,
            report.cells.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &args.assert_xes_ratio {
        let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = Report::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        let Some(worst) = max_stage_ratio(&report.cells, "codec.xes", "codec.jsonl") else {
            return Err(format!(
                "{path}: no scenario carries both codec.xes and codec.jsonl cells"
            ));
        };
        if worst > XES_RATIO_LIMIT {
            eprintln!(
                "FAIL: codec.xes runs {worst:.2}x codec.jsonl in {path} (limit {XES_RATIO_LIMIT}x)"
            );
            return Ok(ExitCode::from(4));
        }
        println!("{path}: codec.xes within {worst:.2}x of codec.jsonl (limit {XES_RATIO_LIMIT}x)");
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &args.assert_checkpoint_ratio {
        let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = Report::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        let Some(worst) = max_stage_ratio(&report.cells, "stream.checkpoint", "stream.mine") else {
            return Err(format!(
                "{path}: no scenario carries both stream.checkpoint and stream.mine cells"
            ));
        };
        if worst > CHECKPOINT_RATIO_LIMIT {
            eprintln!(
                "FAIL: stream.checkpoint runs {worst:.2}x stream.mine in {path} \
                 (limit {CHECKPOINT_RATIO_LIMIT}x)"
            );
            return Ok(ExitCode::from(5));
        }
        println!(
            "{path}: stream.checkpoint within {worst:.2}x of stream.mine \
             (limit {CHECKPOINT_RATIO_LIMIT}x)"
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &args.assert_columnar_ratio {
        let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = Report::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        let worst = report
            .cells
            .iter()
            .filter(|c| c.stage == "mine.columnar_ratio")
            .map(|c| c.median_ns)
            .max();
        let Some(worst) = worst else {
            return Err(format!(
                "{path}: no scenario carries a mine.columnar_ratio cell"
            ));
        };
        if worst > COLUMNAR_RATIO_MILLI_LIMIT {
            eprintln!(
                "FAIL: columnar mine.general runs {:.2}x mine.legacy in {path} (limit {:.2}x)",
                worst as f64 / 1000.0,
                COLUMNAR_RATIO_MILLI_LIMIT as f64 / 1000.0
            );
            return Ok(ExitCode::from(7));
        }
        println!(
            "{path}: columnar mine.general within {:.2}x of mine.legacy (limit {:.2}x)",
            worst as f64 / 1000.0,
            COLUMNAR_RATIO_MILLI_LIMIT as f64 / 1000.0
        );
        return Ok(ExitCode::SUCCESS);
    }

    // Fixed workload matrix: §8.1 random-walk logs over the paper's
    // generating-graph sizes, deterministic seeds.
    let workloads: Vec<(String, usize, usize, usize, u64)> = if args.smoke {
        vec![("rw10x24m200".to_string(), 10, 24, 200, 7)]
    } else {
        vec![
            ("rw10x24m1000".to_string(), 10, 24, 1_000, 7),
            ("rw25x224m1000".to_string(), 25, 224, 1_000, 11),
            ("rw50x1058m1000".to_string(), 50, 1_058, 1_000, 13),
        ]
    };

    let mut cells = Vec::new();
    let mut overhead_log = None;
    for (scenario, n, edges, m, seed) in &workloads {
        eprintln!("perfsuite: {scenario} ({} repeats)", args.repeats);
        let (_, log) = synthetic_workload(*n, *edges, *m, *seed);
        workload_cells(scenario, &log, args.repeats, &mut cells);
        overhead_log.get_or_insert(log);
    }
    eprintln!("perfsuite: micro graph phases");
    micro_cells(args.smoke, args.repeats, &mut cells);

    if args.normalize {
        normalize(&mut cells);
    }

    eprintln!("perfsuite: trace-overhead guard");
    let overhead = overhead_log
        .as_ref()
        .map(|log| trace_overhead(log, args.repeats.max(5)));
    eprintln!("perfsuite: registry-overhead guard");
    let reg_overhead = overhead_log
        .as_ref()
        .map(|log| registry_overhead(log, args.repeats.max(5)));

    let report = Report {
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        repeats: args.repeats,
        cells,
        trace_overhead: overhead.clone(),
        registry_overhead: reg_overhead.clone(),
    };
    fs::write(&args.out, report.to_json()).map_err(|e| format!("{}: {e}", args.out))?;
    eprintln!("wrote {} ({} cells)", args.out, report.cells.len());

    let mut status = ExitCode::SUCCESS;

    if let Some(t) = &overhead {
        eprintln!(
            "trace overhead: plain {}ns vs disabled-tracer {}ns (ratio {:.3})",
            t.plain_median_ns, t.traced_disabled_median_ns, t.ratio
        );
        if t.ratio > TRACE_OVERHEAD_LIMIT {
            eprintln!(
                "FAIL: disabled tracing costs {:.0}% (limit {:.0}%)",
                (t.ratio - 1.0) * 100.0,
                (TRACE_OVERHEAD_LIMIT - 1.0) * 100.0
            );
            status = ExitCode::from(3);
        }
    }

    if let Some(r) = &reg_overhead {
        eprintln!(
            "registry overhead: plain {}ns vs disabled-registry {}ns (ratio {:.3})",
            r.plain_median_ns, r.registry_disabled_median_ns, r.ratio
        );
        if r.ratio > REGISTRY_OVERHEAD_LIMIT {
            eprintln!(
                "FAIL: disabled metrics registry costs {:.0}% (limit {:.0}%)",
                (r.ratio - 1.0) * 100.0,
                (REGISTRY_OVERHEAD_LIMIT - 1.0) * 100.0
            );
            status = ExitCode::from(6);
        }
    }

    if let Some(baseline_path) = &args.compare {
        let json =
            fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline = Report::from_json(&json).map_err(|e| format!("{baseline_path}: {e}"))?;
        let regressions = compare(&baseline.cells, &report.cells, args.threshold_pct);
        if regressions.is_empty() {
            eprintln!(
                "no regressions vs {baseline_path} (threshold {:.0}%)",
                args.threshold_pct
            );
        } else {
            for r in &regressions {
                eprintln!(
                    "REGRESSION {}/{}: {}ns -> {}ns ({:.2}x)",
                    r.scenario, r.stage, r.old_median_ns, r.new_median_ns, r.ratio
                );
            }
            eprintln!(
                "{} regression(s) vs {baseline_path} (threshold {:.0}%)",
                regressions.len(),
                args.threshold_pct
            );
            status = ExitCode::from(2);
        }
    }

    Ok(status)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perfsuite: {e}");
            ExitCode::FAILURE
        }
    }
}
