//! Checkpoint envelope: a versioned, checksummed, atomically-written
//! container for streaming-pipeline state.
//!
//! A `procmine mine --follow --checkpoint FILE` session periodically
//! persists its full pipeline state — miner counts, open cases, source
//! position — so a crashed process can resume instead of re-absorbing
//! the whole log. This module owns the *container*, not the payload:
//!
//! * a fixed header (`magic || version || payload length || CRC32`)
//!   that detects foreign files, version skew, torn writes, and bit
//!   rot before any payload byte is interpreted;
//! * [`write_atomic`] — `tmp` file + `fsync` + `rename` (+ best-effort
//!   directory sync), so a crash mid-save leaves either the old
//!   checkpoint or the new one, never a half-written hybrid;
//! * [`WireWriter`] / [`WireReader`] — a tiny length-prefixed binary
//!   encoding used by the state payloads (bounds-checked on decode, so
//!   even a CRC-colliding corruption cannot panic or over-allocate).
//!
//! The failure matrix is deliberately typed ([`CheckpointError`]):
//! callers distinguish "not a checkpoint at all" from "right format,
//! wrong version" from "torn/corrupt", because the CLI degrades each
//! differently (refuse vs. cold-start under `--recover`).

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// First bytes of every checkpoint file.
pub const MAGIC: &[u8; 7] = b"PMCKPT\n";

/// Current checkpoint format version. Bump on any payload layout
/// change; readers refuse other versions with
/// [`CheckpointError::VersionSkew`].
pub const VERSION: u16 = 1;

/// Header length: magic (7) + version (2) + payload length (8) +
/// CRC32 (4).
pub const HEADER_LEN: usize = 21;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (open, write, fsync, rename).
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic — it is not a
    /// checkpoint (or its header itself was destroyed).
    NotACheckpoint,
    /// The file is a checkpoint of an incompatible format version.
    VersionSkew {
        /// Version found in the file.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The file is shorter than its header promises — a torn write.
    Truncated {
        /// Payload bytes the header declares.
        expected: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload does not match its recorded CRC32 — bit rot or a
    /// torn overwrite.
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        actual: u32,
    },
    /// The envelope was intact but the payload failed structural
    /// decoding or validation.
    Payload {
        /// What failed, with enough context to locate it.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::NotACheckpoint => {
                write!(f, "not a procmine checkpoint (bad magic)")
            }
            CheckpointError::VersionSkew { found, expected } => write!(
                f,
                "checkpoint format version {found} is not readable by this build (expected {expected})"
            ),
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint is truncated: header promises {expected} payload bytes, found {actual}"
            ),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:#010x}, computed {actual:#010x}"
            ),
            CheckpointError::Payload { message } => {
                write!(f, "checkpoint payload is invalid: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// CRC32 (IEEE 802.3 polynomial, reflected), table-driven. Vendored so
// the checkpoint format needs no external dependency.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps `payload` in the checkpoint envelope (header + payload).
pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the envelope and returns the payload slice. Every check
/// runs before a single payload byte is interpreted: magic, version,
/// declared length, CRC32.
pub fn decode_envelope(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < HEADER_LEN || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::NotACheckpoint);
    }
    let version = u16::from_le_bytes([bytes[7], bytes[8]]);
    if version != VERSION {
        return Err(CheckpointError::VersionSkew {
            found: version,
            expected: VERSION,
        });
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[9..17]);
    let expected_len = u64::from_le_bytes(len_bytes);
    let actual_len = (bytes.len() - HEADER_LEN) as u64;
    if actual_len < expected_len {
        return Err(CheckpointError::Truncated {
            expected: expected_len,
            actual: actual_len,
        });
    }
    // Trailing garbage past the declared length is ignored: the CRC
    // covers exactly the declared payload.
    let payload = &bytes[HEADER_LEN..HEADER_LEN + expected_len as usize];
    let expected_crc = u32::from_le_bytes([bytes[17], bytes[18], bytes[19], bytes[20]]);
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(CheckpointError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload)
}

/// Writes `payload` (wrapped in the envelope) to `path` atomically:
/// the bytes land in `<path>.tmp`, are fsynced, and only then renamed
/// over `path`. A crash at any point leaves either the previous
/// checkpoint or the new one — never a torn hybrid. The parent
/// directory is synced best-effort so the rename itself survives a
/// power loss.
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    write_atomic_raw(path, &encode_envelope(payload))
}

/// Atomic replace without the checkpoint envelope: `bytes` land on
/// disk exactly as given. Same tmp + fsync + rename discipline as
/// [`write_atomic`], for callers (metrics exports) whose readers
/// expect the raw format, not an envelope.
pub fn write_atomic_raw(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        // Directory fsync is advisory: some filesystems refuse it, and
        // the rename is already durable-enough for our failure model
        // (a lost rename re-reads the previous checkpoint).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads `path`, validates the envelope, and returns the payload.
pub fn read_payload(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_envelope(&bytes).map(<[u8]>::to_vec)
}

/// Structural decode failure inside a checkpoint payload. Converted to
/// [`CheckpointError::Payload`] at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed (field, expected size, found size).
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Payload { message: e.message }
    }
}

/// Little-endian, length-prefixed payload encoder. The matching
/// decoder is [`WireReader`]; both sides must agree field for field —
/// the envelope version is the compatibility contract.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked decoder for [`WireWriter`] payloads. Every read
/// validates against the remaining bytes, so a corrupted (or
/// CRC-colliding) payload produces a [`WireError`], never a panic or
/// an attacker-sized allocation.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — trailing garbage in a
    /// payload is a decode bug or corruption, not slack.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError {
                message: format!("{} unconsumed payload bytes", self.remaining()),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError {
                message: format!(
                    "{what}: need {n} bytes at offset {}, only {} remain",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self, what: &str) -> Result<i64, WireError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self, what: &str) -> Result<usize, WireError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| WireError {
            message: format!("{what}: value {v} exceeds usize"),
        })
    }

    /// Reads an element count that must be plausible for the remaining
    /// bytes (each element occupying at least `min_elem_bytes`), so a
    /// corrupt length cannot drive an over-allocation.
    pub fn get_len(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_usize(what)?;
        let budget = self.remaining() / min_elem_bytes.max(1);
        if len > budget {
            return Err(WireError {
                message: format!(
                    "{what}: declared {len} elements, at most {budget} fit in the remaining bytes"
                ),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.get_len(what, 1)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            message: format!("{what}: not valid UTF-8"),
        })
    }
}

/// Encodes an [`EventRecord`](crate::EventRecord).
pub fn encode_event(w: &mut WireWriter, e: &crate::EventRecord) {
    w.put_str(&e.process);
    w.put_str(&e.activity);
    w.put_u8(match e.kind {
        crate::EventKind::Start => 0,
        crate::EventKind::End => 1,
    });
    w.put_u64(e.time);
    match &e.output {
        None => w.put_u8(0),
        Some(v) => {
            w.put_u8(1);
            w.put_usize(v.len());
            for &x in v {
                w.put_i64(x);
            }
        }
    }
}

/// Decodes an [`EventRecord`](crate::EventRecord).
pub fn decode_event(r: &mut WireReader<'_>) -> Result<crate::EventRecord, WireError> {
    let process = r.get_str("event.process")?;
    let activity = r.get_str("event.activity")?;
    let kind = match r.get_u8("event.kind")? {
        0 => crate::EventKind::Start,
        1 => crate::EventKind::End,
        other => {
            return Err(WireError {
                message: format!("event.kind: unknown tag {other}"),
            })
        }
    };
    let time = r.get_u64("event.time")?;
    let output = match r.get_u8("event.output")? {
        0 => None,
        1 => {
            let len = r.get_len("event.output.len", 8)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.get_i64("event.output.value")?);
            }
            Some(v)
        }
        other => {
            return Err(WireError {
                message: format!("event.output: unknown tag {other}"),
            })
        }
    };
    Ok(crate::EventRecord {
        process,
        activity,
        kind,
        time,
        output,
    })
}

/// Encodes a [`SourceLocation`](super::SourceLocation).
pub fn encode_location(w: &mut WireWriter, at: &super::SourceLocation) {
    w.put_u64(at.byte_offset);
    w.put_usize(at.line);
}

/// Decodes a [`SourceLocation`](super::SourceLocation).
pub fn decode_location(r: &mut WireReader<'_>) -> Result<super::SourceLocation, WireError> {
    Ok(super::SourceLocation {
        byte_offset: r.get_u64("location.byte_offset")?,
        line: r.get_usize("location.line")?,
    })
}

/// Encodes a [`CodecStats`](crate::codec::CodecStats).
pub fn encode_stats(w: &mut WireWriter, stats: &crate::codec::CodecStats) {
    w.put_u64(stats.bytes_read);
    w.put_u64(stats.events_parsed);
    w.put_u64(stats.executions_parsed);
}

/// Decodes a [`CodecStats`](crate::codec::CodecStats).
pub fn decode_stats(r: &mut WireReader<'_>) -> Result<crate::codec::CodecStats, WireError> {
    Ok(crate::codec::CodecStats {
        bytes_read: r.get_u64("stats.bytes_read")?,
        events_parsed: r.get_u64("stats.events_parsed")?,
        executions_parsed: r.get_u64("stats.executions_parsed")?,
    })
}

/// Encodes an [`IngestReport`](crate::IngestReport).
pub fn encode_report(w: &mut WireWriter, report: &crate::IngestReport) {
    w.put_u64(report.records_parsed);
    w.put_u64(report.records_skipped);
    w.put_u64(report.errors_total);
    w.put_u64(report.cases_evicted);
    w.put_usize(report.errors.len());
    for e in &report.errors {
        w.put_u64(e.byte_offset);
        w.put_usize(e.line);
        w.put_str(&e.message);
    }
}

/// Decodes an [`IngestReport`](crate::IngestReport).
pub fn decode_report(r: &mut WireReader<'_>) -> Result<crate::IngestReport, WireError> {
    let records_parsed = r.get_u64("report.records_parsed")?;
    let records_skipped = r.get_u64("report.records_skipped")?;
    let errors_total = r.get_u64("report.errors_total")?;
    let cases_evicted = r.get_u64("report.cases_evicted")?;
    let len = r.get_len("report.errors.len", 24)?;
    let mut errors = Vec::with_capacity(len);
    for _ in 0..len {
        errors.push(crate::IngestError {
            byte_offset: r.get_u64("report.error.byte_offset")?,
            line: r.get_usize("report.error.line")?,
            message: r.get_str("report.error.message")?,
        });
    }
    Ok(crate::IngestReport {
        records_parsed,
        records_skipped,
        errors_total,
        cases_evicted,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_type_codecs_roundtrip() {
        let event = crate::EventRecord {
            process: "case-7".to_string(),
            activity: "Ship".to_string(),
            kind: crate::EventKind::End,
            time: 42,
            output: Some(vec![-1, 0, 7]),
        };
        let at = super::super::SourceLocation {
            byte_offset: 1234,
            line: 56,
        };
        let stats = crate::codec::CodecStats {
            bytes_read: 1,
            events_parsed: 2,
            executions_parsed: 3,
        };
        let mut report = crate::IngestReport::default();
        report.record_error(9, 2, "bad line");
        report.records_parsed = 10;

        let mut w = WireWriter::new();
        encode_event(&mut w, &event);
        encode_location(&mut w, &at);
        encode_stats(&mut w, &stats);
        encode_report(&mut w, &report);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(decode_event(&mut r).unwrap(), event);
        assert_eq!(decode_location(&mut r).unwrap(), at);
        assert_eq!(decode_stats(&mut r).unwrap(), stats);
        assert_eq!(decode_report(&mut r).unwrap(), report);
        r.finish().unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrips() {
        let payload = b"hello checkpoint";
        let bytes = encode_envelope(payload);
        assert_eq!(decode_envelope(&bytes).unwrap(), payload);
    }

    #[test]
    fn foreign_file_is_not_a_checkpoint() {
        assert!(matches!(
            decode_envelope(b"p1,A,START,0\np1,A,END,1\n"),
            Err(CheckpointError::NotACheckpoint)
        ));
        assert!(matches!(
            decode_envelope(b""),
            Err(CheckpointError::NotACheckpoint)
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = encode_envelope(b"x");
        bytes[7] = 99;
        assert!(matches!(
            decode_envelope(&bytes),
            Err(CheckpointError::VersionSkew {
                found: 99,
                expected: VERSION
            })
        ));
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = encode_envelope(b"some payload worth keeping");
        for cut in 0..bytes.len() {
            let err = decode_envelope(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::NotACheckpoint | CheckpointError::Truncated { .. }
                ),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let bytes = encode_envelope(b"bit flips must not pass");
        for i in HEADER_LEN..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0x10;
            assert!(
                matches!(
                    decode_envelope(&dirty),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "flip at byte {i} was not caught"
            );
        }
    }

    #[test]
    fn atomic_write_then_read_roundtrips() {
        let path =
            std::env::temp_dir().join(format!("procmine-ckpt-test-{}.ckpt", std::process::id()));
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(read_payload(&path).unwrap(), b"payload");
        // Overwrite: the rename replaces the previous checkpoint.
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_payload(&path).unwrap(), b"second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wire_roundtrip_and_bounds() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_str("caseid");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_i64("d").unwrap(), -42);
        assert_eq!(r.get_str("e").unwrap(), "caseid");
        r.finish().unwrap();

        // A declared length larger than the remaining bytes is refused
        // before any allocation.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_len("huge", 1).is_err());
    }

    #[test]
    fn unconsumed_payload_bytes_are_an_error() {
        let mut w = WireWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.get_u64("first").unwrap();
        assert!(r.finish().is_err());
    }
}
