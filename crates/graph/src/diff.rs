//! Edge-set comparison between two graphs over the same node set.
//!
//! Section 8.1 of the paper scores mined graphs by "programmatically
//! comparing the edge-set of the two graphs" (Table 2). This module
//! provides that comparison, plus closure-level equivalence: two graphs
//! with the same transitive closure encode the same dependencies
//! (Lemma 2), so a mined graph can be a perfect recovery even when its
//! edge set differs from the generator's.

use crate::reach::transitive_closure;
use crate::DiGraph;

/// The result of comparing a mined graph against a reference graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDiff {
    /// Edges in the reference graph (as index pairs).
    pub reference_edges: usize,
    /// Edges in the mined graph.
    pub mined_edges: usize,
    /// Edges present in both.
    pub common: usize,
    /// Edges in the mined graph but not the reference ("spurious").
    pub spurious: Vec<(usize, usize)>,
    /// Edges in the reference but not the mined graph ("missing").
    pub missing: Vec<(usize, usize)>,
}

impl EdgeDiff {
    /// Fraction of mined edges that are correct (1.0 when no edges mined).
    pub fn precision(&self) -> f64 {
        if self.mined_edges == 0 {
            1.0
        } else {
            self.common as f64 / self.mined_edges as f64
        }
    }

    /// Fraction of reference edges that were recovered (1.0 when the
    /// reference has no edges).
    pub fn recall(&self) -> f64 {
        if self.reference_edges == 0 {
            1.0
        } else {
            self.common as f64 / self.reference_edges as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// `true` if the edge sets are identical.
    pub fn is_exact(&self) -> bool {
        self.spurious.is_empty() && self.missing.is_empty()
    }
}

/// Compares the edge sets of two graphs over the same node set.
///
/// Node ids must mean the same activity in both graphs (the miners
/// guarantee this by sharing an activity table). Panics if node counts
/// differ.
pub fn compare_edges<A, B>(reference: &DiGraph<A>, mined: &DiGraph<B>) -> EdgeDiff {
    assert_eq!(
        reference.node_count(),
        mined.node_count(),
        "graphs must share a node set"
    );
    let mut spurious = Vec::new();
    let mut missing = Vec::new();
    let mut common = 0usize;
    for (u, v) in reference.edges() {
        if mined.has_edge(u, v) {
            common += 1;
        } else {
            missing.push((u.index(), v.index()));
        }
    }
    for (u, v) in mined.edges() {
        if !reference.has_edge(u, v) {
            spurious.push((u.index(), v.index()));
        }
    }
    EdgeDiff {
        reference_edges: reference.edge_count(),
        mined_edges: mined.edge_count(),
        common,
        spurious,
        missing,
    }
}

/// `true` if the two graphs have the same transitive closure, i.e. they
/// represent the same dependency relation (Lemma 2 of the paper).
pub fn same_closure<A, B>(a: &DiGraph<A>, b: &DiGraph<B>) -> bool {
    a.node_count() == b.node_count() && transitive_closure(a) == transitive_closure(b)
}

/// `true` if the mined graph is a supergraph of the reference (every
/// reference edge is present). Section 8.1 reports this outcome for the
/// 50-vertex experiment ("the algorithm eventually found a supergraph of
/// the original graph").
pub fn is_supergraph<A, B>(reference: &DiGraph<A>, mined: &DiGraph<B>) -> bool {
    reference.node_count() == mined.node_count()
        && reference.edges().all(|(u, v)| mined.has_edge(u, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graphs_are_exact() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        let d = compare_edges(&g, &g);
        assert!(d.is_exact());
        assert_eq!(d.precision(), 1.0);
        assert_eq!(d.recall(), 1.0);
        assert_eq!(d.f1(), 1.0);
    }

    #[test]
    fn spurious_and_missing_are_reported() {
        let reference = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 2), (2, 3)]);
        let mined = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 3), (2, 3)]);
        let d = compare_edges(&reference, &mined);
        assert_eq!(d.common, 2);
        assert_eq!(d.missing, vec![(1, 2)]);
        assert_eq!(d.spurious, vec![(1, 3)]);
        assert!((d.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!d.is_exact());
    }

    #[test]
    fn empty_mined_graph_has_full_precision_zero_recall() {
        let reference = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        let mined = DiGraph::from_edges(vec![(); 3], std::iter::empty());
        let d = compare_edges(&reference, &mined);
        assert_eq!(d.precision(), 1.0);
        assert_eq!(d.recall(), 0.0);
        assert_eq!(d.f1(), 0.0);
    }

    #[test]
    fn closure_equivalence_ignores_shortcut_edges() {
        let with_shortcut = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let reduced = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        assert!(same_closure(&with_shortcut, &reduced));
        let different = DiGraph::from_edges(vec![(); 3], [(0, 1), (2, 1)]);
        assert!(!same_closure(&with_shortcut, &different));
    }

    #[test]
    fn supergraph_detection() {
        let reference = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        let superg = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        assert!(is_supergraph(&reference, &superg));
        assert!(!is_supergraph(&superg, &reference));
    }

    #[test]
    #[should_panic(expected = "share a node set")]
    fn node_count_mismatch_panics() {
        let a = DiGraph::from_edges(vec![(); 2], std::iter::empty());
        let b = DiGraph::from_edges(vec![(); 3], std::iter::empty());
        compare_edges(&a, &b);
    }
}
