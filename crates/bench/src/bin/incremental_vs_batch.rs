//! Ablation: incremental vs. batch mining for the process-evolution
//! use case.
//!
//! A monitoring deployment re-mines after every batch of fresh
//! executions. The batch miner recounts all `m` executions each time
//! (`O(B·m)` total counting over `B` batches); the incremental miner
//! counts each execution once and re-runs only the finishing steps.
//! This binary streams the same workload through both and compares
//! total time and outputs. Run with `--release`.

use procmine_bench::{synthetic_workload, TextTable};
use procmine_core::{mine_general_dag, IncrementalMiner, MinerOptions};
use procmine_log::WorkflowLog;
use std::time::Instant;

fn main() {
    println!("Incremental vs. batch re-mining (model refreshed after every batch)\n");
    let mut table = TextTable::new([
        "n",
        "batches x size",
        "batch total(s)",
        "incremental(s)",
        "speedup",
        "same output",
    ]);

    for &(n, edges, batches, batch_size) in &[
        (25usize, 224usize, 50usize, 100usize),
        (50, 1058, 20, 100),
        (25, 224, 100, 20),
    ] {
        let (_, full_log) = synthetic_workload(n, edges, batches * batch_size, 6000 + n as u64);
        let execs = full_log.executions();

        // Batch: after each batch, re-mine everything seen so far.
        let started = Instant::now();
        let mut batch_model = None;
        for b in 1..=batches {
            let mut seen = WorkflowLog::with_activities(full_log.activities().clone());
            for e in &execs[..b * batch_size] {
                seen.push(e.clone());
            }
            batch_model = Some(mine_general_dag(&seen, &MinerOptions::default()).expect("mine"));
        }
        let batch_t = started.elapsed().as_secs_f64();

        // Incremental: absorb each batch, refresh the model.
        let started = Instant::now();
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        let mut inc_model = None;
        for b in 0..batches {
            for e in &execs[b * batch_size..(b + 1) * batch_size] {
                inc.absorb_execution(e, full_log.activities())
                    .expect("absorb");
            }
            inc_model = Some(inc.model().expect("model"));
        }
        let inc_t = started.elapsed().as_secs_f64();

        let batch_model = batch_model.expect("ran");
        let inc_model = inc_model.expect("ran");
        let mut a = batch_model.edges_named();
        let mut b = inc_model.edges_named();
        a.sort();
        b.sort();
        table.row([
            n.to_string(),
            format!("{batches} x {batch_size}"),
            format!("{batch_t:.3}"),
            format!("{inc_t:.3}"),
            format!("{:.1}x", batch_t / inc_t.max(1e-9)),
            (a == b).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(the incremental miner amortizes step-2 counting; the finishing steps");
    println!("still scan retained executions, so the speedup is bounded by their share)");
}
