//! Dense bit-matrix directed graph.
//!
//! The mining algorithms' step 2 ("for each pair of activities u, v such
//! that u terminates before v starts, add the edge (u, v)") touches up to
//! n² candidate edges per execution, and steps 3–4 remove edges in bulk.
//! A dense adjacency matrix makes every one of these operations an O(1)
//! bit operation (or an O(n/64) row operation), which is what lets the
//! miners hit the paper's O(n²m) bound with a small constant.
//!
//! The matrix stores all rows in **one contiguous `u64` buffer** of
//! `n * ceil(n/64)` words, row-major. Compared to the previous
//! one-heap-allocation-per-row layout this keeps the row-parallel
//! kernels' partitions cache-adjacent, makes `clone()` a single
//! `memcpy`, and lets whole-matrix scans run over a flat slice.

use crate::words::WordOnes;
use crate::{BitSet, DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A directed graph over nodes `0..n` stored as a boolean adjacency
/// matrix: one contiguous word buffer holding `n` bitset rows of
/// `words_per_row = ceil(n/64)` words each.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
    edge_count: usize,
}

impl AdjMatrix {
    /// Creates an edgeless graph with `n` nodes. One allocation for the
    /// whole matrix, sized to the real vertex count.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(BITS);
        AdjMatrix {
            n,
            words_per_row,
            words: vec![0u64; n * words_per_row],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Words per bitset row: `ceil(n / 64)`.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The whole matrix as one flat row-major word slice of length
    /// `n * words_per_row()` — the backing store the row-parallel
    /// kernels partition.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn check(&self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u}, {v}) out of range for AdjMatrix of {} nodes",
            self.n
        );
    }

    /// Adds edge `(u, v)`; returns `true` if newly added.
    #[inline]
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        self.check(u, v);
        let word = &mut self.words[u * self.words_per_row + v / BITS];
        let mask = 1u64 << (v % BITS);
        let added = *word & mask == 0;
        *word |= mask;
        self.edge_count += added as usize;
        added
    }

    /// Removes edge `(u, v)`; returns `true` if it was present.
    #[inline]
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        self.check(u, v);
        let word = &mut self.words[u * self.words_per_row + v / BITS];
        let mask = 1u64 << (v % BITS);
        let removed = *word & mask != 0;
        *word &= !mask;
        self.edge_count -= removed as usize;
        removed
    }

    /// Tests edge `(u, v)`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.check(u, v);
        self.words[u * self.words_per_row + v / BITS] & (1u64 << (v % BITS)) != 0
    }

    /// The out-neighbour set of `u` as a row view into the contiguous
    /// word buffer (`words_per_row()` words).
    #[inline]
    pub fn row_words(&self, u: usize) -> &[u64] {
        &self.words[u * self.words_per_row..(u + 1) * self.words_per_row]
    }

    /// `self.row(u) |= words`, returning how many edges were newly
    /// added (`edge_count` is kept in sync). `words` must span
    /// [`Self::words_per_row`] words with no bits at `>= n` set — row
    /// views of a same-sized matrix satisfy both by construction.
    pub fn union_row_with_words(&mut self, u: usize, words: &[u64]) -> usize {
        assert_eq!(words.len(), self.words_per_row, "row width mismatch");
        let row = &mut self.words[u * self.words_per_row..(u + 1) * self.words_per_row];
        let mut added = 0usize;
        for (a, b) in row.iter_mut().zip(words) {
            added += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        self.edge_count += added;
        added
    }

    /// Iterates the out-neighbours of `u` in increasing order.
    pub fn successors(&self, u: usize) -> WordOnes<'_> {
        crate::words::ones(self.row_words(u))
    }

    /// Iterates all edges in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| self.successors(u).map(move |v| (u, v)))
    }

    /// Removes every edge `(u, v)` where `(v, u)` is also present —
    /// step 3 of Algorithms 1–3 ("remove the edges that appear in both
    /// directions"). Self-loops count as their own reverse and are
    /// removed. Returns the number of edges removed.
    pub fn remove_two_cycles(&mut self) -> usize {
        let mut removed = 0;
        for u in 0..self.n {
            // Collect first: we mutate row u and row v as we go.
            let both: Vec<usize> = self.successors(u).filter(|&v| v >= u).collect();
            for v in both {
                if u == v {
                    self.remove_edge(u, u);
                    removed += 1;
                } else if self.has_edge(v, u) {
                    self.remove_edge(u, v);
                    self.remove_edge(v, u);
                    removed += 2;
                }
            }
        }
        removed
    }

    /// Converts to a [`DiGraph`] with payloads produced by `f`.
    pub fn to_digraph<N>(&self, mut f: impl FnMut(usize) -> N) -> DiGraph<N> {
        let mut g = DiGraph::with_capacity(self.n);
        for i in 0..self.n {
            g.add_node(f(i));
        }
        for (u, v) in self.edges() {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        g
    }

    /// Builds a matrix from any `DiGraph`, discarding payloads.
    pub fn from_digraph<N>(g: &DiGraph<N>) -> Self {
        let mut m = AdjMatrix::new(g.node_count());
        for (u, v) in g.edges() {
            m.add_edge(u.index(), v.index());
        }
        m
    }

    /// Copies row `u` into an owned [`BitSet`] of capacity `n` (the
    /// bridge to callers that accumulate into bitsets).
    pub fn row_bitset(&self, u: usize) -> BitSet {
        BitSet::from_words(self.row_words(u), self.n)
    }
}

impl fmt::Debug for AdjMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AdjMatrix ({} nodes, {} edges)", self.n, self.edge_count)?;
        for u in 0..self.n {
            let mut succ = self.successors(u).peekable();
            if succ.peek().is_some() {
                write!(f, "  {u} -> {{")?;
                let mut first = true;
                for v in succ {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                    first = false;
                }
                writeln!(f, "}}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_has() {
        let mut m = AdjMatrix::new(5);
        assert!(m.add_edge(0, 1));
        assert!(!m.add_edge(0, 1));
        assert!(m.has_edge(0, 1));
        assert!(!m.has_edge(1, 0));
        assert_eq!(m.edge_count(), 1);
        assert!(m.remove_edge(0, 1));
        assert!(!m.remove_edge(0, 1));
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn storage_is_one_contiguous_buffer() {
        // 130 nodes → 3 words per row, 390 words total, one allocation.
        let mut m = AdjMatrix::new(130);
        assert_eq!(m.words_per_row(), 3);
        assert_eq!(m.words().len(), 130 * 3);
        m.add_edge(1, 0);
        m.add_edge(1, 64);
        m.add_edge(1, 129);
        // Row 1 occupies words [3, 6) of the flat buffer.
        assert_eq!(&m.words()[3..6], &[1, 1, 2]);
        // Row views are slices of that same buffer.
        assert_eq!(m.row_words(1), &m.words()[3..6]);
        assert_eq!(m.successors(1).collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn zero_and_tiny_sizes() {
        let m = AdjMatrix::new(0);
        assert_eq!(m.words().len(), 0);
        assert_eq!(m.edges().count(), 0);
        let mut m = AdjMatrix::new(1);
        assert_eq!(m.words().len(), 1);
        m.add_edge(0, 0);
        assert!(m.has_edge(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut m = AdjMatrix::new(3);
        m.add_edge(0, 3);
    }

    #[test]
    fn union_row_with_words_tracks_edge_count() {
        let mut m = AdjMatrix::new(70);
        m.add_edge(0, 1);
        m.add_edge(1, 2);
        m.add_edge(1, 69);
        let row1 = m.row_words(1).to_vec();
        let added = m.union_row_with_words(0, &row1);
        assert_eq!(added, 2);
        assert_eq!(m.edge_count(), 5);
        assert_eq!(m.successors(0).collect::<Vec<_>>(), vec![1, 2, 69]);
        // Re-unioning the same bits adds nothing.
        assert_eq!(m.union_row_with_words(0, &row1), 0);
        assert_eq!(m.edge_count(), 5);
    }

    #[test]
    fn row_bitset_round_trips() {
        let mut m = AdjMatrix::new(100);
        for v in [0usize, 63, 64, 99] {
            m.add_edge(7, v);
        }
        let row = m.row_bitset(7);
        assert_eq!(row.capacity(), 100);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![0, 63, 64, 99]);
    }

    #[test]
    fn remove_two_cycles_removes_only_mutual_pairs() {
        let mut m = AdjMatrix::new(4);
        m.add_edge(0, 1);
        m.add_edge(1, 0); // mutual pair — both go
        m.add_edge(1, 2); // one-way — stays
        m.add_edge(2, 3);
        m.add_edge(3, 2); // mutual pair — both go
        let removed = m.remove_two_cycles();
        assert_eq!(removed, 4);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn remove_two_cycles_removes_self_loops() {
        let mut m = AdjMatrix::new(2);
        m.add_edge(0, 0);
        m.add_edge(0, 1);
        assert_eq!(m.remove_two_cycles(), 1);
        assert!(!m.has_edge(0, 0));
        assert!(m.has_edge(0, 1));
    }

    #[test]
    fn digraph_round_trip() {
        let mut m = AdjMatrix::new(3);
        m.add_edge(0, 2);
        m.add_edge(1, 2);
        let g = m.to_digraph(|i| i);
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        let back = AdjMatrix::from_digraph(&g);
        assert_eq!(back, m);
    }

    #[test]
    fn edges_in_lexicographic_order() {
        let mut m = AdjMatrix::new(3);
        m.add_edge(2, 0);
        m.add_edge(0, 1);
        m.add_edge(0, 2);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (2, 0)]);
    }
}
