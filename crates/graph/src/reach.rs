//! Reachability, descendant sets, and transitive closure.
//!
//! Dependencies in the mined model are *paths*, not edges (Definition 5:
//! "there exists a path from u to v iff v depends on u"), so checking
//! dependency completeness and irredundancy of a mined graph is a
//! reachability problem.

use crate::{AdjMatrix, BitSet, DiGraph, NodeId};
use std::collections::VecDeque;

/// The set of nodes reachable from `start` (excluding `start` itself
/// unless it lies on a cycle through itself), computed by BFS.
pub fn reachable_from<N>(g: &DiGraph<N>, start: NodeId) -> BitSet {
    let mut seen = BitSet::new(g.node_count());
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &w in g.successors(v) {
            if seen.insert(w.index()) {
                queue.push_back(w);
            }
        }
    }
    seen
}

/// `true` if there is a directed path (of length ≥ 1) from `u` to `v`.
pub fn has_path<N>(g: &DiGraph<N>, u: NodeId, v: NodeId) -> bool {
    reachable_from(g, u).contains(v.index())
}

/// The full transitive closure as an [`AdjMatrix`]: edge `(u, v)` iff
/// there is a path of length ≥ 1 from `u` to `v` in `g`. O(V·E) via one
/// BFS per node; fine at the paper's graph sizes (≤ a few hundred nodes).
pub fn transitive_closure<N>(g: &DiGraph<N>) -> AdjMatrix {
    let n = g.node_count();
    let mut m = AdjMatrix::new(n);
    for u in 0..n {
        let reach = reachable_from(g, NodeId::new(u));
        for v in reach.iter() {
            m.add_edge(u, v);
        }
    }
    m
}

/// Transitive closure of an [`AdjMatrix`] in place, via the bitset
/// Floyd–Warshall variant: for each k, every row that reaches k absorbs
/// row k. O(V²·V/64) — faster in practice than V BFS traversals on the
/// dense followings matrices the miners build.
pub fn closure_in_place(m: &mut AdjMatrix) {
    let n = m.node_count();
    let mut row_k = vec![0u64; m.words_per_row()];
    for k in 0..n {
        row_k.copy_from_slice(m.row_words(k));
        for u in 0..n {
            if u != k && m.has_edge(u, k) {
                m.union_row_with_words(u, &row_k);
            }
        }
    }
}

/// `true` if every node of `g` is reachable from `start` (with `start`
/// itself counted as reached) — the "all nodes can be reached from the
/// initiating activity" clause of Definition 6.
pub fn all_reachable_from<N>(g: &DiGraph<N>, start: NodeId) -> bool {
    let mut reach = reachable_from(g, start);
    reach.insert(start.index());
    reach.count() == g.node_count()
}

/// `true` if the *undirected* version of `g` is connected (Definition 6
/// requires the induced subgraph of an execution to be connected).
/// Vacuously true for the empty graph.
pub fn is_weakly_connected<N>(g: &DiGraph<N>) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = BitSet::new(n);
    seen.insert(0);
    let mut queue = VecDeque::new();
    queue.push_back(NodeId::new(0));
    while let Some(v) = queue.pop_front() {
        for &w in g.successors(v).iter().chain(g.predecessors(v)) {
            if seen.insert(w.index()) {
                queue.push_back(w);
            }
        }
    }
    seen.count() == n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph<()> {
        DiGraph::from_edges(vec![(); n], (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn reachability_on_chain() {
        let g = chain(5);
        assert!(has_path(&g, NodeId::new(0), NodeId::new(4)));
        assert!(!has_path(&g, NodeId::new(4), NodeId::new(0)));
        assert!(
            !has_path(&g, NodeId::new(2), NodeId::new(2)),
            "no self-path without cycle"
        );
        let r = reachable_from(&g, NodeId::new(1));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn cycle_reaches_itself() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (2, 0)]);
        assert!(has_path(&g, NodeId::new(0), NodeId::new(0)));
    }

    #[test]
    fn closure_matches_bfs_closure() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 4)],
        );
        let c1 = transitive_closure(&g);
        let mut c2 = AdjMatrix::from_digraph(&g);
        closure_in_place(&mut c2);
        assert_eq!(c1, c2);
        assert!(c1.has_edge(0, 4));
        assert!(!c1.has_edge(4, 0));
        assert!(!c1.has_edge(0, 5));
    }

    #[test]
    fn closure_on_cyclic_graph() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 0), (1, 2)]);
        let c = transitive_closure(&g);
        assert!(
            c.has_edge(0, 0) && c.has_edge(1, 1),
            "cycle members reach themselves"
        );
        assert!(c.has_edge(0, 2) && c.has_edge(1, 2));
        assert!(!c.has_edge(2, 2));
        let mut c2 = AdjMatrix::from_digraph(&g);
        closure_in_place(&mut c2);
        assert_eq!(c, c2);
    }

    #[test]
    fn connectivity_checks() {
        let g = chain(4);
        assert!(all_reachable_from(&g, NodeId::new(0)));
        assert!(!all_reachable_from(&g, NodeId::new(1)));
        assert!(is_weakly_connected(&g));
        let disconnected = DiGraph::from_edges(vec![(); 4], [(0, 1), (2, 3)]);
        assert!(!is_weakly_connected(&disconnected));
        let empty: DiGraph<()> = DiGraph::new();
        assert!(is_weakly_connected(&empty));
    }
}
