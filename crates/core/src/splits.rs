//! Split/join semantics: classifying branch and merge points of a mined
//! graph as parallel (AND) or exclusive (XOR).
//!
//! The paper's process model routes control with per-edge Boolean
//! conditions: an activity with several outgoing edges may activate all
//! of them (a parallel split), exactly one (an exclusive choice), or
//! something in between. The mined graph alone does not say which; the
//! log does. For a split activity `u` with successors `S`, the
//! co-occurrence statistics of `S` within executions containing `u`
//! discriminate the cases:
//!
//! * every pair of successors co-occurs whenever `u` runs → **AND**;
//! * no two successors ever co-occur → **XOR**;
//! * otherwise → **OR** (inclusive / mixed).
//!
//! This classification complements §7 conditions mining (an XOR split's
//! learned conditions partition the output space; an AND split's are
//! all constantly true) and is required to *execute* a mined model.

use crate::MinedModel;
use procmine_graph::NodeId;
use procmine_log::{ActivityId, WorkflowLog};
use serde::{Deserialize, Serialize};

/// The behavioural class of a split or join point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatewayKind {
    /// All branches activate together.
    And,
    /// Exactly one branch activates.
    Xor,
    /// Some subsets of branches activate (inclusive or data-dependent
    /// mix).
    Or,
}

impl std::fmt::Display for GatewayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GatewayKind::And => "AND",
            GatewayKind::Xor => "XOR",
            GatewayKind::Or => "OR",
        })
    }
}

/// Classification of one branch point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gateway {
    /// The activity at the branch/merge point.
    pub activity: String,
    /// The branch targets (split) or sources (join).
    pub branches: Vec<String>,
    /// The inferred kind.
    pub kind: GatewayKind,
    /// Executions containing the gateway activity.
    pub support: usize,
}

/// The split/join analysis of a mined model against its log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayAnalysis {
    /// One entry per activity with out-degree ≥ 2.
    pub splits: Vec<Gateway>,
    /// One entry per activity with in-degree ≥ 2.
    pub joins: Vec<Gateway>,
}

impl GatewayAnalysis {
    /// Looks up the split at an activity, if it has one.
    pub fn split_at(&self, activity: &str) -> Option<&Gateway> {
        self.splits.iter().find(|g| g.activity == activity)
    }

    /// Looks up the join at an activity, if it has one.
    pub fn join_at(&self, activity: &str) -> Option<&Gateway> {
        self.joins.iter().find(|g| g.activity == activity)
    }
}

/// Classifies every split and join of `model` from the co-occurrence
/// statistics of `log`. The model's node indices must align with the
/// log's activity table (true for models mined from that log).
pub fn analyze_gateways(model: &MinedModel, log: &WorkflowLog) -> GatewayAnalysis {
    let g = model.graph();
    let mut analysis = GatewayAnalysis::default();

    for v in g.node_ids() {
        let succs: Vec<NodeId> = g.successors(v).to_vec();
        if succs.len() >= 2 {
            let (kind, support) = classify(log, v, &succs);
            analysis.splits.push(Gateway {
                activity: g.node(v).clone(),
                branches: succs.iter().map(|&s| g.node(s).clone()).collect(),
                kind,
                support,
            });
        }
        let preds: Vec<NodeId> = g.predecessors(v).to_vec();
        if preds.len() >= 2 {
            let (kind, support) = classify(log, v, &preds);
            analysis.joins.push(Gateway {
                activity: g.node(v).clone(),
                branches: preds.iter().map(|&p| g.node(p).clone()).collect(),
                kind,
                support,
            });
        }
    }
    analysis
}

/// Classifies the branches adjacent to `center` by their co-occurrence
/// pattern across executions containing `center`.
fn classify(log: &WorkflowLog, center: NodeId, branches: &[NodeId]) -> (GatewayKind, usize) {
    let center_id = ActivityId::from_index(center.index());
    let ids: Vec<ActivityId> = branches
        .iter()
        .map(|&b| ActivityId::from_index(b.index()))
        .collect();

    let mut support = 0usize;
    let mut always_all = true;
    let mut never_two = true;
    for exec in log.executions() {
        if !exec.contains(center_id) {
            continue;
        }
        support += 1;
        let present = ids.iter().filter(|&&a| exec.contains(a)).count();
        if present < ids.len() {
            always_all = false;
        }
        if present >= 2 {
            never_two = false;
        }
    }

    let kind = if support == 0 {
        // No evidence at all: report OR (the weakest claim).
        GatewayKind::Or
    } else if always_all {
        GatewayKind::And
    } else if never_two {
        GatewayKind::Xor
    } else {
        GatewayKind::Or
    };
    (kind, support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine_general_dag, MinerOptions};

    fn mine(strings: &[&str]) -> (MinedModel, WorkflowLog) {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        (model, log)
    }

    #[test]
    fn and_split_and_join() {
        // B and C always run together, in either order.
        let (model, log) = mine(&["ABCD", "ACBD", "ABCD"]);
        let analysis = analyze_gateways(&model, &log);
        let split = analysis.split_at("A").expect("A splits");
        assert_eq!(split.kind, GatewayKind::And);
        assert_eq!(split.support, 3);
        let join = analysis.join_at("D").expect("D joins");
        assert_eq!(join.kind, GatewayKind::And);
        let mut branches = split.branches.clone();
        branches.sort();
        assert_eq!(branches, vec!["B", "C"]);
    }

    #[test]
    fn xor_split_and_join() {
        // Exactly one of B, C per execution.
        let (model, log) = mine(&["ABD", "ACD", "ABD", "ACD"]);
        let analysis = analyze_gateways(&model, &log);
        assert_eq!(analysis.split_at("A").unwrap().kind, GatewayKind::Xor);
        assert_eq!(analysis.join_at("D").unwrap().kind, GatewayKind::Xor);
    }

    #[test]
    fn or_split_mixed_behaviour() {
        // Sometimes both B and C, sometimes only B.
        let (model, log) = mine(&["ABCD", "ACBD", "ABD"]);
        let analysis = analyze_gateways(&model, &log);
        assert_eq!(analysis.split_at("A").unwrap().kind, GatewayKind::Or);
    }

    #[test]
    fn chains_have_no_gateways() {
        let (model, log) = mine(&["ABC", "ABC"]);
        let analysis = analyze_gateways(&model, &log);
        assert!(analysis.splits.is_empty());
        assert!(analysis.joins.is_empty());
    }

    #[test]
    fn order_fulfillment_gateways() {
        use procmine_sim::{engine, presets};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let process = presets::order_fulfillment();
        let mut rng = StdRng::seed_from_u64(3);
        let log = engine::generate_log(&process, 300, &mut rng).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let analysis = analyze_gateways(&model, &log);

        // Assess chooses between ManagerApproval/AutoApprove (XOR) and
        // independently adds FraudCheck — overall an OR split.
        let split = analysis.split_at("Assess").expect("Assess splits");
        assert_eq!(split.kind, GatewayKind::Or);
        // Ship joins the three paths; one or two of them arrive → OR.
        let join = analysis.join_at("Ship").expect("Ship joins");
        assert_eq!(join.kind, GatewayKind::Or);
    }

    #[test]
    fn display_names() {
        assert_eq!(GatewayKind::And.to_string(), "AND");
        assert_eq!(GatewayKind::Xor.to_string(), "XOR");
        assert_eq!(GatewayKind::Or.to_string(), "OR");
    }
}
