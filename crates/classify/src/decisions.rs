//! Decision mining: connecting split gateways with learned conditions.
//!
//! A split point plus per-edge learned conditions (§7) together form a
//! *decision rule* for executing the mined model: on completing the
//! split activity, evaluate each branch's condition on its output. This
//! module scores how well the learned rules explain the observed
//! routing — for an XOR split the branch predictions should cover every
//! observed output (coverage) and fire exactly one branch at a time
//! (exclusivity); an AND split's conditions should fire all branches.

use crate::{learn_edge_conditions, LearnedCondition, TreeConfig};
use procmine_core::splits::{analyze_gateways, Gateway, GatewayKind};
use procmine_core::MinedModel;
use procmine_log::WorkflowLog;

/// A split gateway with its learned routing rules and their quality.
#[derive(Debug)]
pub struct DecisionPoint {
    /// The gateway this decision sits on.
    pub gateway: Gateway,
    /// The learned condition per branch (same order as
    /// `gateway.branches`).
    pub conditions: Vec<LearnedCondition>,
    /// Fraction of observed split-activity outputs for which at least
    /// one branch condition fires.
    pub coverage: f64,
    /// Fraction of observed outputs for which *exactly* one branch
    /// fires — 1.0 for a clean XOR decision; low values mean the
    /// routing is parallel or not output-determined.
    pub exclusivity: f64,
    /// Number of observed outputs scored.
    pub samples: usize,
}

impl DecisionPoint {
    /// `true` if the learned rules behave like a data-driven exclusive
    /// choice: classified XOR, full coverage, full exclusivity.
    pub fn is_clean_xor(&self) -> bool {
        self.gateway.kind == GatewayKind::Xor
            && self.samples > 0
            && self.coverage == 1.0
            && self.exclusivity == 1.0
    }
}

/// Analyzes every split of `model`: classifies it from co-occurrence
/// (AND/XOR/OR), learns per-branch conditions, and scores
/// coverage/exclusivity of the learned rules over the log's outputs.
pub fn analyze_decision_points(
    model: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
) -> Vec<DecisionPoint> {
    let gateways = analyze_gateways(model, log);
    let learned = learn_edge_conditions(model, log, cfg);

    gateways
        .splits
        .into_iter()
        .map(|gateway| {
            let conditions: Vec<LearnedCondition> = gateway
                .branches
                .iter()
                .map(|branch| {
                    learned
                        .iter()
                        .find(|c| c.from == gateway.activity && &c.to == branch)
                        .expect("every model edge has a learned condition")
                        .clone()
                })
                .collect();

            // Score over the split activity's observed outputs.
            let source = log
                .activities()
                .id(&gateway.activity)
                .expect("model activities come from the log");
            let mut samples = 0usize;
            let mut covered = 0usize;
            let mut exclusive = 0usize;
            for exec in log.executions() {
                let Some(output) = exec.output_of(source) else {
                    continue;
                };
                samples += 1;
                let fired = conditions.iter().filter(|c| c.predict(output)).count();
                covered += (fired >= 1) as usize;
                exclusive += (fired == 1) as usize;
            }
            DecisionPoint {
                gateway,
                conditions,
                coverage: if samples == 0 {
                    0.0
                } else {
                    covered as f64 / samples as f64
                },
                exclusivity: if samples == 0 {
                    0.0
                } else {
                    exclusive as f64 / samples as f64
                },
                samples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_core::{mine_general_dag, MinerOptions};
    use procmine_sim::{engine, presets, textfmt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_xor_decision_detected() {
        let definition = "\
process Claims
activity Receive
activity Triage output uniform 0..100
activity Fast
activity Full
activity Done
edge Receive -> Triage
edge Triage -> Fast if o[0] <= 30
edge Triage -> Full if o[0] > 30
edge Fast -> Done
edge Full -> Done
";
        let model = textfmt::read_model(definition.as_bytes()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let log = engine::generate_log(&model, 400, &mut rng).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let points = analyze_decision_points(&mined, &log, &TreeConfig::default());

        let triage = points
            .iter()
            .find(|p| p.gateway.activity == "Triage")
            .expect("Triage splits");
        assert_eq!(triage.gateway.kind, GatewayKind::Xor);
        assert!(triage.samples > 300);
        assert!(triage.coverage > 0.99, "coverage {}", triage.coverage);
        assert!(
            triage.exclusivity > 0.99,
            "exclusivity {}",
            triage.exclusivity
        );
        assert!(triage.is_clean_xor() || triage.exclusivity > 0.99);
    }

    #[test]
    fn mixed_or_split_scores_lower_exclusivity() {
        // order_fulfillment's Assess split is OR (approval XOR + fraud
        // add-on): coverage stays high, exclusivity drops whenever the
        // fraud branch fires alongside an approval branch.
        let model = presets::order_fulfillment();
        let mut rng = StdRng::seed_from_u64(6);
        let log = engine::generate_log(&model, 400, &mut rng).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let points = analyze_decision_points(&mined, &log, &TreeConfig::default());

        let assess = points
            .iter()
            .find(|p| p.gateway.activity == "Assess")
            .expect("Assess splits");
        assert_eq!(assess.gateway.kind, GatewayKind::Or);
        assert!(assess.coverage > 0.99);
        assert!(
            assess.exclusivity < 0.9,
            "fraud branch overlaps: {}",
            assess.exclusivity
        );
        assert!(!assess.is_clean_xor());
    }

    #[test]
    fn splits_without_outputs_have_zero_samples() {
        let log = procmine_log::WorkflowLog::from_strings(["ABD", "ACD"]).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let points = analyze_decision_points(&mined, &log, &TreeConfig::default());
        let a = points.iter().find(|p| p.gateway.activity == "A").unwrap();
        assert_eq!(a.samples, 0);
        assert_eq!(a.coverage, 0.0);
        assert!(!a.is_clean_xor());
    }
}
