//! Process-model mining from workflow logs — the core algorithms of
//! Agrawal, Gunopulos & Leymann, *Mining Process Models from Workflow
//! Logs* (EDBT 1998).
//!
//! Given a [`WorkflowLog`](procmine_log::WorkflowLog) of `m` executions
//! over `n` activities, the miners synthesize a directed graph over the
//! activities that is **conformal** (Definition 7 of the paper):
//!
//! * *dependency complete* — every dependency observable in the log is a
//!   path in the graph;
//! * *irredundant* — no path connects activities the log shows to be
//!   independent;
//! * *execution complete* — every logged execution is consistent with
//!   the graph (Definition 6).
//!
//! Three miners cover the paper's three settings:
//!
//! | function | paper | setting | complexity |
//! |----------|-------|---------|------------|
//! | [`mine_special_dag`] | Algorithm 1 | acyclic, every activity in every execution; output is the *unique minimal* conformal graph | O(n²m) |
//! | [`mine_general_dag`] | Algorithm 2 | acyclic, activities may be skipped | O(n³m) |
//! | [`mine_cyclic`] | Algorithm 3 | general directed graphs with cycles | O((kn)³m) |
//!
//! [`mine_auto`] inspects the log and dispatches to the right one.
//! All miners accept [`MinerOptions`], which carries the §6 noise
//! threshold `T`; [`noise`] derives the optimal `T` from an error-rate
//! estimate. [`conformance`] independently re-checks mined models
//! against Definitions 6–7, and [`follows`] exposes the underlying
//! *follows* / *depends* relations (Definitions 3–5).
//!
//! Every miner also has a `*_in` form ([`mine_general_dag_in`] etc.)
//! that runs inside a [`MineSession`] — the one place to configure
//! metrics, tracing, resource limits, and the thread count for the
//! parallelizable stages. See [`session`](MineSession) for the builder
//! idiom.
//!
//! # Example
//!
//! ```
//! use procmine_log::WorkflowLog;
//! use procmine_core::{mine_general_dag, MinerOptions};
//!
//! // The paper's Example 7 log.
//! let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
//! let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
//!
//! // C, D, E form a cycle of followings, hence are independent: no
//! // edges among them survive (Figure 4).
//! assert!(!model.has_edge("C", "D") && !model.has_edge("D", "E"));
//! assert!(model.has_edge("A", "B"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cyclic;
mod error;
mod general_dag;
mod incremental;
mod limits;
mod miner;
mod model;
mod online;
mod parallel;
mod session;
mod special_dag;

pub mod baseline;
pub mod bpmn;
pub mod checkpoint;
pub mod conformance;
pub mod follows;
pub mod metrics;
pub mod noise;
pub mod obs;
pub mod reference;
pub mod splits;
pub mod telemetry;
pub mod trace;

pub use checkpoint::{
    FollowCheckpoint, MinerState, OnlineMinerState, OptionsFingerprint, SourceState,
    DEFAULT_CHECKPOINT_EVERY,
};
pub use cyclic::{mine_cyclic, mine_cyclic_in};
pub use error::MineError;
pub use general_dag::{mine_general_dag, mine_general_dag_in};
pub use incremental::IncrementalMiner;
pub use limits::{LimitKind, Limits};
pub use miner::{mine_auto, mine_auto_in, Algorithm, MinerOptions};
pub use model::MinedModel;
pub use obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use online::{OnlineMiner, SnapshotPolicy};
pub use parallel::mine_general_dag_parallel;
pub use session::MineSession;
pub use special_dag::{mine_special_dag, mine_special_dag_in};
pub use telemetry::{ConformanceMetrics, MetricsSink, MinerMetrics, NullSink, Stage, WallStage};
pub use trace::{SpanGuard, SpanRecord, TraceBuffer, Tracer};
