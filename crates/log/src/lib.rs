//! Workflow execution-log model for the `procmine` workspace.
//!
//! Section 2 of the paper (Definition 2) models the log of one execution
//! as a list of event records `(P, A, E, T, O)` — process execution name,
//! activity name, event type (`START`/`END`), timestamp, and the
//! activity's output vector on `END`. This crate provides:
//!
//! * [`ActivityTable`] — string interning for activity names, so the
//!   mining inner loops work on dense `u32` ids;
//! * [`EventRecord`] / [`EventKind`] — the raw log schema;
//! * [`Execution`] — one execution, stored as activity *instances* with
//!   start/end intervals. Two activities that overlap in time are
//!   independent by construction (the paper's simplification to
//!   instantaneous activities is the special case `start == end`);
//! * [`WorkflowLog`] — a set of executions over a shared activity table;
//! * [`codec`] — Flowmark-style CSV event format, a one-line-per-execution
//!   sequence format, JSON-lines, and XES, each with a recovering decode
//!   path ([`RecoveryPolicy`] / [`IngestReport`]);
//! * [`validate`] — structural validation and diagnostics for raw event
//!   streams (unmatched STARTs, END-before-START, duplicate events);
//! * [`stream`] — streaming/online ingestion: composable event-sink
//!   stages, the interleaved case assembler (bounded open-case window),
//!   and a follow-mode tail reader;
//! * [`fault`] — deterministic fault injection ([`fault::FaultReader`])
//!   for robustness tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use procmine_log::WorkflowLog;
//!
//! let log = WorkflowLog::from_sequences([
//!     ["A", "B", "C", "E"],
//!     ["A", "C", "D", "E"],
//! ]).unwrap();
//! assert_eq!(log.len(), 2);
//! assert_eq!(log.activities().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod error;
mod event;
mod execution;
mod log_impl;
mod ops;

pub mod codec;
pub mod columnar;
pub mod fault;
pub mod stats;
pub mod stream;
pub mod validate;

pub use activity::{ActivityId, ActivityTable};
pub use codec::{IngestError, IngestReport, RecoveryPolicy};
pub use columnar::{CompactLog, EventColumns, ExecColumns};
pub use error::LogError;
pub use event::{EventKind, EventRecord};
pub use execution::{ActivityInstance, Execution};
pub use log_impl::WorkflowLog;
