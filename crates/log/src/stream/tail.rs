//! Follow-mode reader: treat EOF as "not yet", within an idle budget.
//!
//! A regular file being appended to returns `Ok(0)` from `read` at the
//! current end; [`TailReader`] turns that into a poll-and-retry loop so
//! `procmine mine --follow` can consume a log while a workflow engine
//! is still writing it. After `idle_limit` of consecutive empty polls
//! the reader gives up and reports a real EOF, ending the follow
//! session cleanly (set it to `None` to follow forever, e.g. under an
//! external watchdog).
//!
//! Pipes need no wrapping — their reads block until data or a true EOF
//! — so the CLI only wraps regular files.

use std::io::Read;
use std::time::Duration;

/// A [`Read`] adapter that retries empty reads, for tailing a growing
/// file. I/O errors pass through unchanged (and are fatal upstream —
/// see [`FlowmarkSource`](super::FlowmarkSource)).
pub struct TailReader<R> {
    inner: R,
    poll: Duration,
    idle_limit: Option<Duration>,
}

impl<R: Read> TailReader<R> {
    /// Wraps `inner`. `poll` is the sleep between empty reads;
    /// `idle_limit` is the total idle time after which EOF becomes
    /// final (`None`: never give up).
    pub fn new(inner: R, poll: Duration, idle_limit: Option<Duration>) -> Self {
        TailReader {
            inner,
            poll,
            idle_limit,
        }
    }
}

impl<R: Read> Read for TailReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut idle = Duration::ZERO;
        loop {
            let n = self.inner.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            if let Some(limit) = self.idle_limit {
                if idle >= limit {
                    return Ok(0);
                }
            }
            std::thread::sleep(self.poll);
            idle += self.poll;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn picks_up_appended_data_then_gives_up_when_idle() {
        // Reader and writer need independent file offsets: open twice.
        let path =
            std::env::temp_dir().join(format!("procmine-tail-test-{}.log", std::process::id()));
        std::fs::write(&path, "first\n").unwrap();
        let mut lines = BufReader::new(TailReader::new(
            std::fs::File::open(&path).unwrap(),
            Duration::from_millis(1),
            Some(Duration::from_millis(50)),
        ));

        let mut line = String::new();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "first\n");

        let mut appender = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        appender.write_all(b"second\n").unwrap();
        appender.flush().unwrap();
        line.clear();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "second\n");

        // No more writes: the idle limit turns EOF final.
        line.clear();
        assert_eq!(lines.read_line(&mut line).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
