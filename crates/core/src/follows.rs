//! The *follows* and *depends* relations of Definitions 3–5, plus the
//! pair-order counting shared by the miners.
//!
//! Definition 3: activity `B` *follows* `A` if `B` starts after `A`
//! terminates in each execution where both appear, or some `C` exists
//! with `C` follows `A` and `B` follows `C` (i.e. the relation is the
//! transitive closure of the direct-following relation).
//!
//! Definition 4: `B` *depends on* `A` if `B` follows `A` but `A` does not
//! follow `B`; `A` and `B` are *independent* if they follow each other
//! both ways or neither way.
//!
//! These relations define what a conformal graph must (dependency
//! completeness) and must not (irredundancy) connect, so the
//! [`conformance`](crate::conformance) checker is built on this module.

use procmine_graph::{reach, scc, AdjMatrix};
use procmine_log::WorkflowLog;

/// Per-ordered-pair observation counts over a log, at activity level.
///
/// `ordered(u, v)` counts the executions in which every instance of `u`
/// terminates before every instance of `v` starts; `cooccur(u, v)`
/// counts executions containing both. Each execution contributes at most
/// 1 to each counter (deduplicated with an execution stamp).
#[derive(Debug, Clone)]
pub struct OrderCounts {
    n: usize,
    ordered: Vec<u32>,
    cooccur: Vec<u32>,
}

impl OrderCounts {
    /// Scans the log once and tallies the counters. O(Σ k²) over
    /// execution lengths `k`.
    pub fn from_log(log: &WorkflowLog) -> Self {
        let n = log.activities().len();
        let mut ordered = vec![0u32; n * n];
        let mut cooccur = vec![0u32; n * n];
        // Per-activity min start / max end within one execution.
        let mut min_start = vec![u64::MAX; n];
        let mut max_end = vec![0u64; n];
        let mut present: Vec<usize> = Vec::new();

        for exec in log.executions() {
            present.clear();
            for inst in exec.instances() {
                let a = inst.activity.index();
                if min_start[a] == u64::MAX {
                    present.push(a);
                }
                min_start[a] = min_start[a].min(inst.start);
                max_end[a] = max_end[a].max(inst.end);
            }
            for &u in &present {
                for &v in &present {
                    if u == v {
                        continue;
                    }
                    cooccur[u * n + v] += 1;
                    if max_end[u] < min_start[v] {
                        ordered[u * n + v] += 1;
                    }
                }
            }
            for &a in &present {
                min_start[a] = u64::MAX;
                max_end[a] = 0;
            }
        }
        OrderCounts {
            n,
            ordered,
            cooccur,
        }
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.n
    }

    /// Executions in which `u` wholly precedes `v`.
    pub fn ordered(&self, u: usize, v: usize) -> u32 {
        self.ordered[u * self.n + v]
    }

    /// Executions containing both `u` and `v`.
    pub fn cooccur(&self, u: usize, v: usize) -> u32 {
        self.cooccur[u * self.n + v]
    }

    /// `v` directly follows `u` (Definition 3, base case): they co-occur
    /// at least once and `v` starts after `u` terminates in *every*
    /// co-occurrence.
    pub fn directly_follows(&self, u: usize, v: usize) -> bool {
        let c = self.cooccur(u, v);
        c > 0 && self.ordered(u, v) == c
    }
}

/// The computed follows/depends relations of a log.
///
/// Two closures are maintained:
///
/// * the literal Definition-3 *follows* closure of the direct-following
///   relation, and
/// * the *dependency* closure used by [`depends`](Self::depends): the
///   same graph with all edges inside a strongly connected component
///   removed first. §4 of the paper is explicit that "activity pairs
///   A, B that have a path of followings from A to B as well as from B
///   to A … are independent", and Algorithm 2's step 4 removes exactly
///   those edges — so a path of followings that *passes through* such a
///   component does not constitute a dependency. This is what makes
///   mined graphs check out as dependency-complete and irredundant.
#[derive(Debug, Clone)]
pub struct FollowsAnalysis {
    n: usize,
    direct: AdjMatrix,
    closure: AdjMatrix,
    dep_closure: AdjMatrix,
}

impl FollowsAnalysis {
    /// Analyzes a log: builds the direct-following relation and closes
    /// it transitively.
    pub fn analyze(log: &WorkflowLog) -> Self {
        let counts = OrderCounts::from_log(log);
        Self::from_counts(&counts)
    }

    /// Builds the relations from precomputed counts.
    pub fn from_counts(counts: &OrderCounts) -> Self {
        let n = counts.activity_count();
        let mut direct = AdjMatrix::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && counts.directly_follows(u, v) {
                    direct.add_edge(u, v);
                }
            }
        }
        let mut closure = direct.clone();
        reach::closure_in_place(&mut closure);

        // Dependency closure: dissolve cycles of followings first
        // (they mark mutually independent activities), then close.
        let digraph = direct.to_digraph(|_| ());
        let sccs = scc::tarjan_scc(&digraph);
        let mut pruned = direct.clone();
        for comp in sccs.nontrivial() {
            for &u in comp {
                for &v in comp {
                    if u != v {
                        pruned.remove_edge(u.index(), v.index());
                    }
                }
            }
        }
        let mut dep_closure = pruned;
        reach::closure_in_place(&mut dep_closure);

        FollowsAnalysis {
            n,
            direct,
            closure,
            dep_closure,
        }
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.n
    }

    /// `v` directly follows `u` (base case of Definition 3).
    pub fn directly_follows(&self, u: usize, v: usize) -> bool {
        self.direct.has_edge(u, v)
    }

    /// `v` follows `u` (Definition 3, including transitivity).
    pub fn follows(&self, u: usize, v: usize) -> bool {
        self.closure.has_edge(u, v)
    }

    /// `v` depends on `u` (Definition 4, with the §4 refinement): there
    /// is a path of followings from `u` to `v` that does not rely on
    /// edges inside a cycle of followings, and no such path back.
    pub fn depends(&self, u: usize, v: usize) -> bool {
        self.dep_closure.has_edge(u, v) && !self.dep_closure.has_edge(v, u)
    }

    /// `u` and `v` are independent (Definition 4): neither depends on
    /// the other.
    pub fn independent(&self, u: usize, v: usize) -> bool {
        !self.depends(u, v) && !self.depends(v, u)
    }

    /// All dependencies as `(u, v)` pairs meaning "`v` depends on `u`".
    pub fn dependencies(&self) -> Vec<(usize, usize)> {
        let mut deps = Vec::new();
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v && self.depends(u, v) {
                    deps.push((u, v));
                }
            }
        }
        deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::WorkflowLog;

    fn idx(log: &WorkflowLog, name: &str) -> usize {
        log.activities().id(name).unwrap().index()
    }

    #[test]
    fn paper_example_3_first_log() {
        // Log {ABCE, ACDE, ADBE}: B depends on A; B and D independent
        // (B follows D directly, D follows B via C).
        let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ADBE"]).unwrap();
        let f = FollowsAnalysis::analyze(&log);
        let (a, b, c, d) = (
            idx(&log, "A"),
            idx(&log, "B"),
            idx(&log, "C"),
            idx(&log, "D"),
        );

        assert!(f.follows(a, b) && !f.follows(b, a), "B depends on A");
        assert!(f.depends(a, b));

        // B follows D directly; D follows B via C (B→C direct in ABCE &
        // ADBE? B,C co-occur only in ABCE where B<C; C→D direct in ACDE).
        assert!(f.directly_follows(d, b));
        assert!(f.directly_follows(b, c) && f.directly_follows(c, d));
        assert!(f.follows(b, d), "D follows B through C");
        assert!(f.independent(b, d));
        assert!(!f.depends(d, b) && !f.depends(b, d));
    }

    #[test]
    fn paper_example_3_extended_log() {
        // Adding ADCE: C and D appear in both orders, so D no longer
        // directly follows C; the D-follows-B-via-C chain breaks and B
        // now depends on D (the paper's prose for Example 3).
        let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ADBE", "ADCE"]).unwrap();
        let f = FollowsAnalysis::analyze(&log);
        let (b, c, d) = (idx(&log, "B"), idx(&log, "C"), idx(&log, "D"));

        assert!(!f.directly_follows(c, d) && !f.directly_follows(d, c));
        assert!(f.depends(d, b), "B depends on D after the extension");
        assert!(!f.follows(b, d));
        // The chain D→B→C still encodes "when B runs, it runs between D
        // and C", so C transitively depends on D.
        assert!(f.depends(d, c));
    }

    #[test]
    fn order_counts_basics() {
        let log = WorkflowLog::from_strings(["AB", "AB", "BA"]).unwrap();
        let counts = OrderCounts::from_log(&log);
        let (a, b) = (idx(&log, "A"), idx(&log, "B"));
        assert_eq!(counts.cooccur(a, b), 3);
        assert_eq!(counts.ordered(a, b), 2);
        assert_eq!(counts.ordered(b, a), 1);
        assert!(
            !counts.directly_follows(a, b),
            "one reversal breaks direct following"
        );
    }

    #[test]
    fn non_cooccurring_activities_do_not_follow() {
        let log = WorkflowLog::from_strings(["AB", "AC"]).unwrap();
        let f = FollowsAnalysis::analyze(&log);
        let (b, c) = (idx(&log, "B"), idx(&log, "C"));
        assert!(!f.follows(b, c) && !f.follows(c, b));
        assert!(f.independent(b, c));
    }

    #[test]
    fn repeated_activity_uses_extreme_instances() {
        // In ABAB, A's last instance ends after B's first starts, so
        // neither wholly precedes the other.
        let log = WorkflowLog::from_strings(["ABAB"]).unwrap();
        let counts = OrderCounts::from_log(&log);
        let (a, b) = (idx(&log, "A"), idx(&log, "B"));
        assert_eq!(counts.cooccur(a, b), 1);
        assert_eq!(counts.ordered(a, b), 0);
        assert_eq!(counts.ordered(b, a), 0);
    }

    #[test]
    fn dependencies_listing() {
        let log = WorkflowLog::from_strings(["ABC", "ABC"]).unwrap();
        let f = FollowsAnalysis::analyze(&log);
        let (a, b, c) = (idx(&log, "A"), idx(&log, "B"), idx(&log, "C"));
        let deps = f.dependencies();
        assert!(deps.contains(&(a, b)) && deps.contains(&(b, c)) && deps.contains(&(a, c)));
        assert_eq!(deps.len(), 3);
    }
}
