//! Follow-mode reader: treat EOF as "not yet", within an idle budget,
//! with supervised retries and truncation detection.
//!
//! A regular file being appended to returns `Ok(0)` from `read` at the
//! current end; [`TailReader`] turns that into a poll-and-retry loop so
//! `procmine mine --follow` can consume a log while a workflow engine
//! is still writing it. After `idle_limit` of *wall-clock* inactivity
//! the reader gives up and reports a real EOF, ending the follow
//! session cleanly (set it to `None` to follow forever, e.g. under an
//! external watchdog).
//!
//! Two supervision layers harden long-running sessions:
//!
//! * **Bounded retry** ([`RetryPolicy`]): `ErrorKind::Interrupted` is
//!   always retried for free (it is not a failure), and other I/O
//!   errors are retried up to a budget with exponential backoff before
//!   surfacing — a transient NFS hiccup should not kill an hours-long
//!   follow. A successful read resets the budget.
//! * **Truncation detection** ([`TailReader::watching`]): if the
//!   watched file shrinks below the bytes already delivered (log
//!   rotation, an accidental `> file`), the reader fails with a
//!   descriptive I/O error instead of sitting at a stale offset
//!   forever — upstream the [`FlowmarkSource`](super::FlowmarkSource)
//!   records it as a located error in its
//!   [`IngestReport`](crate::IngestReport).
//!
//! Pipes need no wrapping — their reads block until data or a true EOF
//! — so the CLI only wraps regular files.

use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared counters describing a [`TailReader`]'s supervision activity,
/// for health export. The reader holds one handle and increments it
/// in-line; the follow driver keeps a clone ([`TailReader::stats`]) and
/// reads it whenever metrics are scraped — the counters are relaxed
/// atomics, never locks, so sampling them does not perturb the read
/// loop.
#[derive(Debug, Default)]
pub struct TailStats {
    /// Non-`Interrupted` I/O errors that were retried (budget spent).
    retries: AtomicU64,
    /// Total nanoseconds slept in retry backoff.
    backoff_ns: AtomicU64,
    /// Empty polls observed (EOF-for-now sleeps).
    empty_polls: AtomicU64,
}

impl TailStats {
    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total backoff sleep, in nanoseconds.
    pub fn backoff_ns(&self) -> u64 {
        self.backoff_ns.load(Ordering::Relaxed)
    }

    /// Empty polls (EOF-for-now) observed so far.
    pub fn empty_polls(&self) -> u64 {
        self.empty_polls.load(Ordering::Relaxed)
    }
}

/// Retry budget for transient I/O errors during a follow session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive non-`Interrupted` I/O errors tolerated before the
    /// error surfaces. `0`: every error is immediately fatal.
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Upper bound on the per-retry backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default backoff.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }
}

/// A [`Read`] adapter that retries empty reads, for tailing a growing
/// file. See the module docs for the idle budget, the retry policy,
/// and truncation detection.
pub struct TailReader<R> {
    inner: R,
    poll: Duration,
    idle_limit: Option<Duration>,
    retry: RetryPolicy,
    /// Watched path and the byte offset the file position started at
    /// (nonzero when resuming from a checkpoint).
    watch: Option<(PathBuf, u64)>,
    /// Bytes delivered through this reader since construction.
    delivered: u64,
    /// Supervision counters, shared with [`TailReader::stats`] handles.
    stats: Arc<TailStats>,
}

impl<R: Read> TailReader<R> {
    /// Wraps `inner`. `poll` is the sleep between empty reads;
    /// `idle_limit` is the wall-clock inactivity after which EOF
    /// becomes final (`None`: never give up).
    pub fn new(inner: R, poll: Duration, idle_limit: Option<Duration>) -> Self {
        TailReader {
            inner,
            poll,
            idle_limit,
            retry: RetryPolicy::default(),
            watch: None,
            delivered: 0,
            stats: Arc::new(TailStats::default()),
        }
    }

    /// A handle onto the reader's supervision counters; stays valid
    /// (and live) after the reader moves into a decode pipeline.
    pub fn stats(&self) -> Arc<TailStats> {
        Arc::clone(&self.stats)
    }

    /// Replaces the transient-error retry policy, builder-style.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables truncation detection: on every empty poll the file at
    /// `path` is stat'ed, and a length below `origin` plus the bytes
    /// already delivered fails the read (the file was truncated or
    /// rotated underneath the follow). `origin` is the byte offset the
    /// underlying reader was seeked to before wrapping (nonzero when
    /// resuming from a checkpoint).
    pub fn watching(mut self, path: impl Into<PathBuf>, origin: u64) -> Self {
        self.watch = Some((path.into(), origin));
        self
    }

    /// Checks the watched file for truncation below the delivered
    /// position. Called on empty polls — the only time the answer can
    /// be "the data we are waiting for can never arrive".
    fn check_truncation(&self) -> std::io::Result<()> {
        let Some((path, origin)) = &self.watch else {
            return Ok(());
        };
        let position = origin + self.delivered;
        let len = std::fs::metadata(path)?.len();
        if len < position {
            return Err(std::io::Error::other(format!(
                "log file `{}` was truncated or rotated while being followed: \
                 length is now {len} bytes, but {position} bytes were already consumed",
                path.display()
            )));
        }
        Ok(())
    }
}

impl<R: Read> Read for TailReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let started = Instant::now();
        let mut retries = 0u32;
        let mut backoff = self.retry.initial_backoff;
        loop {
            match self.inner.read(buf) {
                Ok(0) => {
                    self.check_truncation()?;
                    // Wall-clock idle budget: time blocked inside the
                    // inner `read` counts too, so `--idle-ms` bounds
                    // real elapsed time rather than just sleep ticks.
                    if let Some(limit) = self.idle_limit {
                        if started.elapsed() >= limit {
                            return Ok(0);
                        }
                    }
                    self.stats.empty_polls.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.poll);
                }
                Ok(n) => {
                    self.delivered += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    // Not a failure: retry immediately, free of budget.
                    continue;
                }
                Err(e) => {
                    if retries >= self.retry.max_retries {
                        return Err(e);
                    }
                    retries += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .backoff_ns
                        .fetch_add(backoff.as_nanos() as u64, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.retry.max_backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "procmine-tail-test-{tag}-{}.log",
            std::process::id()
        ))
    }

    #[test]
    fn picks_up_appended_data_then_gives_up_when_idle() {
        // Reader and writer need independent file offsets: open twice.
        let path = temp_path("append");
        std::fs::write(&path, "first\n").unwrap();
        let mut lines = BufReader::new(TailReader::new(
            std::fs::File::open(&path).unwrap(),
            Duration::from_millis(1),
            Some(Duration::from_millis(50)),
        ));

        let mut line = String::new();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "first\n");

        let mut appender = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        appender.write_all(b"second\n").unwrap();
        appender.flush().unwrap();
        line.clear();
        lines.read_line(&mut line).unwrap();
        assert_eq!(line, "second\n");

        // No more writes: the idle limit turns EOF final.
        line.clear();
        assert_eq!(lines.read_line(&mut line).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    /// A reader that takes its time before admitting it has nothing.
    struct SlowEmpty {
        delay: Duration,
    }

    impl Read for SlowEmpty {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.delay);
            Ok(0)
        }
    }

    #[test]
    fn idle_budget_is_wall_clock_not_sleep_ticks() {
        // Each inner read blocks 25ms before returning empty. Counting
        // only poll sleeps (1ms per empty read) toward a 40ms budget
        // would take 40 reads ≈ 1s; wall-clock elapsed gives up after
        // two reads.
        let mut tail = TailReader::new(
            SlowEmpty {
                delay: Duration::from_millis(25),
            },
            Duration::from_millis(1),
            Some(Duration::from_millis(40)),
        );
        let started = Instant::now();
        let mut buf = [0u8; 64];
        assert_eq!(tail.read(&mut buf).unwrap(), 0);
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "idle budget ignored time blocked in read: {:?}",
            started.elapsed()
        );
    }

    /// Fails `failures` times with the given kind, then yields `data`.
    struct Flaky {
        failures: u32,
        kind: std::io::ErrorKind,
        data: &'static [u8],
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(std::io::Error::new(self.kind, "transient"));
            }
            self.data.read(buf)
        }
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        let mut tail = TailReader::new(
            Flaky {
                failures: 2,
                kind: std::io::ErrorKind::Other,
                data: b"payload",
            },
            Duration::from_millis(1),
            Some(Duration::ZERO),
        )
        .with_retry(RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        });
        let mut buf = [0u8; 16];
        let n = tail.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"payload");
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_error() {
        let mut tail = TailReader::new(
            Flaky {
                failures: 5,
                kind: std::io::ErrorKind::Other,
                data: b"never reached",
            },
            Duration::from_millis(1),
            Some(Duration::ZERO),
        )
        .with_retry(RetryPolicy {
            max_retries: 1,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        });
        let mut buf = [0u8; 16];
        assert!(tail.read(&mut buf).is_err());
    }

    #[test]
    fn interrupted_never_burns_the_retry_budget() {
        let mut tail = TailReader::new(
            Flaky {
                failures: 10,
                kind: std::io::ErrorKind::Interrupted,
                data: b"made it",
            },
            Duration::from_millis(1),
            Some(Duration::ZERO),
        )
        .with_retry(RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        });
        let mut buf = [0u8; 16];
        let n = tail.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"made it");
    }

    #[test]
    fn stats_handle_counts_retries_and_backoff() {
        let mut tail = TailReader::new(
            Flaky {
                failures: 2,
                kind: std::io::ErrorKind::Other,
                data: b"payload",
            },
            Duration::from_millis(1),
            Some(Duration::ZERO),
        )
        .with_retry(RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        });
        let stats = tail.stats();
        assert_eq!(stats.retries(), 0);
        let mut buf = [0u8; 16];
        let n = tail.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"payload");
        assert_eq!(stats.retries(), 2);
        // 1ms + 2ms of backoff were slept.
        assert_eq!(stats.backoff_ns(), 3_000_000);
        // Interrupted reads never count as retries.
        let mut tail = TailReader::new(
            Flaky {
                failures: 4,
                kind: std::io::ErrorKind::Interrupted,
                data: b"x",
            },
            Duration::from_millis(1),
            Some(Duration::ZERO),
        );
        let stats = tail.stats();
        let n = tail.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"x");
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn empty_polls_are_counted() {
        let path = temp_path("polls");
        std::fs::write(&path, "data\n").unwrap();
        let mut tail = TailReader::new(
            std::fs::File::open(&path).unwrap(),
            Duration::from_millis(1),
            Some(Duration::from_millis(20)),
        );
        let stats = tail.stats();
        let mut buf = [0u8; 64];
        while tail.read(&mut buf).unwrap() != 0 {}
        assert!(stats.empty_polls() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_under_the_follow_is_a_located_error() {
        let path = temp_path("truncate");
        std::fs::write(&path, "p1,A,START,0\np1,A,END,1\n").unwrap();
        let mut tail = TailReader::new(
            std::fs::File::open(&path).unwrap(),
            Duration::from_millis(1),
            Some(Duration::from_millis(200)),
        )
        .watching(&path, 0);

        // Drain the current contents.
        let mut all = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match tail.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => all.extend_from_slice(&buf[..n]),
                Err(e) => panic!("unexpected error before truncation: {e}"),
            }
        }
        assert_eq!(all.len(), 24);

        // Rotate the file out from under the reader.
        std::fs::write(&path, "p9,Z,START,9\n").unwrap();
        let err = tail.read(&mut buf).unwrap_err();
        assert!(
            err.to_string().contains("truncated or rotated"),
            "got: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
