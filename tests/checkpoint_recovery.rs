//! Crash-recovery tests for the `--follow` checkpoint subsystem.
//!
//! * proptest crash parity: kill the pipeline at a randomized event
//!   boundary, resume from the last checkpoint, and require the final
//!   model to equal an uninterrupted run — edges *and* support counts;
//! * torn writes: a checkpoint file truncated at any byte, or with any
//!   byte corrupted, is refused with a typed error — never silently
//!   mined from;
//! * disk roundtrip of genuinely mid-stream state (open cases, partial
//!   counts, nonzero source position).

use procmine::log::stream::{
    AssemblerConfig, CaseAssembler, CheckpointError, FlowmarkSource, Observer, StreamError,
    StreamSink,
};
use procmine::log::validate::AssemblyPolicy;
use procmine::log::{
    ActivityTable, EventKind, EventRecord, Execution, RecoveryPolicy, WorkflowLog,
};
use procmine::mine::{
    FollowCheckpoint, MinedModel, MinerOptions, OnlineMiner, OptionsFingerprint, SnapshotPolicy,
    SourceState,
};
use proptest::prelude::*;

const FINGERPRINT: OptionsFingerprint = OptionsFingerprint {
    noise_threshold: 1,
    max_open_cases: 1024,
    strict_assembly: true,
};

const CONFIG: AssemblerConfig = AssemblerConfig {
    max_open_cases: 1024,
    assembly: AssemblyPolicy::Strict,
};

/// Strategy: a random log over activities `A`..`J` (same shape as
/// tests/streaming.rs — shuffled subsets wrapped in fixed start/end).
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

/// Serializes `log` as flowmark text with cases interleaved by `picks`
/// (relative order within each case preserved).
fn interleaved_flowmark(log: &WorkflowLog, picks: &[usize]) -> String {
    let table = log.activities();
    let mut queues: Vec<Vec<EventRecord>> = log
        .executions()
        .iter()
        .map(|exec| {
            let mut events = Vec::new();
            for inst in exec.instances() {
                let name = table.name(inst.activity);
                events.push(EventRecord::start(&exec.id, name, inst.start));
                events.push(EventRecord::end(&exec.id, name, inst.end, None));
            }
            events.reverse();
            events
        })
        .collect();
    let mut out = String::new();
    let mut emit = |e: EventRecord| {
        let kind = match e.kind {
            EventKind::Start => "START",
            EventKind::End => "END",
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            e.process, e.activity, kind, e.time
        ));
    };
    for &pick in picks {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        let q = live[pick % live.len()];
        if let Some(e) = queues[q].pop() {
            emit(e);
        }
    }
    for q in &mut queues {
        while let Some(e) = q.pop() {
            emit(e);
        }
    }
    out
}

/// Sorted `(from, to, support)` triples with names resolved.
fn support_triples(model: &MinedModel) -> Vec<(String, String, u32)> {
    let mut triples: Vec<(String, String, u32)> = model
        .edge_support()
        .iter()
        .map(|&(u, v, c)| {
            let name = |i: usize| model.name_of(procmine::graph::NodeId::new(i)).to_string();
            (name(u), name(v), c)
        })
        .collect();
    triples.sort();
    triples
}

/// The test pipeline's observer: absorb into the miner, fail loudly
/// (the crash tests run on clean logs — nothing should be skipped).
struct Driver<'a> {
    miner: &'a mut OnlineMiner,
}

impl Observer for Driver<'_> {
    fn on_execution(&mut self, exec: &Execution, table: &ActivityTable) -> Result<(), StreamError> {
        self.miner
            .absorb(exec, table)
            .map(|_| ())
            .map_err(|e| StreamError::Sink(Box::new(e)))
    }
}

/// Captures the full pipeline state the way the CLI does at a
/// checkpoint boundary.
fn capture(
    assembler: &CaseAssembler<Driver<'_>>,
    source: &FlowmarkSource<&[u8]>,
    source_len: u64,
) -> FollowCheckpoint {
    let (byte_offset, line) = source.position();
    FollowCheckpoint {
        fingerprint: FINGERPRINT,
        miner: assembler.observer().miner.export_state(),
        assembler: assembler.export_state(),
        source: SourceState {
            byte_offset,
            line: line as u64,
            source_len,
            stats: source.stats(),
            report: source.report().clone(),
        },
    }
}

/// Runs the follow pipeline over `text` from a cold start to
/// completion and returns the final model plus executions absorbed.
fn run_uninterrupted(text: &str) -> (MinedModel, usize) {
    let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
    let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
    let mut assembler = CaseAssembler::new(CONFIG, Driver { miner: &mut miner });
    source.pump(&mut assembler).unwrap();
    drop(assembler);
    let executions = miner.executions();
    (miner.snapshot().unwrap(), executions)
}

/// Runs the pipeline, checkpointing (through a full encode/decode
/// byte roundtrip) every `cadence` consumed events — the same trigger
/// the CLI driver uses, so saves routinely land mid-case with open
/// cases in the assembler — and aborts without `finish` after
/// `kill_events` consumed events: the crash. Returns the last durable
/// checkpoint, if any cadence boundary was reached.
fn run_until_crash(text: &str, cadence: u64, kill_events: usize) -> Option<FollowCheckpoint> {
    let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
    let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
    let mut assembler = CaseAssembler::new(CONFIG, Driver { miner: &mut miner });
    let mut saved: Option<FollowCheckpoint> = None;
    let mut consumed = 0usize;
    let mut since_save = 0u64;
    while consumed < kill_events {
        match source.next_event().unwrap() {
            Some((event, at)) => {
                assembler.on_event(event, at).unwrap();
                consumed += 1;
                since_save += 1;
                if since_save >= cadence {
                    let ck = capture(&assembler, &source, text.len() as u64);
                    // Simulate the disk hop: only what survives the
                    // wire format is durable.
                    saved = Some(FollowCheckpoint::decode(&ck.encode()).unwrap());
                    since_save = 0;
                }
            }
            None => break,
        }
    }
    // Crash: no finish(), open cases and tail events are lost.
    saved
}

/// Resumes from `ck` (or cold-starts) and runs the pipeline to the end
/// of `text`, exactly like a restarted `mine --follow --checkpoint`.
fn resume_and_finish(text: &str, ck: Option<FollowCheckpoint>) -> (MinedModel, usize) {
    let (mut miner, assembler_state, offset, line) = match ck {
        Some(ck) => (
            OnlineMiner::from_state(
                MinerOptions::default(),
                SnapshotPolicy::on_demand(),
                ck.miner,
            )
            .unwrap(),
            Some(ck.assembler),
            ck.source.byte_offset,
            ck.source.line as usize,
        ),
        None => (
            OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand()),
            None,
            0,
            0,
        ),
    };
    let tail = &text.as_bytes()[offset as usize..];
    let mut source = FlowmarkSource::with_origin(tail, RecoveryPolicy::Strict, offset, line);
    let driver = Driver { miner: &mut miner };
    let mut assembler = match assembler_state {
        Some(state) => CaseAssembler::resume(CONFIG, driver, state).unwrap(),
        None => CaseAssembler::new(CONFIG, driver),
    };
    source.pump(&mut assembler).unwrap();
    drop(assembler);
    let executions = miner.executions();
    (miner.snapshot().unwrap(), executions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash parity: killing the pipeline at any event boundary and
    /// resuming from the last checkpoint yields the same model as an
    /// uninterrupted run — same edges, same support counts, same
    /// execution total.
    #[test]
    fn crash_resume_equals_uninterrupted(
        log in arb_log(8),
        picks in proptest::collection::vec(0usize..64, 0..160),
        kill in 0usize..400,
        cadence in 1u64..40,
    ) {
        let text = interleaved_flowmark(&log, &picks);
        let total_events = text.lines().count();
        let kill_events = kill % (total_events + 1);

        let (expected, expected_execs) = run_uninterrupted(&text);
        let ck = run_until_crash(&text, cadence, kill_events);
        let (resumed, resumed_execs) = resume_and_finish(&text, ck);

        prop_assert_eq!(resumed_execs, expected_execs);
        prop_assert_eq!(support_triples(&resumed), support_triples(&expected));
    }
}

/// Builds a checkpoint with genuinely mid-stream state: open cases in
/// the assembler, partial counts in the miner, nonzero position.
fn mid_stream_checkpoint() -> FollowCheckpoint {
    let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
    let picks: Vec<usize> = (0..40).map(|i| i * 7 + 3).collect();
    let text = interleaved_flowmark(&log, &picks);
    let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
    let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
    let mut assembler = CaseAssembler::new(CONFIG, Driver { miner: &mut miner });
    for _ in 0..13 {
        let (event, at) = source.next_event().unwrap().unwrap();
        assembler.on_event(event, at).unwrap();
    }
    let ck = capture(&assembler, &source, text.len() as u64);
    assert!(
        !ck.assembler.open.is_empty(),
        "mid-stream capture should have open cases"
    );
    ck
}

#[test]
fn mid_stream_checkpoint_survives_disk_roundtrip() {
    let ck = mid_stream_checkpoint();
    let path = std::env::temp_dir().join(format!(
        "procmine-midstream-ckpt-{}.ckpt",
        std::process::id()
    ));
    ck.save(&path).unwrap();
    assert_eq!(FollowCheckpoint::load(&path).unwrap(), ck);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_checkpoint_writes_are_always_refused() {
    let ck = mid_stream_checkpoint();
    let path = std::env::temp_dir().join(format!("procmine-torn-ckpt-{}.ckpt", std::process::id()));
    ck.save(&path).unwrap();
    let full = std::fs::read(&path).unwrap();

    // A write torn at any byte (power loss mid-save without the atomic
    // rename) must be refused with a typed envelope error.
    let step = (full.len() / 97).max(1);
    for cut in (0..full.len()).step_by(step) {
        std::fs::write(&path, &full[..cut]).unwrap();
        match FollowCheckpoint::load(&path) {
            Err(CheckpointError::NotACheckpoint | CheckpointError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected a typed refusal, got {other:?}"),
        }
    }

    // Any single corrupted byte past the header fails the checksum;
    // header corruption is caught by the magic/version/length checks.
    for i in (0..full.len()).step_by(step) {
        let mut dirty = full.clone();
        dirty[i] ^= 0x40;
        std::fs::write(&path, &dirty).unwrap();
        assert!(
            FollowCheckpoint::load(&path).is_err(),
            "flip at byte {i} was accepted"
        );
    }
    let _ = std::fs::remove_file(&path);
}
