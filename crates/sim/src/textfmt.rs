//! A plain-text process-model definition format.
//!
//! Lets users define annotated activity graphs (Definition 1) in a
//! file, load them with the CLI (`procmine generate --model FILE`), and
//! round-trip models to text. The format is line-oriented:
//!
//! ```text
//! # Anything after '#' is a comment.
//! process OrderFulfillment
//!
//! activity Receive
//! activity Assess output uniform 0..1000, 0..100
//! activity Ship
//!
//! edge Receive -> Assess
//! edge Assess -> Ship if o[0] > 500 && !(o[1] <= 70)
//! ```
//!
//! Conditions use the expression grammar of [`Condition`]: comparisons
//! between output components `o[i]` and integer constants (or other
//! components), combined with `&&`, `||`, `!` and parentheses.

use crate::{CmpOp, Condition, ModelError, OutputSpec, ProcessModel};
use procmine_log::ActivityId;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from parsing a model file.
#[derive(Debug)]
pub enum TextFormatError {
    /// I/O failure while reading or writing.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed definition failed model validation.
    Model(ModelError),
}

impl fmt::Display for TextFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextFormatError::Io(e) => write!(f, "I/O error: {e}"),
            TextFormatError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TextFormatError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for TextFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextFormatError::Io(e) => Some(e),
            TextFormatError::Model(e) => Some(e),
            TextFormatError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TextFormatError {
    fn from(e: std::io::Error) -> Self {
        TextFormatError::Io(e)
    }
}

impl From<ModelError> for TextFormatError {
    fn from(e: ModelError) -> Self {
        TextFormatError::Model(e)
    }
}

/// Parses a model definition.
pub fn read_model<R: BufRead>(reader: R) -> Result<ProcessModel, TextFormatError> {
    let mut name: Option<String> = None;
    let mut builder = ProcessModel::builder("unnamed");
    let mut started = false;

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| TextFormatError::Parse {
            line: lineno,
            message,
        };

        if let Some(rest) = line.strip_prefix("process ") {
            if started {
                return Err(err("`process` must come before activities and edges".into()));
            }
            name = Some(rest.trim().to_string());
            builder = ProcessModel::builder(rest.trim());
        } else if let Some(rest) = line.strip_prefix("activity ") {
            started = true;
            let rest = rest.trim();
            let (act_name, output) = match rest.split_once(" output ") {
                None => (rest, OutputSpec::None),
                Some((n, spec)) => (n.trim(), parse_output(spec.trim()).map_err(&err)?),
            };
            if act_name.is_empty() || act_name.contains(char::is_whitespace) {
                return Err(err(format!("invalid activity name `{act_name}`")));
            }
            builder = builder.activity_with(act_name, output);
        } else if let Some(rest) = line.strip_prefix("edge ") {
            started = true;
            let rest = rest.trim();
            let (endpoints, condition) = match rest.split_once(" if ") {
                None => (rest, Condition::True),
                Some((e, cond)) => (e.trim(), parse_condition(cond.trim()).map_err(&err)?),
            };
            let (from, to) = endpoints
                .split_once("->")
                .ok_or_else(|| err(format!("edge `{endpoints}` needs `FROM -> TO`")))?;
            builder = builder.edge_if(from.trim(), to.trim(), condition);
        } else {
            return Err(err(format!(
                "expected `process`, `activity` or `edge`, got `{line}`"
            )));
        }
    }

    let _ = name; // the builder already carries it
    Ok(builder.build()?)
}

/// Writes a model definition that [`read_model`] parses back to an
/// equivalent model.
pub fn write_model<W: Write>(model: &ProcessModel, mut writer: W) -> Result<(), TextFormatError> {
    writeln!(writer, "process {}", model.name())?;
    writeln!(writer)?;
    for (id, name) in model.activities().iter() {
        match model.output_spec(id) {
            OutputSpec::None => writeln!(writer, "activity {name}")?,
            OutputSpec::Constant(v) => {
                let vals: Vec<String> = v.iter().map(i64::to_string).collect();
                writeln!(
                    writer,
                    "activity {name} output constant {}",
                    vals.join(", ")
                )?;
            }
            OutputSpec::Uniform(ranges) => {
                let vals: Vec<String> = ranges
                    .iter()
                    .map(|(lo, hi)| format!("{lo}..{hi}"))
                    .collect();
                writeln!(writer, "activity {name} output uniform {}", vals.join(", "))?;
            }
            OutputSpec::Choice(pool) => {
                let vals: Vec<String> = pool
                    .iter()
                    .map(|v| v.iter().map(i64::to_string).collect::<Vec<_>>().join(";"))
                    .collect();
                writeln!(writer, "activity {name} output choice {}", vals.join(" | "))?;
            }
        }
    }
    writeln!(writer)?;
    for (u, v) in model.graph().edges() {
        let from = model.graph().node(u);
        let to = model.graph().node(v);
        let cond = model
            .condition(
                ActivityId::from_index(u.index()),
                ActivityId::from_index(v.index()),
            )
            .expect("edge exists");
        match cond {
            Condition::True => writeln!(writer, "edge {from} -> {to}")?,
            other => writeln!(writer, "edge {from} -> {to} if {other}")?,
        }
    }
    Ok(())
}

fn parse_output(spec: &str) -> Result<OutputSpec, String> {
    if spec == "none" {
        return Ok(OutputSpec::None);
    }
    if let Some(rest) = spec.strip_prefix("constant ") {
        let vals: Result<Vec<i64>, _> = rest.split(',').map(|v| v.trim().parse::<i64>()).collect();
        return vals
            .map(OutputSpec::Constant)
            .map_err(|_| format!("invalid constant output `{rest}`"));
    }
    if let Some(rest) = spec.strip_prefix("choice ") {
        let pool: Result<Vec<Vec<i64>>, String> = rest
            .split('|')
            .map(|vecs| {
                vecs.trim()
                    .split(';')
                    .map(|v| {
                        v.trim()
                            .parse::<i64>()
                            .map_err(|_| format!("invalid choice value `{v}`"))
                    })
                    .collect()
            })
            .collect();
        let pool = pool?;
        if pool.is_empty() {
            return Err("choice output needs at least one vector".to_string());
        }
        return Ok(OutputSpec::Choice(pool));
    }
    if let Some(rest) = spec.strip_prefix("uniform ") {
        let ranges: Result<Vec<(i64, i64)>, String> = rest
            .split(',')
            .map(|r| {
                let r = r.trim();
                let (lo, hi) = r
                    .split_once("..")
                    .ok_or_else(|| format!("range `{r}` needs `lo..hi`"))?;
                let lo: i64 = lo
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad bound in `{r}`"))?;
                let hi: i64 = hi
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad bound in `{r}`"))?;
                if lo > hi {
                    return Err(format!("empty range `{r}`"));
                }
                Ok((lo, hi))
            })
            .collect();
        return ranges.map(OutputSpec::Uniform);
    }
    Err(format!(
        "unknown output spec `{spec}` (use none / constant / uniform)"
    ))
}

/// Parses a condition expression. Grammar (standard precedence,
/// `!` > `&&` > `||`):
///
/// ```text
/// expr  := and ('||' and)*
/// and   := unary ('&&' unary)*
/// unary := '!' unary | '(' expr ')' | 'true' | 'false' | cmp
/// cmp   := term op term          op := < <= > >= == !=
/// term  := 'o[' INT ']' | INT
/// ```
pub fn parse_condition(text: &str) -> Result<Condition, String> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let cond = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(format!(
            "unexpected trailing input at `{}`",
            parser.tokens[parser.pos]
        ));
    }
    Ok(cond)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Var(usize),
    Int(i64),
    Op(CmpOp),
    AndAnd,
    OrOr,
    Not,
    LParen,
    RParen,
    True,
    False,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Var(i) => write!(f, "o[{i}]"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Op(op) => write!(f, "{op}"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Not => write!(f, "!"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err("single `&` (use `&&`)".into());
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err("single `|` (use `||`)".into());
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Le));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Eq));
                    i += 2;
                } else {
                    return Err("single `=` (use `==`)".into());
                }
            }
            'o' if bytes.get(i + 1) == Some(&b'[') => {
                let close = text[i..]
                    .find(']')
                    .ok_or_else(|| "unterminated `o[`".to_string())?
                    + i;
                let idx: usize = text[i + 2..close]
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad output index `{}`", &text[i + 2..close]))?;
                tokens.push(Token::Var(idx));
                i = close + 1;
            }
            't' if text[i..].starts_with("true") => {
                tokens.push(Token::True);
                i += 4;
            }
            'f' if text[i..].starts_with("false") => {
                tokens.push(Token::False);
                i += 5;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = text[start..i]
                    .parse()
                    .map_err(|_| format!("bad integer `{}`", &text[start..i]))?;
                tokens.push(Token::Int(v));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Result<Condition, String> {
        let mut left = self.and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            let right = self.and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Condition, String> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Condition, String> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err("missing `)`".into());
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Token::True) => {
                self.pos += 1;
                Ok(Condition::True)
            }
            Some(Token::False) => {
                self.pos += 1;
                Ok(Condition::False)
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Condition, String> {
        let left = self.term()?;
        let op = match self.peek() {
            Some(&Token::Op(op)) => op,
            other => {
                return Err(format!(
                    "expected comparison operator, got {}",
                    other.map_or("end of input".to_string(), ToString::to_string)
                ))
            }
        };
        self.pos += 1;
        let right = self.term()?;
        Ok(match (left, right) {
            (Term::Var(l), Term::Const(v)) => Condition::Cmp {
                index: l,
                op,
                value: v,
            },
            (Term::Var(l), Term::Var(r)) => Condition::CmpVar {
                left: l,
                op,
                right: r,
            },
            (Term::Const(v), Term::Var(r)) => Condition::Cmp {
                index: r,
                op: flip(op),
                value: v,
            },
            (Term::Const(a), Term::Const(b)) => {
                if op.apply(a, b) {
                    Condition::True
                } else {
                    Condition::False
                }
            }
        })
    }

    fn term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some(&Token::Var(i)) => {
                self.pos += 1;
                Ok(Term::Var(i))
            }
            Some(&Token::Int(v)) => {
                self.pos += 1;
                Ok(Term::Const(v))
            }
            other => Err(format!(
                "expected `o[i]` or integer, got {}",
                other.map_or("end of input".to_string(), ToString::to_string)
            )),
        }
    }
}

enum Term {
    Var(usize),
    Const(i64),
}

/// Mirrors a comparison when its operands swap sides: `5 < o[0]`
/// becomes `o[0] > 5`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn parses_minimal_model() {
        let text = "\
process Demo
activity A
activity B
edge A -> B
";
        let model = read_model(text.as_bytes()).unwrap();
        assert_eq!(model.name(), "Demo");
        assert_eq!(model.activity_count(), 2);
        assert_eq!(model.edge_count(), 1);
    }

    #[test]
    fn parses_outputs_and_conditions() {
        let text = "\
# order process
process Orders

activity Receive
activity Assess output uniform 0..1000, 0..100
activity Approve
activity Auto
activity Ship

edge Receive -> Assess
edge Assess -> Approve if o[0] > 500
edge Assess -> Auto if o[0] <= 500 && !(o[1] > 70)
edge Assess -> Ship if false
edge Approve -> Ship
edge Auto -> Ship
";
        let model = read_model(text.as_bytes()).unwrap();
        let assess = model.activities().id("Assess").unwrap();
        let approve = model.activities().id("Approve").unwrap();
        assert_eq!(
            model.condition(assess, approve),
            Some(&Condition::cmp(0, CmpOp::Gt, 500))
        );
        assert_eq!(model.output_spec(assess).arity(), 2);
    }

    #[test]
    fn round_trips_presets() {
        for model in [
            presets::order_fulfillment(),
            presets::graph10(),
            presets::stress_sleep(),
        ] {
            let mut buf = Vec::new();
            write_model(&model, &mut buf).unwrap();
            let back = read_model(buf.as_slice()).unwrap();
            assert_eq!(back.name(), model.name());
            assert_eq!(back.activity_count(), model.activity_count());
            assert_eq!(back.edge_count(), model.edge_count());
            // Conditions survive the round trip.
            for (u, v) in model.graph().edges() {
                let a = ActivityId::from_index(u.index());
                let b = ActivityId::from_index(v.index());
                let orig = model.condition(a, b).unwrap();
                let from = model.graph().node(u);
                let to = model.graph().node(v);
                let ba = back.activities().id(from).unwrap();
                let bb = back.activities().id(to).unwrap();
                assert_eq!(back.condition(ba, bb).unwrap(), orig, "{from}->{to}");
            }
        }
    }

    #[test]
    fn condition_parser_grammar() {
        let c = parse_condition("o[0] > 5 && o[1] <= 3 || !(o[2] == 0)").unwrap();
        // Precedence: (a && b) || !(c).
        assert!(c.eval(&[6, 3, 0]));
        assert!(c.eval(&[0, 0, 1]));
        assert!(!c.eval(&[0, 0, 0]));

        assert_eq!(parse_condition("true").unwrap(), Condition::True);
        assert_eq!(parse_condition("3 < 5").unwrap(), Condition::True);
        assert_eq!(parse_condition("3 > 5").unwrap(), Condition::False);
        // Constant-on-the-left comparisons flip.
        assert_eq!(
            parse_condition("500 < o[0]").unwrap(),
            Condition::cmp(0, CmpOp::Gt, 500)
        );
        assert_eq!(
            parse_condition("o[1] != o[0]").unwrap(),
            Condition::CmpVar {
                left: 1,
                op: CmpOp::Ne,
                right: 0
            }
        );
        // Negative constants.
        assert_eq!(
            parse_condition("o[0] >= -3").unwrap(),
            Condition::cmp(0, CmpOp::Ge, -3)
        );
    }

    #[test]
    fn condition_parser_errors() {
        for bad in [
            "o[0] >",
            "&& true",
            "o[0] & 1",
            "o[0] = 1",
            "(o[0] > 1",
            "o[x] > 1",
            "o[0] > 1 extra",
            "",
            "5",
            "o[0]",
        ] {
            assert!(parse_condition(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn reader_errors_carry_line_numbers() {
        let text = "process P\nactivity A\nwat A -> B\n";
        match read_model(text.as_bytes()) {
            Err(TextFormatError::Parse { line: 3, .. }) => {}
            other => panic!("expected parse error on line 3, got {other:?}"),
        }

        let text = "process P\nactivity A\nedge A B\n";
        assert!(matches!(
            read_model(text.as_bytes()),
            Err(TextFormatError::Parse { line: 3, .. })
        ));

        // Model-level validation errors surface too (a two-node cycle
        // leaves the model with no source, reported as BadSources).
        let text = "process P\nactivity A\nactivity B\nedge A -> B\nedge B -> A\n";
        assert!(matches!(
            read_model(text.as_bytes()),
            Err(TextFormatError::Model(ModelError::BadSources { .. }))
        ));
        // A cycle reachable from a proper source reports NotAcyclic.
        let text =
            "process P\nactivity S\nactivity A\nactivity B\nactivity E\nedge S -> A\nedge A -> B\nedge B -> A\nedge B -> E\n";
        assert!(matches!(
            read_model(text.as_bytes()),
            Err(TextFormatError::Model(ModelError::NotAcyclic))
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nprocess P # trailing\n\nactivity A # the start\nactivity B\nedge A -> B # done\n";
        let model = read_model(text.as_bytes()).unwrap();
        assert_eq!(model.name(), "P");
        assert_eq!(model.edge_count(), 1);
    }
}
