//! Dominator analysis.
//!
//! In a process graph with initiating activity `s`, activity `d`
//! *dominates* activity `v` if every path from `s` to `v` passes through
//! `d`. Dominators of the terminating activity are the process'
//! *mandatory* activities — they occur in every complete execution the
//! model admits, which is exactly the question a process owner asks
//! ("can a case skip Approval?"). Implemented with the
//! Cooper–Harvey–Kennedy iterative algorithm over a reverse-post-order
//! numbering.

use crate::{BitSet, DiGraph, NodeId};

/// The dominator tree of a graph from a given root.
#[derive(Debug, Clone)]
pub struct Dominators {
    root: NodeId,
    /// Immediate dominator per node (`None` for the root and for nodes
    /// unreachable from it).
    idom: Vec<Option<NodeId>>,
}

impl Dominators {
    /// The root (initiating activity) the analysis ran from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate dominator of `v` (`None` for the root itself and
    /// for nodes unreachable from the root).
    pub fn immediate_dominator(&self, v: NodeId) -> Option<NodeId> {
        if v == self.root {
            None
        } else {
            self.idom[v.index()]
        }
    }

    /// `true` if `v` is reachable from the root (the root dominates it).
    pub fn is_reachable(&self, v: NodeId) -> bool {
        v == self.root || self.idom[v.index()].is_some()
    }

    /// All dominators of `v`, from its immediate dominator up to the
    /// root. Empty for the root and for unreachable nodes.
    pub fn dominators_of(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = v;
        while let Some(d) = self.immediate_dominator(cur) {
            out.push(d);
            cur = d;
        }
        out
    }

    /// `true` if `d` dominates `v` (every root→`v` path passes through
    /// `d`). Every node dominates itself.
    pub fn dominates(&self, d: NodeId, v: NodeId) -> bool {
        if d == v {
            return self.is_reachable(v);
        }
        let mut cur = v;
        while let Some(i) = self.immediate_dominator(cur) {
            if i == d {
                return true;
            }
            cur = i;
        }
        false
    }
}

/// Computes the dominator tree of `g` from `root` (Cooper–Harvey–
/// Kennedy). O(V·E) worst case, near-linear on process-sized graphs.
pub fn dominators<N>(g: &DiGraph<N>, root: NodeId) -> Dominators {
    let n = g.node_count();
    // Reverse post-order (DFS finish order reversed), root first.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut visited = BitSet::new(n);
    // Iterative post-order DFS.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    visited.insert(root.index());
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let succs = g.successors(v);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if visited.insert(s.index()) {
                stack.push((s, 0));
            }
        } else {
            order.push(v);
            stack.pop();
        }
    }
    order.reverse();

    let mut rpo_number = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rpo_number[v.index()] = i;
    }

    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[root.index()] = Some(root);

    // Cooper–Harvey–Kennedy invariant: intersect is only called on
    // nodes already processed this pass, whose idom entries are set.
    #[allow(clippy::expect_used)]
    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while rpo_number[a.index()] > rpo_number[b.index()] {
                a = idom[a.index()].expect("processed node has idom");
            }
            while rpo_number[b.index()] > rpo_number[a.index()] {
                b = idom[b.index()].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &v in order.iter().skip(1) {
            // First processed predecessor.
            let mut new_idom: Option<NodeId> = None;
            for &p in g.predecessors(v) {
                if idom[p.index()].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[v.index()] != Some(ni) {
                    idom[v.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }

    // Normalize: the root's self-idom becomes None via accessor; keep
    // internal encoding, but unreachable nodes stay None.
    let idom = idom
        .iter()
        .enumerate()
        .map(|(i, &d)| if i == root.index() { None } else { d })
        .collect();
    Dominators { root, idom }
}

/// The mandatory activities of a single-source/single-sink process
/// graph: the nodes dominating `sink` (plus `sink` itself), in
/// root-to-sink order. These occur on every source→sink route.
pub fn mandatory_activities<N>(g: &DiGraph<N>, source: NodeId, sink: NodeId) -> Vec<NodeId> {
    let dom = dominators(g, source);
    if !dom.is_reachable(sink) {
        return Vec::new();
    }
    let mut chain = dom.dominators_of(sink);
    chain.reverse(); // root first
    chain.push(sink);
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_dominators() {
        // 0→1→3, 0→2→3: 1 and 2 do not dominate 3; 0 dominates all.
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dom = dominators(&g, NodeId::new(0));
        assert_eq!(
            dom.immediate_dominator(NodeId::new(3)),
            Some(NodeId::new(0))
        );
        assert!(dom.dominates(NodeId::new(0), NodeId::new(3)));
        assert!(!dom.dominates(NodeId::new(1), NodeId::new(3)));
        assert!(
            dom.dominates(NodeId::new(3), NodeId::new(3)),
            "self-domination"
        );
        assert_eq!(dom.immediate_dominator(NodeId::new(0)), None);
    }

    #[test]
    fn chain_everything_mandatory() {
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 2), (2, 3)]);
        let mandatory = mandatory_activities(&g, NodeId::new(0), NodeId::new(3));
        assert_eq!(
            mandatory,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn branch_and_join_mandatory_set() {
        // 0→{1,2}→3→{4,5}→6: 0, 3, 6 are mandatory.
        let g = DiGraph::from_edges(
            vec![(); 7],
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let mandatory = mandatory_activities(&g, NodeId::new(0), NodeId::new(6));
        assert_eq!(
            mandatory,
            vec![NodeId::new(0), NodeId::new(3), NodeId::new(6)]
        );
    }

    #[test]
    fn unreachable_nodes_have_no_dominators() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1)]);
        let dom = dominators(&g, NodeId::new(0));
        assert!(!dom.is_reachable(NodeId::new(2)));
        assert!(dom.dominators_of(NodeId::new(2)).is_empty());
        assert!(mandatory_activities(&g, NodeId::new(0), NodeId::new(2)).is_empty());
    }

    #[test]
    fn cyclic_graph_dominators() {
        // 0→1⇄2→3: both 1 and 0 dominate 3 (the cycle must be entered
        // through 1).
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dom = dominators(&g, NodeId::new(0));
        assert!(dom.dominates(NodeId::new(1), NodeId::new(3)));
        assert!(dom.dominates(NodeId::new(2), NodeId::new(3)));
        assert_eq!(
            dom.immediate_dominator(NodeId::new(2)),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn shortcut_breaks_domination() {
        // 0→1→2 plus shortcut 0→2: 1 no longer dominates 2.
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let dom = dominators(&g, NodeId::new(0));
        assert!(!dom.dominates(NodeId::new(1), NodeId::new(2)));
        assert_eq!(
            mandatory_activities(&g, NodeId::new(0), NodeId::new(2)),
            vec![NodeId::new(0), NodeId::new(2)]
        );
    }

    #[test]
    fn graph10_mandatory_activities() {
        // From the Figure 7 preset shape: A (source), B? no — B is
        // bypassed by H→E; E and J are mandatory (all paths join at E).
        let edges = [
            (0usize, 3usize),
            (0, 6),
            (3, 1),
            (6, 7),
            (6, 2),
            (2, 5),
            (5, 8),
            (8, 1),
            (7, 1),
            (7, 4),
            (1, 4),
            (4, 9),
        ];
        let g = DiGraph::from_edges(vec![(); 10], edges);
        let mandatory = mandatory_activities(&g, NodeId::new(0), NodeId::new(9));
        assert_eq!(
            mandatory,
            vec![NodeId::new(0), NodeId::new(4), NodeId::new(9)]
        );
    }
}
