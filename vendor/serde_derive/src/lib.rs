//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in. No `syn`/`quote` (the registry is offline):
//! the item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is emitted as source text.
//!
//! Supported shapes (everything this workspace derives on):
//! named structs, newtype/tuple structs, generic structs, and enums with
//! unit/newtype/tuple/struct variants (externally tagged). Supported
//! attributes: `#[serde(skip)]` and
//! `#[serde(skip_serializing_if = "path")]` on named struct fields.
//! Other attributes (doc comments, `#[default]`, …) are ignored.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    skip_serializing_if: Option<String>,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

fn ident_str(t: &TokenTree) -> String {
    match t {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected identifier, found `{other}`"),
    }
}

fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Parses one `#[...]` bracket group, recording the serde attributes we
/// understand.
fn scan_attr(attr: &Group, skip: &mut bool, skip_if: &mut Option<String>) {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    if toks.len() != 2 {
        return;
    }
    if ident_opt(&toks[0]).as_deref() != Some("serde") {
        return;
    }
    let TokenTree::Group(args) = &toks[1] else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match ident_opt(&args[i]).as_deref() {
            Some("skip") => {
                *skip = true;
                i += 1;
            }
            Some("skip_serializing_if") => {
                // skip_serializing_if = "path::to::pred"
                i += 1; // '='
                i += 1; // literal
                if let Some(TokenTree::Literal(lit)) = args.get(i - 1) {
                    let s = lit.to_string();
                    *skip_if = Some(s.trim_matches('"').to_string());
                }
            }
            _ => i += 1,
        }
        // step over a separating comma if present
        if is_punct(args.get(i), ',') {
            i += 1;
        }
    }
}

fn ident_opt(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances `i` past attributes and a visibility modifier, scanning
/// serde attributes into the output slots.
fn skip_attrs_and_vis(
    toks: &[TokenTree],
    i: &mut usize,
    skip: &mut bool,
    skip_if: &mut Option<String>,
) {
    loop {
        if is_punct(toks.get(*i), '#') {
            if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                scan_attr(g, skip, skip_if);
            }
            *i += 2;
        } else if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        } else {
            return;
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(g: &Group) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut since_comma = false;
    for t in g.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                since_comma = false;
                continue;
            }
            _ => {}
        }
        since_comma = true;
    }
    if since_comma {
        commas + 1
    } else {
        commas
    }
}

/// Parses a `{ name: Type, ... }` field list.
fn parse_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        let mut skip_if = None;
        skip_attrs_and_vis(&toks, &mut i, &mut skip, &mut skip_if);
        if i >= toks.len() {
            break;
        }
        let name = ident_str(&toks[i]);
        i += 1; // name
        i += 1; // ':'
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            skip_serializing_if: skip_if,
        });
    }
    fields
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        let mut skip_if = None;
        skip_attrs_and_vis(&toks, &mut i, &mut skip, &mut skip_if);
        if i >= toks.len() {
            break;
        }
        let name = ident_str(&toks[i]);
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_fields(body))
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(body))
            }
            _ => VariantFields::Unit,
        };
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let (mut skip, mut skip_if) = (false, None);
    skip_attrs_and_vis(&toks, &mut i, &mut skip, &mut skip_if);
    let kw = ident_str(&toks[i]);
    i += 1;
    let name = ident_str(&toks[i]);
    i += 1;
    let mut generics = Vec::new();
    if is_punct(toks.get(i), '<') {
        i += 1;
        let mut depth = 1i32;
        let mut expect_param = true;
        while depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_fields(body))
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(body))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(body))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics,
        kind,
    }
}

fn generics_strings(params: &[String], bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g = format!(
        "<{}>",
        params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let ty_g = format!("<{}>", params.join(", "));
    (impl_g, ty_g)
}

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let mut s = String::from("let mut __fields: Vec<(serde::Value, serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let push = format!(
            "__fields.push((serde::Value::Str(\"{n}\".to_string()), \
             serde::Serialize::to_value(&{p}{n})));",
            n = f.name,
            p = access_prefix,
        );
        match &f.skip_serializing_if {
            Some(pred) => {
                s.push_str(&format!(
                    "if !{pred}(&{p}{n}) {{ {push} }}\n",
                    p = access_prefix,
                    n = f.name
                ));
            }
            None => {
                s.push_str(&push);
                s.push('\n');
            }
        }
    }
    s.push_str("serde::Value::Map(__fields)");
    s
}

fn named_fields_from_map(ty_path: &str, fields: &[Field]) -> String {
    let mut s = format!("Ok({ty_path} {{\n");
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: std::default::Default::default(),\n", f.name));
        } else {
            s.push_str(&format!(
                "{n}: serde::__field(&mut __m, \"{n}\")?,\n",
                n = f.name
            ));
        }
    }
    s.push_str("})");
    s
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let (impl_g, ty_g) = generics_strings(&input.generics, "serde::Serialize");
    let body = match &input.kind {
        Kind::NamedStruct(fields) => named_fields_to_map(fields, "self."),
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => s.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::Value::Map(vec![(\
                         serde::Value::Str(\"{vn}\".to_string()), \
                         serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Map(vec![(\
                             serde::Value::Str(\"{vn}\".to_string()), \
                             serde::Value::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __fields: Vec<(serde::Value, serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((serde::Value::Str(\"{n}\".to_string()), \
                                 serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} \
                             serde::Value::Map(vec![(serde::Value::Str(\"{vn}\".to_string()), \
                             serde::Value::Map(__fields))]) }},\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl{impl_g} serde::Serialize for {name}{ty_g} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse()
        .expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let (impl_g, ty_g) = generics_strings(&input.generics, "serde::Deserialize");
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let build = named_fields_from_map(name, fields);
            format!(
                "match __v {{\n\
                     serde::Value::Map(mut __m) => {{ let _ = &mut __m; {build} }}\n\
                     __other => Err(serde::DeError::expected(\"map\", &__other)),\n\
                 }}"
            )
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| "serde::Deserialize::from_value(__it.next().unwrap())?".to_string())
                .collect();
            format!(
                "match __v {{\n\
                     serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                         let mut __it = __items.into_iter();\n\
                         Ok({name}({items}))\n\
                     }}\n\
                     __other => Err(serde::DeError::expected(\"sequence of length {n}\", &__other)),\n\
                 }}",
                items = items.join(", "),
            )
        }
        Kind::UnitStruct => format!(
            "match __v {{\n\
                 serde::Value::Null => Ok({name}),\n\
                 __other => Err(serde::DeError::expected(\"null\", &__other)),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            let mut has_payload = false;
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantFields::Tuple(1) => {
                        has_payload = true;
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             serde::Deserialize::from_value(__content)?)),\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        has_payload = true;
                        let items: Vec<String> = (0..*n)
                            .map(|_| {
                                "serde::Deserialize::from_value(__it.next().unwrap())?".to_string()
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __content {{\n\
                                 serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                                     let mut __it = __items.into_iter();\n\
                                     Ok({name}::{vn}({items}))\n\
                                 }}\n\
                                 __other => Err(serde::DeError::expected(\
                                     \"sequence of length {n}\", &__other)),\n\
                             }},\n",
                            items = items.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        has_payload = true;
                        let build = named_fields_from_map(&format!("{name}::{vn}"), fields);
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __content {{\n\
                                 serde::Value::Map(mut __m) => {{ let _ = &mut __m; {build} }}\n\
                                 __other => Err(serde::DeError::expected(\"map\", &__other)),\n\
                             }},\n"
                        ));
                    }
                }
            }
            let map_arm = if has_payload {
                format!(
                    "serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __content) = __m.into_iter().next().unwrap();\n\
                         let __tag = match __k {{\n\
                             serde::Value::Str(__s) => __s,\n\
                             __other => return Err(serde::DeError::expected(\
                                 \"string variant tag\", &__other)),\n\
                         }};\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             _ => Err(serde::DeError::unknown_variant(&__tag, \"{name}\")),\n\
                         }}\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            format!(
                "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         _ => Err(serde::DeError::unknown_variant(&__s, \"{name}\")),\n\
                     }},\n\
                     {map_arm}\
                     __other => Err(serde::DeError::expected(\"enum value\", &__other)),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl{impl_g} serde::Deserialize for {name}{ty_g} {{\n\
             fn from_value(__v: serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
