//! `procmine` — command-line interface to the workflow process miner.
//!
//! ```text
//! procmine generate --preset graph10 --executions 100 -o log.fm
//! procmine mine log.fm --dot model.dot --check
//! procmine conditions log.fm
//! procmine info log.fm
//! ```
//!
//! See `procmine help` for the full usage text.

mod args;
mod commands;
mod metrics;
mod output;

use crate::output::errln;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // A broken pipe is normal pipeline teardown (`procmine … |
            // head`): exit with the conventional SIGPIPE status, no
            // error banner.
            if output::error_is_broken_pipe(e.as_ref()) {
                return ExitCode::from(output::SIGPIPE_EXIT);
            }
            errln!("procmine: {e}");
            ExitCode::FAILURE
        }
    }
}
