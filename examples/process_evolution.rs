//! Process evolution with the incremental miner.
//!
//! The paper motivates mining as a way "to allow the evolution of the
//! current process model into future versions of the model by
//! incorporating feedback from successful process executions". This
//! example streams executions into an [`IncrementalMiner`] in three
//! eras of a purchasing process and shows the model evolving:
//!
//! 1. a strict sequential approval chain;
//! 2. a reorganization makes two checks parallel;
//! 3. a new express path bypasses approval for small orders.
//!
//! ```sh
//! cargo run --example process_evolution
//! ```

use procmine::mine::metrics::compare_dependencies;
use procmine::mine::{IncrementalMiner, MinerOptions};

fn show(title: &str, miner: &IncrementalMiner) -> procmine::mine::MinedModel {
    let model = miner.model().expect("model available");
    println!("{title} ({} executions absorbed):", miner.executions());
    for (u, v) in model.edges_named() {
        println!("  {u} -> {v}");
    }
    println!();
    model
}

fn main() {
    let mut miner = IncrementalMiner::new(MinerOptions::default());

    // Era 1: Request → LegalCheck → BudgetCheck → Approve → Order.
    for _ in 0..20 {
        miner
            .absorb_sequence(&["Request", "LegalCheck", "BudgetCheck", "Approve", "Order"])
            .unwrap();
    }
    let era1 = show("Era 1 — sequential chain", &miner);
    assert!(era1.has_edge("LegalCheck", "BudgetCheck"));

    // Era 2: the two checks now run in parallel — both interleavings
    // appear in the feed.
    for i in 0..20 {
        let seq: &[&str] = if i % 2 == 0 {
            &["Request", "LegalCheck", "BudgetCheck", "Approve", "Order"]
        } else {
            &["Request", "BudgetCheck", "LegalCheck", "Approve", "Order"]
        };
        miner.absorb_sequence(seq).unwrap();
    }
    let era2 = show("Era 2 — checks run in parallel", &miner);
    assert!(!era2.has_edge("LegalCheck", "BudgetCheck"));
    assert!(!era2.has_edge("BudgetCheck", "LegalCheck"));

    // Era 3: small orders skip the checks entirely via an express path.
    for _ in 0..10 {
        miner
            .absorb_sequence(&["Request", "ExpressOk", "Order"])
            .unwrap();
    }
    let era3 = show("Era 3 — express path added", &miner);
    assert!(era3.has_edge("Request", "ExpressOk"));
    assert!(era3.has_edge("ExpressOk", "Order"));

    // Dependency-level diff between eras — the view a process owner
    // would review before updating the official model.
    let diff = compare_dependencies(&era1, &era2).expect("same activity set");
    println!("dependency changes era 1 -> era 2:");
    for (u, v) in &diff.added {
        println!("  + {u} must now precede {v}");
    }
    for (u, v) in &diff.removed {
        println!("  - {u} no longer precedes {v}");
    }

    // Era 3 introduced a new activity, so a dependency diff is not
    // defined over the old universe — the comparison reports exactly
    // which activities are new.
    match compare_dependencies(&era2, &era3) {
        Err(e) => println!("\nera 2 -> era 3: {e}"),
        Ok(_) => unreachable!("ExpressOk is new in era 3"),
    }
}
