//! Resource guards for the miners.
//!
//! The mining algorithms are polynomial but not cheap: Algorithm 2 is
//! O(n²) per execution and Algorithm 3 multiplies the vertex space by
//! the repeat count. A hostile (or merely corrupt) log can therefore
//! make a miner run for a very long time while staying perfectly
//! parseable. [`Limits`] bounds a mining run along four axes — total
//! events, distinct activities, events per execution, and wall-clock
//! time — turning "the process hangs" into a typed
//! [`MineError::LimitExceeded`].
//!
//! Size limits are enforced at miner entry (one pass over the log
//! before any quadratic work starts). The deadline is re-checked inside
//! every per-execution loop, so a run over `m` executions exceeds its
//! deadline by at most the cost of one execution — which the size
//! limits in turn bound. The graph post-processing passes (the special
//! miner's global transitive reduction and the SCC dissolution of the
//! pruning step) re-check it too, as a [`procmine_graph::Budget`], so a
//! pathological dense graph cannot hide from the deadline inside a
//! single graph call.

use crate::MineError;
use std::time::{Duration, Instant};

/// Which resource limit a mining run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Total activity instances across the log ([`Limits::max_events`]).
    Events,
    /// Distinct activities ([`Limits::max_activities`]).
    Activities,
    /// Activity instances in a single execution
    /// ([`Limits::max_execution_len`]).
    ExecutionLength,
    /// Wall-clock deadline ([`Limits::deadline`]).
    Deadline,
}

impl std::fmt::Display for LimitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LimitKind::Events => "events",
            LimitKind::Activities => "activities",
            LimitKind::ExecutionLength => "execution-length",
            LimitKind::Deadline => "deadline",
        })
    }
}

/// Resource bounds for a mining run. Every field defaults to `None`
/// (unlimited), so `Limits::default()` preserves the unguarded
/// behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum total activity instances across the whole log.
    pub max_events: Option<u64>,
    /// Maximum number of distinct activities.
    pub max_activities: Option<usize>,
    /// Maximum activity instances in any single execution.
    pub max_execution_len: Option<usize>,
    /// Wall-clock budget for the mining run, measured from miner entry.
    pub deadline: Option<Duration>,
}

impl Limits {
    /// Checks the size limits against a whole log — run once at miner
    /// entry, before any quadratic work.
    pub fn check_log(&self, log: &procmine_log::WorkflowLog) -> Result<(), MineError> {
        if let Some(max) = self.max_activities {
            let n = log.activities().len();
            if n > max {
                return Err(MineError::LimitExceeded {
                    kind: LimitKind::Activities,
                    details: format!("log has {n} distinct activities (limit {max})"),
                });
            }
        }
        let mut events: u64 = 0;
        for exec in log.executions() {
            let len = exec.len();
            if let Some(max) = self.max_execution_len {
                if len > max {
                    return Err(MineError::LimitExceeded {
                        kind: LimitKind::ExecutionLength,
                        details: format!(
                            "execution `{}` has {len} activity instances (limit {max})",
                            exec.id
                        ),
                    });
                }
            }
            events += len as u64;
            if let Some(max) = self.max_events {
                if events > max {
                    return Err(MineError::LimitExceeded {
                        kind: LimitKind::Events,
                        details: format!("log exceeds {max} total activity instances"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Starts the wall clock: the returned [`Deadline`] is re-checked
    /// inside the per-execution mining loops.
    pub(crate) fn start_clock(&self) -> Deadline {
        Deadline(self.deadline.map(|d| Instant::now() + d))
    }
}

/// A started wall-clock deadline, threaded through the mining loops.
/// `Deadline(None)` (no limit) checks without touching the clock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never fires.
    #[cfg(test)]
    pub(crate) fn unlimited() -> Self {
        Deadline(None)
    }

    /// A deadline that has effectively already passed (it expires the
    /// instant it is created), for deterministic tests of the budgeted
    /// graph phases.
    #[cfg(test)]
    pub(crate) fn already_expired() -> Self {
        Deadline(Some(Instant::now()))
    }

    /// The earlier of two deadlines: a [`MineSession`](crate::MineSession)
    /// deadline combined with the per-run clock started from
    /// [`Limits::deadline`] — whichever fires first wins.
    pub(crate) fn earliest(self, other: Deadline) -> Deadline {
        Deadline(match (self.0, other.0) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        })
    }

    /// The same deadline as a [`procmine_graph::Budget`], for the
    /// budgeted graph algorithms (transitive reduction, Tarjan SCC).
    pub(crate) fn budget(self) -> procmine_graph::Budget {
        match self.0 {
            Some(t) => procmine_graph::Budget::with_deadline(t),
            None => procmine_graph::Budget::unlimited(),
        }
    }

    /// The typed error the graph algorithms' budget exhaustion maps to.
    pub(crate) fn exceeded_in(context: &str) -> MineError {
        MineError::LimitExceeded {
            kind: LimitKind::Deadline,
            details: format!("wall-clock deadline passed during {context}"),
        }
    }

    /// Errors with [`MineError::LimitExceeded`] once the deadline has
    /// passed. Free when no deadline is set.
    #[inline]
    pub(crate) fn check(self) -> Result<(), MineError> {
        match self.0 {
            None => Ok(()),
            Some(t) => {
                if Instant::now() <= t {
                    Ok(())
                } else {
                    Err(MineError::LimitExceeded {
                        kind: LimitKind::Deadline,
                        details: "wall-clock deadline passed".to_string(),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::WorkflowLog;

    #[test]
    fn default_limits_pass_everything() {
        let log = WorkflowLog::from_strings(["ABC", "AC"]).unwrap();
        assert!(Limits::default().check_log(&log).is_ok());
        assert!(Deadline::unlimited().check().is_ok());
    }

    #[test]
    fn activity_limit_enforced() {
        let log = WorkflowLog::from_strings(["ABC"]).unwrap();
        let limits = Limits {
            max_activities: Some(2),
            ..Limits::default()
        };
        assert!(matches!(
            limits.check_log(&log),
            Err(MineError::LimitExceeded {
                kind: LimitKind::Activities,
                ..
            })
        ));
    }

    #[test]
    fn event_limit_counts_across_executions() {
        let log = WorkflowLog::from_strings(["ABC", "ABC"]).unwrap();
        let limits = Limits {
            max_events: Some(5),
            ..Limits::default()
        };
        assert!(matches!(
            limits.check_log(&log),
            Err(MineError::LimitExceeded {
                kind: LimitKind::Events,
                ..
            })
        ));
        let roomy = Limits {
            max_events: Some(6),
            ..Limits::default()
        };
        assert!(roomy.check_log(&log).is_ok());
    }

    #[test]
    fn execution_length_limit_names_the_execution() {
        let log = WorkflowLog::from_strings(["AB", "ABCD"]).unwrap();
        let limits = Limits {
            max_execution_len: Some(3),
            ..Limits::default()
        };
        match limits.check_log(&log) {
            Err(MineError::LimitExceeded {
                kind: LimitKind::ExecutionLength,
                details,
            }) => assert!(details.contains("exec-1"), "details: {details}"),
            other => panic!("expected ExecutionLength, got {other:?}"),
        }
    }

    #[test]
    fn earliest_prefers_the_sooner_deadline() {
        assert!(Deadline::unlimited()
            .earliest(Deadline::unlimited())
            .check()
            .is_ok());
        // An expired deadline dominates an unlimited one, whichever side
        // it sits on.
        let soon = Deadline::already_expired();
        let late = Deadline(Some(Instant::now() + Duration::from_secs(3600)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(soon.earliest(Deadline::unlimited()).check().is_err());
        assert!(Deadline::unlimited().earliest(soon).check().is_err());
        // Between two set deadlines the sooner one wins.
        assert!(late.earliest(soon).check().is_err());
        assert!(late.earliest(late).check().is_ok());
    }

    #[test]
    fn expired_deadline_fires() {
        let limits = Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        };
        let clock = limits.start_clock();
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            clock.check(),
            Err(MineError::LimitExceeded {
                kind: LimitKind::Deadline,
                ..
            })
        ));
    }
}
