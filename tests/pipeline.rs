//! End-to-end integration: simulate → serialize → parse → mine → verify
//! → learn conditions, across the workspace crates through the facade.

use procmine::classify::{learn_edge_conditions, TreeConfig};
use procmine::log::codec::{flowmark, jsonl};
use procmine::mine::conformance::check_conformance;
use procmine::mine::metrics::compare_models;
use procmine::mine::{mine_auto, Algorithm, MinedModel, MinerOptions};
use procmine::sim::{engine, presets, walk};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_on_graph10() {
    let process = presets::graph10();
    let mut rng = StdRng::seed_from_u64(42);
    let log = walk::random_walk_log(&process, 300, &mut rng).unwrap();

    // Serialize through the Flowmark codec and parse back.
    let mut buf = Vec::new();
    flowmark::write_log(&log, &mut buf).unwrap();
    let parsed = flowmark::read_log(buf.as_slice()).unwrap();
    assert_eq!(parsed.display_sequences(), log.display_sequences());

    // Mine and verify.
    let (mined, algorithm) = mine_auto(&parsed, &MinerOptions::default()).unwrap();
    assert_eq!(algorithm, Algorithm::GeneralDag);
    let report = check_conformance(&mined, &parsed);
    assert!(report.is_conformal(), "{report:?}");

    // Compare with ground truth: at 300 executions recovery should be
    // at least closure-faithful and near-complete.
    let reference = MinedModel::from_graph(process.graph_clone());
    let recovery = compare_models(&reference, &mined).unwrap();
    assert!(recovery.diff.recall() >= 0.9, "{:?}", recovery.diff);
}

#[test]
fn full_pipeline_with_conditions() {
    let process = presets::order_fulfillment();
    let mut rng = StdRng::seed_from_u64(7);
    let log = engine::generate_log(&process, 300, &mut rng).unwrap();

    // JSON-lines keeps the outputs; round-trip and mine.
    let mut buf = Vec::new();
    jsonl::write_log(&log, &mut buf).unwrap();
    let parsed = jsonl::read_log(buf.as_slice()).unwrap();

    let (mined, _) = mine_auto(&parsed, &MinerOptions::default()).unwrap();
    assert!(check_conformance(&mined, &parsed).is_conformal());

    let learned = learn_edge_conditions(&mined, &parsed, &TreeConfig::default());
    let approval = learned
        .iter()
        .find(|c| c.from == "Assess" && c.to == "ManagerApproval")
        .expect("edge mined and condition learned");
    assert!(approval.train_accuracy > 0.95);
    assert!(approval.predict(&[900, 0]) && !approval.predict(&[10, 0]));
}

#[test]
fn all_flowmark_presets_recover_at_paper_scale() {
    // Table 3's claim: "In every case, our algorithm was able to
    // recover the underlying process." Recovery = identical edge set,
    // or identical transitive closure — by the paper's Lemma 2 two
    // graphs with the same closure encode the same dependency relation.
    // Allow a few seeds since small logs (Local_Swap has only 24
    // executions) are right at the recovery boundary.
    for (process, m) in presets::flowmark_models() {
        let reference = MinedModel::from_graph(process.graph_clone());
        let recovered = (0..3).any(|seed| {
            let mut rng = StdRng::seed_from_u64(1998 + seed);
            let log = walk::random_walk_log(&process, m, &mut rng).unwrap();
            let (mined, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
            let r = compare_models(&reference, &mined).unwrap();
            r.exact || r.closure_equal
        });
        assert!(recovered, "{} not recovered at m={m}", process.name());
    }
}

#[test]
fn mined_models_survive_json_round_trip() {
    let process = presets::pend_block();
    let mut rng = StdRng::seed_from_u64(5);
    let log = walk::random_walk_log(&process, 121, &mut rng).unwrap();
    let (mined, _) = mine_auto(&log, &MinerOptions::default()).unwrap();

    let json = serde_json::to_string(&mined).unwrap();
    let back: MinedModel = serde_json::from_str(&json).unwrap();
    assert_eq!(back.edges_named(), mined.edges_named());
    assert!(check_conformance(&back, &log).is_conformal());
}

#[test]
fn engine_logs_are_consistent_with_their_model() {
    // Every execution the engine produces must be consistent with the
    // generating graph (Definition 6) — the engine is the ground truth
    // oracle for the conformance checker.
    use procmine::mine::conformance::check_execution;
    for process in [
        presets::graph10(),
        presets::order_fulfillment(),
        presets::stress_sleep(),
    ] {
        let reference = MinedModel::from_graph(process.graph_clone());
        let mut rng = StdRng::seed_from_u64(31);
        let log = engine::generate_log(&process, 100, &mut rng).unwrap();
        for exec in log.executions() {
            let violations = check_execution(&reference, exec);
            assert!(
                violations.is_empty(),
                "{}: execution {} violates {:?}",
                process.name(),
                exec.display(log.activities()),
                violations
            );
        }
    }
}

#[test]
fn walk_logs_are_consistent_with_their_model() {
    use procmine::mine::conformance::check_execution;
    for process in [presets::graph10(), presets::uwi_pilot()] {
        let reference = MinedModel::from_graph(process.graph_clone());
        let mut rng = StdRng::seed_from_u64(77);
        let log = walk::random_walk_log(&process, 200, &mut rng).unwrap();
        for exec in log.executions() {
            let violations = check_execution(&reference, exec);
            assert!(
                violations.is_empty(),
                "{}: {} -> {:?}",
                process.name(),
                exec.display(log.activities()),
                violations
            );
        }
    }
}
