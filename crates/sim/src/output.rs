//! Output-vector generators for activities (`o_P : V_P → N^k`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How an activity produces its output vector when executed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputSpec {
    /// No output (the null vector of Definition 2); conditions on
    /// outgoing edges read zeros.
    #[default]
    None,
    /// A fixed vector.
    Constant(Vec<i64>),
    /// Each component drawn uniformly from an inclusive range.
    Uniform(Vec<(i64, i64)>),
    /// A vector drawn uniformly from an empirical pool — used when
    /// executing *mined* models, bootstrapping from the outputs observed
    /// in the log. Must be non-empty.
    Choice(Vec<Vec<i64>>),
}

impl OutputSpec {
    /// Number of components produced (for [`OutputSpec::Choice`], the
    /// widest pooled vector).
    pub fn arity(&self) -> usize {
        match self {
            OutputSpec::None => 0,
            OutputSpec::Constant(v) => v.len(),
            OutputSpec::Uniform(ranges) => ranges.len(),
            OutputSpec::Choice(pool) => pool.iter().map(Vec::len).max().unwrap_or(0),
        }
    }

    /// Samples an output vector. Returns `None` for [`OutputSpec::None`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<i64>> {
        match self {
            OutputSpec::None => None,
            OutputSpec::Constant(v) => Some(v.clone()),
            OutputSpec::Uniform(ranges) => Some(
                ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        assert!(lo <= hi, "invalid range {lo}..={hi}");
                        rng.gen_range(lo..=hi)
                    })
                    .collect(),
            ),
            OutputSpec::Choice(pool) => {
                assert!(!pool.is_empty(), "empty Choice pool");
                Some(pool[rng.gen_range(0..pool.len())].clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arities() {
        assert_eq!(OutputSpec::None.arity(), 0);
        assert_eq!(OutputSpec::Constant(vec![1, 2, 3]).arity(), 3);
        assert_eq!(OutputSpec::Uniform(vec![(0, 9), (5, 5)]).arity(), 2);
    }

    #[test]
    fn uniform_stays_in_range() {
        let spec = OutputSpec::Uniform(vec![(0, 9), (-5, 5)]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = spec.sample(&mut rng).unwrap();
            assert!((0..=9).contains(&v[0]));
            assert!((-5..=5).contains(&v[1]));
        }
    }

    #[test]
    fn constant_and_none() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            OutputSpec::Constant(vec![4]).sample(&mut rng),
            Some(vec![4])
        );
        assert_eq!(OutputSpec::None.sample(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let spec = OutputSpec::Uniform(vec![(5, 0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = spec.sample(&mut rng);
    }
}
