//! Integration coverage for the extension surface: XES interchange,
//! model definition files, gateway analysis, incremental + parallel
//! mining, route analytics, fitness, and log operations — all through
//! the public facade.

use procmine::graph::paths;
use procmine::log::codec::xes;
use procmine::log::WorkflowLog;
use procmine::mine::conformance::fitness;
use procmine::mine::splits::{analyze_gateways, GatewayKind};
use procmine::mine::{
    mine_auto, mine_general_dag, mine_general_dag_parallel, IncrementalMiner, MinerOptions,
};
use procmine::sim::{engine, presets, textfmt, walk};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn xes_export_import_mine() {
    let process = presets::order_fulfillment();
    let mut rng = StdRng::seed_from_u64(21);
    let cfg = engine::EngineConfig {
        duration: engine::DurationSpec::Uniform(100, 500),
        agents: 3,
    };
    let log = engine::generate_log_with(&process, 150, &cfg, &mut rng).unwrap();

    let mut buf = Vec::new();
    xes::write_log(&log, &mut buf).unwrap();
    let back = xes::read_log(buf.as_slice()).unwrap();

    assert_eq!(back.len(), log.len());
    // Interval structure and outputs survive, so mining agrees.
    let (a, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let (b, _) = mine_auto(&back, &MinerOptions::default()).unwrap();
    let mut ea = a.edges_named();
    let mut eb = b.edges_named();
    ea.sort();
    eb.sort();
    assert_eq!(ea, eb);
}

#[test]
fn model_file_to_mined_model() {
    let definition = "\
process Claims
activity Receive
activity Triage output uniform 0..100
activity FastTrack
activity FullReview
activity Payout

edge Receive -> Triage
edge Triage -> FastTrack if o[0] <= 30
edge Triage -> FullReview if o[0] > 30
edge FastTrack -> Payout
edge FullReview -> Payout
";
    let model = textfmt::read_model(definition.as_bytes()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let log = engine::generate_log(&model, 200, &mut rng).unwrap();
    let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
    assert!(mined.has_edge("Receive", "Triage"));
    assert!(mined.has_edge("Triage", "FastTrack") && mined.has_edge("Triage", "FullReview"));

    // The split is exclusive on Triage's output.
    let gateways = analyze_gateways(&mined, &log);
    assert_eq!(gateways.split_at("Triage").unwrap().kind, GatewayKind::Xor);
    assert_eq!(gateways.join_at("Payout").unwrap().kind, GatewayKind::Xor);
}

#[test]
fn parallel_and_incremental_match_batch_on_real_workload() {
    let process = presets::graph10();
    let mut rng = StdRng::seed_from_u64(9);
    let log = walk::random_walk_log(&process, 400, &mut rng).unwrap();

    let batch = mine_general_dag(&log, &MinerOptions::default()).unwrap();
    let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), 4).unwrap();
    let mut inc = IncrementalMiner::new(MinerOptions::default());
    inc.absorb_log(&log).unwrap();
    let incremental = inc.model().unwrap();

    let mut a = batch.edges_named();
    let mut b = parallel.edges_named();
    let mut c = incremental.edges_named();
    a.sort();
    b.sort();
    c.sort();
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn route_analytics_on_mined_graph10() {
    let process = presets::graph10();
    let mut rng = StdRng::seed_from_u64(13);
    let log = walk::random_walk_log(&process, 500, &mut rng).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let g = model.graph();
    let source = g.sources()[0];
    let sink = g.sinks()[0];
    let routes = paths::count_paths(g, source, sink).unwrap();
    assert!(routes >= 2, "Graph10 has branching: {routes}");
    let critical = paths::longest_path(g, source, sink).unwrap().unwrap();
    assert!(critical.len() >= 4, "A→G→C→F→I→B→E→J is long");
    assert_eq!(critical.first(), Some(&source));
    assert_eq!(critical.last(), Some(&sink));
}

#[test]
fn fitness_flags_foreign_executions() {
    // Mine a model from clean executions, then score a log containing
    // rule-breaking cases.
    let clean = WorkflowLog::from_strings(["ABCE", "ACBE", "ABCE"]).unwrap();
    let (model, _) = mine_auto(&clean, &MinerOptions::default()).unwrap();

    let mut mixed = WorkflowLog::with_activities(clean.activities().clone());
    for e in clean.executions() {
        mixed.push(e.clone());
    }
    // E before B violates B→E / C→E dependencies.
    let ids: Vec<_> = "AEBC"
        .chars()
        .map(|c| clean.activities().id(&c.to_string()).unwrap())
        .collect();
    mixed.push(procmine::log::Execution::from_ids("bad", &ids).unwrap());

    let f = fitness(&model, &mixed);
    assert_eq!(f.executions, 4);
    assert_eq!(f.consistent, 3);
    assert!(f.dependency_violated > 0 || f.wrong_endpoints > 0);
    assert!((f.fraction() - 0.75).abs() < 1e-12);
}

#[test]
fn log_ops_compose_with_mining() {
    let process = presets::pend_block();
    let mut rng = StdRng::seed_from_u64(17);
    let log = walk::random_walk_log(&process, 200, &mut rng).unwrap();

    // Dedup: mining the deduplicated log yields the same model
    // (threshold 1 depends only on which orderings exist).
    let deduped = log.dedup_sequences();
    assert!(deduped.len() < log.len());
    let (a, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let (b, _) = mine_auto(&deduped, &MinerOptions::default()).unwrap();
    let mut ea = a.edges_named();
    let mut eb = b.edges_named();
    ea.sort();
    eb.sort();
    assert_eq!(ea, eb);

    // Split + merge round-trips the log.
    let (train, test) = log.split_at_fraction(0.8);
    assert_eq!(train.len() + test.len(), log.len());
    let mut rejoined = train;
    rejoined.merge(&test);
    assert_eq!(rejoined.len(), log.len());
}

#[test]
fn mined_models_are_executable_round_trip() {
    // The paper's end goal: feed the discovered model back into a
    // workflow system. Simulate → mine → rebuild an executable model
    // (learned conditions + bootstrapped outputs) → simulate → re-mine:
    // the control-flow graph must be stable under the round trip.
    use procmine::bridge::executable_model;
    use procmine::classify::TreeConfig;

    let original = presets::order_fulfillment();
    let mut rng = StdRng::seed_from_u64(41);
    let log = engine::generate_log(&original, 400, &mut rng).unwrap();
    let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();

    let rebuilt = executable_model(&mined, &log, &TreeConfig::default()).unwrap();
    assert_eq!(rebuilt.activity_count(), mined.activity_count());
    assert_eq!(rebuilt.edge_count(), mined.edge_count());

    let relog = engine::generate_log(&rebuilt, 400, &mut rng).unwrap();
    // The rebuilt model routes like the original: branch frequencies in
    // the same ballpark.
    let frac = |log: &WorkflowLog, name: &str| {
        let id = log.activities().id(name).unwrap();
        log.executions().iter().filter(|e| e.contains(id)).count() as f64 / log.len() as f64
    };
    let orig_approval = frac(&log, "ManagerApproval");
    let new_approval = frac(&relog, "ManagerApproval");
    assert!(
        (orig_approval - new_approval).abs() < 0.15,
        "approval rate drifted: {orig_approval} vs {new_approval}"
    );

    let remined = mine_general_dag(&relog, &MinerOptions::default()).unwrap();
    let mut a = mined.edges_named();
    let mut b = remined.edges_named();
    a.sort();
    b.sort();
    assert_eq!(
        a, b,
        "control flow stable under the execute-mine round trip"
    );
}

#[test]
fn multi_agent_interval_logs_mine_correctly() {
    // With overlap, even a handful of executions reveal the AND-split
    // structure of StressSleep's parallel lanes.
    let process = presets::stress_sleep();
    let cfg = engine::EngineConfig {
        duration: engine::DurationSpec::Uniform(10, 50),
        agents: 6,
    };
    let mut rng = StdRng::seed_from_u64(23);
    let log = engine::generate_log_with(&process, 40, &cfg, &mut rng).unwrap();

    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    // Overlapping intervals show the Sleep lanes as independent within
    // single executions, so no edges appear among them even in a small
    // log — something a sequential log of 40 runs rarely achieves.
    let lanes = ["Sleep1", "Sleep2", "Sleep3", "Sleep4"];
    for a in lanes {
        for b in lanes {
            if a != b {
                assert!(
                    !model.has_edge(a, b),
                    "{a}->{b} should be independent: {:?}",
                    model.edges_named()
                );
            }
        }
    }
}
