//! Log codecs: serialization formats for workflow logs.
//!
//! Three formats are provided:
//!
//! * [`flowmark`] — a CSV-like event format modelled on the IBM Flowmark
//!   audit-trail convention the paper's implementation consumed: one
//!   event record `(process, activity, START|END, timestamp, output?)`
//!   per line;
//! * [`seqs`] — one execution per line as whitespace-separated activity
//!   names (the paper's compact `ABCE` notation, generalized to
//!   multi-character names);
//! * [`jsonl`] — one JSON object per execution, carrying full interval
//!   and output information losslessly;
//! * [`xes`] — the IEEE 1849 XML interchange format of the
//!   process-mining ecosystem (ProM, PM4Py), for cross-tool workflows.

pub mod flowmark;
pub mod jsonl;
pub mod seqs;
pub mod stream;
pub mod xes;
pub mod xes_reference;

use crate::LogError;
use std::io::{BufRead, Read};

/// How a codec treats decode errors (bad lines, truncated tails,
/// malformed XML). Every codec's `read_log_with` entry point takes one;
/// the plain `read_log` / `read_log_with_stats` entry points use
/// [`RecoveryPolicy::Strict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// The first decode error aborts the read (it is still recorded in
    /// the [`IngestReport`], with its byte offset).
    #[default]
    Strict,
    /// Skip bad records, but give up with
    /// [`LogError::TooManyErrors`](crate::LogError::TooManyErrors) once
    /// more than `max_errors` decode errors accumulate.
    Skip {
        /// Decode-error budget; `Skip { max_errors: 0 }` behaves like
        /// [`RecoveryPolicy::Strict`] except that dropped-but-harmless
        /// assembly diagnostics do not count.
        max_errors: u64,
    },
    /// Skip bad records without limit and salvage everything parsable.
    BestEffort,
}

impl RecoveryPolicy {
    /// `true` for [`RecoveryPolicy::Strict`].
    pub fn is_strict(self) -> bool {
        matches!(self, RecoveryPolicy::Strict)
    }
}

/// At most this many individual errors are retained in
/// [`IngestReport::errors`]; the rest only bump
/// [`IngestReport::errors_total`].
pub const MAX_RECORDED_ERRORS: usize = 16;

/// One decode error, located in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// Byte offset of the offending record's start.
    pub byte_offset: u64,
    /// 1-based line number (0 when the format is not line-oriented).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

/// Outcome of one (possibly recovering) codec read: how many records
/// made it, how many were dropped, and where the first
/// [`MAX_RECORDED_ERRORS`] problems sat. Rides alongside [`CodecStats`]
/// through the telemetry layer. "Record" means the codec's natural
/// unit — event lines for flowmark, lines for seqs/jsonl, `<event>`
/// elements for XES.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records decoded successfully.
    pub records_parsed: u64,
    /// Records lost to recovery: undecodable lines/events plus events
    /// dropped by lenient START/END assembly.
    pub records_skipped: u64,
    /// Decode errors encountered (assembly diagnostics not included).
    pub errors_total: u64,
    /// Open cases evicted by the interleaved assembler's memory bound
    /// (see [`crate::stream::CaseAssembler`]). Always zero for the
    /// batch codecs.
    pub cases_evicted: u64,
    /// The first [`MAX_RECORDED_ERRORS`] errors, in input order.
    pub errors: Vec<IngestError>,
}

impl IngestReport {
    /// Appends an error, retaining detail for the first
    /// [`MAX_RECORDED_ERRORS`].
    pub fn record_error(&mut self, byte_offset: u64, line: usize, message: impl Into<String>) {
        self.errors_total += 1;
        if self.errors.len() < MAX_RECORDED_ERRORS {
            self.errors.push(IngestError {
                byte_offset,
                line,
                message: message.into(),
            });
        }
    }

    /// Appends a located *assembly diagnostic* (a dropped unmatched
    /// START/END) to [`IngestReport::errors`] without counting it into
    /// [`IngestReport::errors_total`]: diagnostics are structural noise
    /// that recovery deliberately tolerates, so they never burn the
    /// [`RecoveryPolicy::Skip`] error budget, but streaming callers
    /// still want them located for `--recover` reporting.
    pub fn record_diagnostic(&mut self, byte_offset: u64, line: usize, message: impl Into<String>) {
        if self.errors.len() < MAX_RECORDED_ERRORS {
            self.errors.push(IngestError {
                byte_offset,
                line,
                message: message.into(),
            });
        }
    }

    /// Checks the error budget after recording an error: under
    /// [`RecoveryPolicy::Skip`] an exhausted budget aborts the read.
    pub(crate) fn over_budget(&self, policy: RecoveryPolicy) -> Result<(), LogError> {
        if let RecoveryPolicy::Skip { max_errors } = policy {
            if self.errors_total > max_errors {
                return Err(LogError::TooManyErrors {
                    errors: self.errors_total,
                    max_errors,
                });
            }
        }
        Ok(())
    }

    /// Adds `other`'s tallies into `self` (reports from separate reads).
    pub fn merge(&mut self, other: &IngestReport) {
        self.records_parsed += other.records_parsed;
        self.records_skipped += other.records_skipped;
        self.errors_total += other.errors_total;
        self.cases_evicted += other.cases_evicted;
        for e in &other.errors {
            if self.errors.len() >= MAX_RECORDED_ERRORS {
                break;
            }
            self.errors.push(e.clone());
        }
    }

    /// Machine-readable JSON object with a stable key order (matches
    /// the field order above).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"records_parsed\":{},\"records_skipped\":{},\"errors_total\":{},\"cases_evicted\":{},\"errors\":[",
            self.records_parsed, self.records_skipped, self.errors_total, self.cases_evicted
        );
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"byte_offset\":{},\"line\":{},\"message\":\"{}\"}}",
                e.byte_offset,
                e.line,
                json_escape(&e.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Byte-level line reader for the recovering decode paths: unlike
/// [`BufRead::lines`], it survives invalid UTF-8 (a bit flip must not
/// abort the whole read as an I/O error), reports each line's starting
/// byte offset, and says whether the line was newline-terminated — the
/// signal that distinguishes a garbage line from a truncated tail.
pub(crate) struct ByteLines<R: BufRead> {
    reader: CountingReader<R>,
    buf: Vec<u8>,
    lineno: usize,
}

impl<R: BufRead> ByteLines<R> {
    pub fn new(reader: R) -> Self {
        ByteLines {
            reader: CountingReader::new(reader),
            buf: Vec::new(),
            lineno: 0,
        }
    }

    /// Bytes consumed so far.
    pub fn bytes(&self) -> u64 {
        // Fully qualified: `Read::bytes` (in scope here) would win the
        // by-value probe over the inherent counter.
        CountingReader::bytes(&self.reader)
    }

    /// Advances to the next line. Returns `Ok(Some((byte_offset,
    /// lineno, had_newline)))` and exposes the raw bytes via
    /// [`ByteLines::line`]; `Ok(None)` at EOF. I/O errors are fatal.
    pub fn read_next(&mut self) -> Result<Option<(u64, usize, bool)>, LogError> {
        let offset = CountingReader::bytes(&self.reader);
        self.buf.clear();
        let n = self.reader.read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.lineno += 1;
        let had_newline = self.buf.last() == Some(&b'\n');
        if had_newline {
            self.buf.pop();
            if self.buf.last() == Some(&b'\r') {
                self.buf.pop();
            }
        }
        Ok(Some((offset, self.lineno, had_newline)))
    }

    /// The bytes of the line returned by the last
    /// [`ByteLines::read_next`], without the line terminator.
    pub fn line(&self) -> &[u8] {
        &self.buf
    }

    /// Lines consumed so far (the 1-based number of the last line
    /// returned by [`ByteLines::read_next`]; 0 before the first).
    pub fn lineno(&self) -> usize {
        self.lineno
    }
}

/// Byte and event tallies from one codec read.
///
/// Every codec has a `read_log_with_stats` twin that fills one of
/// these; the plain `read_log` entry points discard the stats. Fields
/// accumulate, so one `CodecStats` can tally several reads.
///
/// `events_parsed` counts the format's natural unit: event lines for
/// [`flowmark`], activity names for [`seqs`], activity instances for
/// [`jsonl`], and `<event>` elements for [`xes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Bytes consumed from the underlying reader.
    pub bytes_read: u64,
    /// Events parsed (see the type docs for the per-format unit).
    pub events_parsed: u64,
    /// Executions in the assembled log.
    pub executions_parsed: u64,
}

impl CodecStats {
    /// Adds `other`'s tallies into `self` (stats from separate reads or
    /// a finished [`stream::ExecutionStream`]).
    pub fn merge(&mut self, other: &CodecStats) {
        self.bytes_read += other.bytes_read;
        self.events_parsed += other.events_parsed;
        self.executions_parsed += other.executions_parsed;
    }

    /// Machine-readable JSON object with a stable key order (matches
    /// the field order above).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bytes_read\":{},\"events_parsed\":{},\"executions_parsed\":{}}}",
            self.bytes_read, self.events_parsed, self.executions_parsed
        )
    }
}

/// A [`BufRead`] adapter that counts the bytes consumed through it.
///
/// Bytes are tallied in [`BufRead::consume`] (the line-oriented codecs)
/// and in [`Read::read`] (the slurping XES codec); each codec drives
/// exactly one of the two paths, so nothing is double-counted.
pub struct CountingReader<R> {
    inner: R,
    bytes: u64,
}

impl<R> CountingReader<R> {
    /// Wraps a reader with a zeroed byte counter.
    pub fn new(inner: R) -> Self {
        CountingReader { inner, bytes: 0 }
    }

    /// Bytes consumed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

impl<R: BufRead> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.bytes += amt as u64;
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkflowLog;

    #[test]
    fn seqs_stats_count_bytes_names_and_executions() {
        let text = "# log\nA B C E\nA C D E\n";
        let mut stats = CodecStats::default();
        let log = seqs::read_log_with_stats(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(stats.bytes_read, text.len() as u64);
        assert_eq!(stats.events_parsed, 8);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn flowmark_stats_count_event_lines() {
        let text = "p1,A,START,0\np1,A,END,1\np1,B,START,2\np1,B,END,3\n";
        let mut stats = CodecStats::default();
        let log = flowmark::read_log_with_stats(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(stats.bytes_read, text.len() as u64);
        assert_eq!(stats.events_parsed, 4);
        assert_eq!(stats.executions_parsed, 1);
    }

    #[test]
    fn jsonl_stats_count_instances() {
        let log = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        let mut buf = Vec::new();
        jsonl::write_log(&log, &mut buf).unwrap();
        let mut stats = CodecStats::default();
        let back = jsonl::read_log_with_stats(buf.as_slice(), &mut stats).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.bytes_read, buf.len() as u64);
        assert_eq!(stats.events_parsed, 5);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn xes_stats_count_event_elements() {
        let log = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        let mut buf = Vec::new();
        xes::write_log(&log, &mut buf).unwrap();
        let mut stats = CodecStats::default();
        let back = xes::read_log_with_stats(buf.as_slice(), &mut stats).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.bytes_read, buf.len() as u64);
        // Instantaneous instances write one `complete` element each.
        assert_eq!(stats.events_parsed, 5);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn stats_accumulate_across_reads() {
        let text = "A B\n";
        let mut stats = CodecStats::default();
        seqs::read_log_with_stats(text.as_bytes(), &mut stats).unwrap();
        seqs::read_log_with_stats(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(stats.bytes_read, 2 * text.len() as u64);
        assert_eq!(stats.events_parsed, 4);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = CodecStats {
            bytes_read: 1,
            events_parsed: 2,
            executions_parsed: 3,
        };
        a.merge(&CodecStats {
            bytes_read: 10,
            events_parsed: 20,
            executions_parsed: 30,
        });
        assert_eq!(
            a,
            CodecStats {
                bytes_read: 11,
                events_parsed: 22,
                executions_parsed: 33,
            }
        );
    }

    #[test]
    fn stats_json_has_stable_key_order() {
        let stats = CodecStats {
            bytes_read: 1,
            events_parsed: 2,
            executions_parsed: 3,
        };
        assert_eq!(
            stats.to_json(),
            "{\"bytes_read\":1,\"events_parsed\":2,\"executions_parsed\":3}"
        );
    }
}
