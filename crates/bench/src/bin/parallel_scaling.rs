//! Ablation: parallel vs. serial mining (Algorithm 2).
//!
//! The per-execution passes (ordered-pair counting and induced-subgraph
//! reduction) dominate at `m ≫ n`; this binary measures wall-clock time
//! of the serial miner against the scoped-thread parallel miner at
//! 1/2/4/8 threads on the Table 1 workloads, verifying the outputs
//! match. Run with `--release`.

use procmine_bench::{synthetic_workload, TextTable};
use procmine_core::{
    mine_general_dag, mine_general_dag_in, mine_general_dag_parallel, MineSession, MinerMetrics,
    MinerOptions, Stage,
};
use std::time::Instant;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("Parallel mining ablation (Algorithm 2) — {cores} hardware thread(s) available\n");
    if cores == 1 {
        println!("NOTE: single-core host; expect ~1.0x — this run verifies overhead and");
        println!("output equality rather than speedup.\n");
    }
    let mut table = TextTable::new([
        "n",
        "m",
        "serial(s)",
        "2 thr",
        "4 thr",
        "8 thr",
        "cpu/wall@8",
        "same output",
    ]);

    for &(n, edges) in &[(50usize, 1058usize), (100, 4569)] {
        for &m in &[50_000usize, 200_000] {
            let (_, log) = synthetic_workload(n, edges, m, 4000 + n as u64);

            let started = Instant::now();
            let serial = mine_general_dag(&log, &MinerOptions::default()).expect("mine");
            let serial_t = started.elapsed().as_secs_f64();

            let mut row = vec![n.to_string(), m.to_string(), format!("{serial_t:.3}")];
            let mut all_match = true;
            for threads in [2usize, 4, 8] {
                let started = Instant::now();
                let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), threads)
                    .expect("mine");
                let t = started.elapsed().as_secs_f64();
                row.push(format!("{t:.3} ({:.1}x)", serial_t / t.max(1e-9)));
                let mut a = serial.edges_named();
                let mut b = parallel.edges_named();
                a.sort();
                b.sort();
                all_match &= a == b;
            }

            // Parallel efficiency at 8 threads: CPU-ns summed across
            // workers over wall-ns at the two join barriers. Near the
            // thread count means the workers stayed busy.
            let mut metrics = MinerMetrics::new();
            let mut session = MineSession::new().with_threads(8).with_sink(&mut metrics);
            mine_general_dag_in(&mut session, &log, &MinerOptions::default()).expect("mine");
            drop(session);
            let cpu = metrics.stage_nanos(Stage::CountPairs) + metrics.stage_nanos(Stage::Reduce);
            let wall = metrics.wall_nanos(Stage::CountPairs) + metrics.wall_nanos(Stage::Reduce);
            row.push(format!("{:.2}x", cpu as f64 / wall.max(1) as f64));
            row.push(all_match.to_string());
            table.row(row);
        }
    }
    println!("{}", table.render());
    println!("(speedups depend on core count; outputs are bit-identical by construction)");
}
