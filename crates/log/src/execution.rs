//! One execution of a process: a time-ordered list of activity instances.
//!
//! The paper simplifies executions to "a list of activities" by assuming
//! instantaneous activities; the justification given is that overlapping
//! activities are necessarily independent. We keep the general interval
//! form — each instance has a start and end time — and expose the
//! *terminates-before-starts* relation the algorithms actually consume.
//! The instantaneous list form is the special case `start == end` with
//! strictly increasing times.

use crate::{ActivityId, ActivityTable, LogError};
use serde::{Deserialize, Serialize};

/// One occurrence of an activity within an execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityInstance {
    /// Which activity ran.
    pub activity: ActivityId,
    /// Start timestamp.
    pub start: u64,
    /// End timestamp (`>= start`).
    pub end: u64,
    /// Output vector recorded on the END event, if any.
    pub output: Option<Vec<i64>>,
}

/// One recorded execution of the process: activity instances sorted by
/// start time (ties broken by end time, then activity id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Execution {
    /// The process-execution (case) name from the log.
    pub id: String,
    instances: Vec<ActivityInstance>,
}

impl Execution {
    /// Builds an execution from instances, sorting them by start time.
    ///
    /// Returns [`LogError::EmptyExecution`] if `instances` is empty and
    /// [`LogError::NegativeInterval`] if any instance ends before it
    /// starts.
    pub fn new(
        id: impl Into<String>,
        mut instances: Vec<ActivityInstance>,
    ) -> Result<Self, LogError> {
        let id = id.into();
        if instances.is_empty() {
            return Err(LogError::EmptyExecution { execution: id });
        }
        if let Some(bad) = instances.iter().find(|i| i.end < i.start) {
            return Err(LogError::NegativeInterval {
                execution: id,
                activity: bad.activity.index(),
                start: bad.start,
                end: bad.end,
            });
        }
        instances.sort_by_key(|i| (i.start, i.end, i.activity));
        Ok(Execution { id, instances })
    }

    /// Builds an instantaneous execution from an ordered activity-id
    /// sequence: the `i`-th activity gets `start == end == i`.
    pub fn from_ids(id: impl Into<String>, seq: &[ActivityId]) -> Result<Self, LogError> {
        Self::new(
            id,
            seq.iter()
                .enumerate()
                .map(|(i, &a)| ActivityInstance {
                    activity: a,
                    start: i as u64,
                    end: i as u64,
                    output: None,
                })
                .collect(),
        )
    }

    /// The instances in start-time order.
    pub fn instances(&self) -> &[ActivityInstance] {
        &self.instances
    }

    /// Number of activity instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` if the execution has no instances (never true for values
    /// built through the constructors).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The activity sequence in start-time order (repeats preserved).
    pub fn sequence(&self) -> Vec<ActivityId> {
        self.instances.iter().map(|i| i.activity).collect()
    }

    /// `true` if any activity occurs more than once (a cycle signature —
    /// such executions need Algorithm 3).
    pub fn has_repeats(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.instances.iter().any(|i| !seen.insert(i.activity))
    }

    /// How many times `a` occurs.
    pub fn count_of(&self, a: ActivityId) -> usize {
        self.instances.iter().filter(|i| i.activity == a).count()
    }

    /// `true` if `a` occurs at least once.
    pub fn contains(&self, a: ActivityId) -> bool {
        self.instances.iter().any(|i| i.activity == a)
    }

    /// The output of the first instance of `a` that recorded one.
    pub fn output_of(&self, a: ActivityId) -> Option<&[i64]> {
        self.instances
            .iter()
            .find(|i| i.activity == a && i.output.is_some())
            .and_then(|i| i.output.as_deref())
    }

    /// The first and last activities by time — Definition 6 requires
    /// these to be the process' initiating and terminating activities.
    // Non-emptiness is a constructor invariant: Execution::new rejects
    // empty instance lists.
    #[allow(clippy::expect_used)]
    pub fn endpoints(&self) -> (ActivityId, ActivityId) {
        (
            self.instances
                .first()
                .expect("executions are non-empty")
                .activity,
            self.instances
                .last()
                .expect("executions are non-empty")
                .activity,
        )
    }

    /// Iterates instance-index pairs `(i, j)` such that instance `i`
    /// *terminates before* instance `j` *starts* — the observed-order
    /// relation of step 2 of all three mining algorithms. Pairs where the
    /// intervals overlap (including equal instantaneous timestamps) are
    /// not emitted: overlapping activities are independent.
    pub fn precedence_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let inst = &self.instances;
        (0..inst.len()).flat_map(move |i| {
            (0..inst.len())
                .filter(move |&j| i != j && inst[i].end < inst[j].start)
                .map(move |j| (i, j))
        })
    }

    /// Labels each instance with its occurrence number (0-based) among
    /// instances of the same activity, in time order — the "artificially
    /// differentiate appearances" device of Algorithm 3 (the paper's
    /// `B1`, `B2`, …).
    pub fn labeled_sequence(&self) -> Vec<(ActivityId, u32)> {
        let mut counts: std::collections::HashMap<ActivityId, u32> =
            std::collections::HashMap::new();
        self.instances
            .iter()
            .map(|i| {
                let c = counts.entry(i.activity).or_insert(0);
                let occ = *c;
                *c += 1;
                (i.activity, occ)
            })
            .collect()
    }

    /// Renders the activity sequence as names, e.g. `"A B C E"`.
    pub fn display(&self, table: &ActivityTable) -> String {
        self.sequence()
            .iter()
            .map(|&a| table.name(a))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ActivityTable {
        ActivityTable::from_names(["A", "B", "C", "D"])
    }

    fn aid(t: &ActivityTable, n: &str) -> ActivityId {
        t.id(n).unwrap()
    }

    #[test]
    fn from_ids_is_instantaneous_and_ordered() {
        let t = table();
        let seq = [aid(&t, "A"), aid(&t, "C"), aid(&t, "B")];
        let e = Execution::from_ids("p1", &seq).unwrap();
        assert_eq!(e.sequence(), seq);
        assert_eq!(e.len(), 3);
        assert_eq!(e.endpoints(), (aid(&t, "A"), aid(&t, "B")));
        assert_eq!(e.display(&t), "A C B");
    }

    #[test]
    fn empty_execution_rejected() {
        assert!(matches!(
            Execution::new("p", vec![]),
            Err(LogError::EmptyExecution { .. })
        ));
    }

    #[test]
    fn negative_interval_rejected() {
        let t = table();
        let inst = ActivityInstance {
            activity: aid(&t, "A"),
            start: 5,
            end: 3,
            output: None,
        };
        assert!(matches!(
            Execution::new("p", vec![inst]),
            Err(LogError::NegativeInterval { .. })
        ));
    }

    #[test]
    fn precedence_respects_intervals() {
        let t = table();
        // A: [0,2], B: [1,3] (overlaps A), C: [4,5] (after both).
        let e = Execution::new(
            "p",
            vec![
                ActivityInstance {
                    activity: aid(&t, "A"),
                    start: 0,
                    end: 2,
                    output: None,
                },
                ActivityInstance {
                    activity: aid(&t, "B"),
                    start: 1,
                    end: 3,
                    output: None,
                },
                ActivityInstance {
                    activity: aid(&t, "C"),
                    start: 4,
                    end: 5,
                    output: None,
                },
            ],
        )
        .unwrap();
        let pairs: Vec<_> = e.precedence_pairs().collect();
        // A⊄B (overlap), A<C, B<C.
        assert_eq!(pairs, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn instantaneous_equal_times_do_not_precede() {
        let t = table();
        let e = Execution::new(
            "p",
            vec![
                ActivityInstance {
                    activity: aid(&t, "A"),
                    start: 0,
                    end: 0,
                    output: None,
                },
                ActivityInstance {
                    activity: aid(&t, "B"),
                    start: 0,
                    end: 0,
                    output: None,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.precedence_pairs().count(), 0);
    }

    #[test]
    fn repeats_and_labeling() {
        let t = table();
        let seq = [
            aid(&t, "A"),
            aid(&t, "B"),
            aid(&t, "C"),
            aid(&t, "B"),
            aid(&t, "C"),
        ];
        let e = Execution::from_ids("p", &seq).unwrap();
        assert!(e.has_repeats());
        assert_eq!(e.count_of(aid(&t, "B")), 2);
        assert_eq!(e.count_of(aid(&t, "D")), 0);
        let labeled = e.labeled_sequence();
        assert_eq!(labeled[1], (aid(&t, "B"), 0));
        assert_eq!(labeled[3], (aid(&t, "B"), 1));
        assert_eq!(labeled[4], (aid(&t, "C"), 1));
    }

    #[test]
    fn output_lookup() {
        let t = table();
        let e = Execution::new(
            "p",
            vec![
                ActivityInstance {
                    activity: aid(&t, "A"),
                    start: 0,
                    end: 1,
                    output: Some(vec![7]),
                },
                ActivityInstance {
                    activity: aid(&t, "B"),
                    start: 2,
                    end: 3,
                    output: None,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.output_of(aid(&t, "A")), Some(&[7i64][..]));
        assert_eq!(e.output_of(aid(&t, "B")), None);
    }

    #[test]
    fn instances_sorted_by_start() {
        let t = table();
        let e = Execution::new(
            "p",
            vec![
                ActivityInstance {
                    activity: aid(&t, "B"),
                    start: 5,
                    end: 6,
                    output: None,
                },
                ActivityInstance {
                    activity: aid(&t, "A"),
                    start: 0,
                    end: 1,
                    output: None,
                },
            ],
        )
        .unwrap();
        assert_eq!(e.sequence(), vec![aid(&t, "A"), aid(&t, "B")]);
    }
}
