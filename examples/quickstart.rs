//! Quickstart: mine process models from the paper's own example logs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the three settings of the paper with the exact logs of
//! Examples 6, 7 and 8, printing the mined graphs and their DOT form.

use procmine::log::WorkflowLog;
use procmine::mine::{conformance, mine_auto, MinerOptions};

fn mine_and_print(title: &str, strings: &[&str]) {
    println!("== {title}");
    println!("   log: {}", strings.join(", "));

    let log = WorkflowLog::from_strings(strings.iter().copied()).expect("valid log");
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default()).expect("mining succeeds");

    println!("   algorithm: {algorithm:?}");
    println!(
        "   mined {} activities, {} edges:",
        model.activity_count(),
        model.edge_count()
    );
    for (u, v) in model.edges_named() {
        println!("     {u} -> {v}");
    }

    let report = conformance::check_conformance(&model, &log);
    println!(
        "   conformal with the log (Definition 7): {}",
        report.is_conformal()
    );
    println!();
}

fn main() {
    // Example 6 / Figure 3: every activity in every execution — the
    // special-DAG miner returns the unique minimal conformal graph.
    mine_and_print("Example 6 (Algorithm 1)", &["ABCDE", "ACDBE", "ACBDE"]);

    // Example 7 / Figure 4: partial executions — C, D, E form a cycle of
    // followings and come out mutually independent.
    mine_and_print("Example 7 (Algorithm 2)", &["ABCF", "ACDF", "ADEF", "AECF"]);

    // Example 8 / Figure 6: repeated activities — instance labeling
    // recovers the B⇄C rework cycle.
    mine_and_print(
        "Example 8 (Algorithm 3)",
        &["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"],
    );

    // DOT output, ready for `dot -Tpng`.
    let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    println!(
        "== Graphviz DOT of the Example 6 model\n{}",
        model.to_dot("example6")
    );
}
