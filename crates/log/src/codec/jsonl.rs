//! JSON-lines codec: one JSON object per execution, lossless.
//!
//! Each line is an object with the execution id and its instances, with
//! activity names inlined so the file is self-describing:
//!
//! ```json
//! {"id":"p1","instances":[{"activity":"A","start":0,"end":1,"output":[3,4]}]}
//! ```

use super::{ByteLines, CodecStats, IngestReport, RecoveryPolicy};
use crate::{ActivityInstance, ActivityTable, Execution, LogError, WorkflowLog};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

#[derive(Serialize, Deserialize)]
struct JsonInstance {
    activity: String,
    start: u64,
    end: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    output: Option<Vec<i64>>,
}

#[derive(Serialize, Deserialize)]
struct JsonExecution {
    id: String,
    instances: Vec<JsonInstance>,
}

/// Writes a log as JSON-lines.
pub fn write_log<W: Write>(log: &WorkflowLog, mut writer: W) -> Result<(), LogError> {
    for exec in log.executions() {
        let je = JsonExecution {
            id: exec.id.clone(),
            instances: exec
                .instances()
                .iter()
                .map(|i| JsonInstance {
                    activity: log.activities().name(i.activity).to_string(),
                    start: i.start,
                    end: i.end,
                    output: i.output.clone(),
                })
                .collect(),
        };
        serde_json::to_writer(&mut writer, &je)?;
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a JSON-lines log. Blank lines are skipped.
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_with_stats(reader, &mut CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, activity instances
/// parsed, and executions assembled accumulate into `stats`.
pub fn read_log_with_stats<R: BufRead>(
    reader: R,
    stats: &mut CodecStats,
) -> Result<WorkflowLog, LogError> {
    read_log_with(
        reader,
        RecoveryPolicy::Strict,
        stats,
        &mut IngestReport::default(),
    )
}

/// [`read_log_with_stats`] with a [`RecoveryPolicy`]: a line that is
/// not valid JSON, or whose execution is structurally invalid (no
/// instances, an interval ending before it starts), aborts under
/// `Strict` and is counted and skipped otherwise. An unparsable final
/// line with no trailing newline is reported as
/// [`LogError::UnexpectedEof`] — a truncated file, not a garbage line.
pub fn read_log_with<R: BufRead>(
    reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut lines = ByteLines::new(reader);
    let mut table = ActivityTable::new();
    let mut executions = Vec::new();
    let result = read_impl(
        &mut lines,
        policy,
        stats,
        report,
        &mut table,
        &mut executions,
    );
    stats.bytes_read += lines.bytes();
    result?;
    let mut log = WorkflowLog::with_activities(table);
    for e in executions {
        log.push(e);
    }
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

fn read_impl<R: BufRead>(
    lines: &mut ByteLines<R>,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
    table: &mut ActivityTable,
    executions: &mut Vec<Execution>,
) -> Result<(), LogError> {
    while let Some((offset, lineno, had_newline)) = lines.read_next()? {
        match parse_line(lines.line(), lineno, table) {
            Ok(None) => {}
            Ok(Some(exec)) => {
                stats.events_parsed += exec.len() as u64;
                report.records_parsed += 1;
                executions.push(exec);
            }
            Err(e) => {
                let err = if had_newline {
                    e
                } else {
                    LogError::UnexpectedEof {
                        byte_offset: offset,
                        message: format!("input ends mid-record ({e})"),
                    }
                };
                report.record_error(offset, lineno, err.to_string());
                if policy.is_strict() {
                    return Err(err);
                }
                report.records_skipped += 1;
                report.over_budget(policy)?;
            }
        }
    }
    Ok(())
}

/// Parses one JSON-lines record; `Ok(None)` for a blank line. The
/// execution is validated *before* names are interned, so a skipped
/// record cannot pollute the activity table.
fn parse_line(
    raw: &[u8],
    lineno: usize,
    table: &mut ActivityTable,
) -> Result<Option<Execution>, LogError> {
    let text = std::str::from_utf8(raw).map_err(|_| LogError::Parse {
        line: lineno,
        message: "line is not valid UTF-8".to_string(),
    })?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    let je: JsonExecution = serde_json::from_str(text).map_err(|e| LogError::Parse {
        line: lineno,
        message: e.to_string(),
    })?;
    if je.instances.is_empty() {
        return Err(LogError::Parse {
            line: lineno,
            message: format!("execution `{}` has no instances", je.id),
        });
    }
    if let Some(bad) = je.instances.iter().find(|i| i.end < i.start) {
        return Err(LogError::Parse {
            line: lineno,
            message: format!(
                "execution `{}`: activity `{}` ends at {} before it starts at {}",
                je.id, bad.activity, bad.end, bad.start
            ),
        });
    }
    let instances: Vec<ActivityInstance> = je
        .instances
        .into_iter()
        .map(|i| ActivityInstance {
            activity: table.intern(&i.activity),
            start: i.start,
            end: i.end,
            output: i.output,
        })
        .collect();
    let exec = Execution::new(je.id, instances).map_err(|e| LogError::Parse {
        line: lineno,
        message: e.to_string(),
    })?;
    Ok(Some(exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventRecord;

    #[test]
    fn lossless_round_trip() {
        let records = vec![
            EventRecord::start("p1", "A", 0),
            EventRecord::start("p1", "B", 1), // overlaps A
            EventRecord::end("p1", "A", 2, Some(vec![5, -3])),
            EventRecord::end("p1", "B", 4, None),
        ];
        let log = WorkflowLog::from_events(&records).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        let exec = &back.executions()[0];
        assert_eq!(exec.instances().len(), 2);
        assert_eq!(exec.instances()[0].start, 0);
        assert_eq!(exec.instances()[0].end, 2);
        assert_eq!(exec.instances()[0].output.as_deref(), Some(&[5i64, -3][..]));
        // Overlap is preserved — no precedence pair between A and B.
        assert_eq!(exec.precedence_pairs().count(), 0);
    }

    #[test]
    fn rejects_bad_json() {
        let result = read_log("{not json\n".as_bytes());
        assert!(matches!(result, Err(LogError::Parse { line: 1, .. })));
        // Without the newline the same garbage reads as a truncated tail.
        let result = read_log("{not json".as_bytes());
        assert!(matches!(
            result,
            Err(LogError::UnexpectedEof { byte_offset: 0, .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let log = WorkflowLog::from_strings(["AB"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let padded = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let back = read_log(padded.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }
}
