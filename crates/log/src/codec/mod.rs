//! Log codecs: serialization formats for workflow logs.
//!
//! Three formats are provided:
//!
//! * [`flowmark`] — a CSV-like event format modelled on the IBM Flowmark
//!   audit-trail convention the paper's implementation consumed: one
//!   event record `(process, activity, START|END, timestamp, output?)`
//!   per line;
//! * [`seqs`] — one execution per line as whitespace-separated activity
//!   names (the paper's compact `ABCE` notation, generalized to
//!   multi-character names);
//! * [`jsonl`] — one JSON object per execution, carrying full interval
//!   and output information losslessly;
//! * [`xes`] — the IEEE 1849 XML interchange format of the
//!   process-mining ecosystem (ProM, PM4Py), for cross-tool workflows.

pub mod flowmark;
pub mod jsonl;
pub mod seqs;
pub mod stream;
pub mod xes;
