//! Reference XES reader — the original character-based pull parser,
//! kept verbatim so differential tests can pin the zero-copy parser in
//! [`super::xes`] to its exact behaviour: same `WorkflowLog`, same
//! [`IngestReport`] (error byte offsets, line numbers, messages), same
//! terminal errors.
//!
//! This module is test infrastructure, not API: it has no writer, it is
//! `O(chars)` in memory and `O(n²)` in START/END balancing, and it will
//! be removed once the fast parser has survived a few releases. Shared
//! pieces (timestamp conversion, entity unescaping, assembly) are
//! imported from [`super::xes`] so the comparison isolates the parsing
//! itself.

use super::xes::{iso8601_to_millis, unescape};
use super::{CodecStats, IngestReport, RecoveryPolicy};
use crate::{EventKind, EventRecord, LogError, WorkflowLog};
use std::collections::HashMap;
use std::io::BufRead;

/// An XML event from the mini-parser.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Xml {
    Open {
        name: String,
        attrs: HashMap<String, String>,
        self_closing: bool,
    },
    Close(String),
}

struct XmlParser {
    text: Vec<char>,
    pos: usize,
}

impl XmlParser {
    fn new(text: &str) -> Self {
        XmlParser {
            text: text.chars().collect(),
            pos: 0,
        }
    }

    /// 1-based line, 1-based column (in characters), and byte offset of
    /// the current position. O(pos), but only paid on the error paths.
    fn position(&self) -> (usize, usize, u64) {
        let (mut line, mut column, mut bytes) = (1usize, 1usize, 0u64);
        for &c in &self.text[..self.pos.min(self.text.len())] {
            bytes += c.len_utf8() as u64;
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        (line, column, bytes)
    }

    /// An error at the current position: [`LogError::UnexpectedEof`]
    /// when input ran out (truncation), [`LogError::Xml`] with
    /// line/column otherwise.
    fn error(&self, message: impl Into<String>) -> LogError {
        let (line, column, byte_offset) = self.position();
        if self.pos >= self.text.len() {
            LogError::UnexpectedEof {
                byte_offset,
                message: message.into(),
            }
        } else {
            LogError::Xml {
                line,
                column,
                message: message.into(),
            }
        }
    }

    /// After a syntax error in a recovering read: step past the
    /// offending character so the pull loop re-syncs at the next `<`.
    /// Always advances, so a corrupt document cannot loop forever.
    fn resync(&mut self) {
        self.pos += 1;
    }

    /// Next element-open or element-close event, skipping text,
    /// comments, declarations and processing instructions.
    fn next(&mut self) -> Result<Option<Xml>, LogError> {
        loop {
            // Skip character data.
            while self.pos < self.text.len() && self.text[self.pos] != '<' {
                self.pos += 1;
            }
            if self.pos >= self.text.len() {
                return Ok(None);
            }
            // Comment / declaration / PI?
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("<!") {
                self.skip_until(">")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_ws();
                if !self.consume('>') {
                    return Err(self.error("malformed closing tag"));
                }
                return Ok(Some(Xml::Close(name)));
            }
            // Opening tag.
            self.pos += 1;
            let name = self.read_name()?;
            let mut attrs = HashMap::new();
            loop {
                self.skip_ws();
                if self.consume('>') {
                    return Ok(Some(Xml::Open {
                        name,
                        attrs,
                        self_closing: false,
                    }));
                }
                if self.starts_with("/>") {
                    self.pos += 2;
                    return Ok(Some(Xml::Open {
                        name,
                        attrs,
                        self_closing: true,
                    }));
                }
                let key = self.read_name()?;
                self.skip_ws();
                if !self.consume('=') {
                    return Err(self.error(format!("attribute `{key}` missing `=`")));
                }
                self.skip_ws();
                let quote = if self.consume('"') {
                    '"'
                } else if self.consume('\'') {
                    '\''
                } else {
                    return Err(self.error(format!("attribute `{key}` missing quote")));
                };
                let start = self.pos;
                while self.pos < self.text.len() && self.text[self.pos] != quote {
                    self.pos += 1;
                }
                if self.pos >= self.text.len() {
                    return Err(self.error("unterminated attribute value"));
                }
                let raw: String = self.text[start..self.pos].iter().collect();
                self.pos += 1; // closing quote
                let value = unescape(&raw).map_err(|m| self.error(m))?;
                attrs.insert(key, value);
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.text[self.pos..]
            .iter()
            .zip(s.chars())
            .filter(|(a, b)| **a == *b)
            .count()
            == s.len()
    }

    fn skip_until(&mut self, end: &str) -> Result<(), LogError> {
        while self.pos < self.text.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error(format!("unterminated construct (expected `{end}`)")))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn consume(&mut self, c: char) -> bool {
        if self.pos < self.text.len() && self.text[self.pos] == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn read_name(&mut self) -> Result<String, LogError> {
        let start = self.pos;
        while self.pos < self.text.len() {
            let c = self.text[self.pos];
            if c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(self.text[start..self.pos].iter().collect())
    }
}

/// Reference equivalent of [`super::xes::read_log_with`]: same policy
/// semantics, same report, same stats, produced by the original
/// character-based parser.
pub fn read_log_with<R: BufRead>(
    mut reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut raw = Vec::new();
    let read_result = reader.read_to_end(&mut raw);
    stats.bytes_read += raw.len() as u64;
    read_result?;
    let text = match String::from_utf8(raw) {
        Ok(text) => text,
        Err(e) => {
            let offset = e.utf8_error().valid_up_to() as u64;
            if policy.is_strict() {
                let err = LogError::Parse {
                    line: 0,
                    message: format!("input is not valid UTF-8 (first bad byte at {offset})"),
                };
                report.record_error(offset, 0, err.to_string());
                return Err(err);
            }
            report.record_error(offset, 0, "input is not valid UTF-8; decoding lossily");
            report.over_budget(policy)?;
            String::from_utf8_lossy(e.as_bytes()).into_owned()
        }
    };
    let mut parser = XmlParser::new(&text);
    let records = parse_events(&mut parser, policy, stats, report)?;
    let log = if policy.is_strict() {
        WorkflowLog::from_events(&records).map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?
    } else {
        let mut table = crate::ActivityTable::new();
        let assembled = crate::validate::assemble_executions_with(
            &records,
            &mut table,
            crate::validate::AssemblyPolicy::Lenient,
        )
        .map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?;
        report.records_skipped += assembled.diagnostics.len() as u64;
        let mut log = WorkflowLog::with_activities(table);
        for exec in assembled.executions {
            log.push(exec);
        }
        log
    };
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

fn parse_events(
    parser: &mut XmlParser,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<Vec<EventRecord>, LogError> {
    let mut records: Vec<EventRecord> = Vec::new();
    // Parse state.
    let mut trace_name: Option<String> = None;
    let mut trace_counter = 0usize;
    let mut in_event = false;
    let mut event_attrs: HashMap<String, String> = HashMap::new();
    // Open (non-self-closing) elements, innermost last. A non-empty
    // stack at EOF means the document was cut off between records —
    // truncation that clean XML-level parsing would otherwise miss.
    let mut open_elements: Vec<String> = Vec::new();
    loop {
        let xml = match parser.next() {
            Ok(None) => {
                if let Some(innermost) = open_elements.last() {
                    let (line, _, byte_offset) = parser.position();
                    let err = LogError::UnexpectedEof {
                        byte_offset,
                        message: format!("input ends inside an open <{innermost}> element"),
                    };
                    report.record_error(byte_offset, line, err.to_string());
                    if policy.is_strict() {
                        return Err(err);
                    }
                    report.over_budget(policy)?;
                }
                break;
            }
            Ok(Some(xml)) => xml,
            Err(e) => {
                let (line, _, byte_offset) = parser.position();
                report.record_error(byte_offset, line, e.to_string());
                if policy.is_strict() {
                    return Err(e);
                }
                report.over_budget(policy)?;
                // Attribute state is suspect after a syntax error.
                in_event = false;
                parser.resync();
                continue;
            }
        };
        match &xml {
            Xml::Open {
                name,
                self_closing: false,
                ..
            } => open_elements.push(name.clone()),
            Xml::Close(name) => {
                // Pop to the innermost matching element; mismatches are
                // tolerated (recovery resync can drop close tags).
                if let Some(i) = open_elements.iter().rposition(|n| n == name) {
                    open_elements.truncate(i);
                }
            }
            _ => {}
        }
        match xml {
            Xml::Open { name, .. } if name == "trace" => {
                trace_counter += 1;
                trace_name = Some(format!("trace-{trace_counter}"));
            }
            Xml::Open { name, .. } if name == "event" => {
                in_event = true;
                event_attrs.clear();
            }
            Xml::Open { name, attrs, .. }
                if matches!(
                    name.as_str(),
                    "string" | "date" | "int" | "float" | "boolean"
                ) =>
            {
                // Nested attributes are allowed by XES; we only need the
                // top-level key/value, children are skipped naturally.
                let key = attrs.get("key").cloned().unwrap_or_default();
                let value = attrs.get("value").cloned().unwrap_or_default();
                if in_event {
                    event_attrs.insert(key, value);
                } else if key == "concept:name" && trace_name.is_some() {
                    trace_name = Some(value);
                }
            }
            Xml::Close(name) if name == "event" => {
                in_event = false;
                match close_event(&event_attrs, trace_name.as_deref(), &mut records, parser) {
                    Ok(()) => {
                        stats.events_parsed += 1;
                        report.records_parsed += 1;
                    }
                    Err(e) => {
                        let (line, _, byte_offset) = parser.position();
                        report.record_error(byte_offset, line, e.to_string());
                        if policy.is_strict() {
                            return Err(e);
                        }
                        report.records_skipped += 1;
                        report.over_budget(policy)?;
                    }
                }
            }
            Xml::Close(name) if name == "trace" => {
                trace_name = None;
            }
            _ => {}
        }
    }
    Ok(records)
}

/// Turns one closed `<event>` into START/END records. Validates before
/// pushing, so a failed event leaves `records` untouched.
fn close_event(
    event_attrs: &HashMap<String, String>,
    trace_name: Option<&str>,
    records: &mut Vec<EventRecord>,
    parser: &XmlParser,
) -> Result<(), LogError> {
    let case = trace_name.unwrap_or("trace-0").to_string();
    let activity = event_attrs
        .get("concept:name")
        .cloned()
        .ok_or_else(|| parser.error("event without concept:name"))?;
    let stamp = match event_attrs.get("time:timestamp") {
        Some(ts) => iso8601_to_millis(ts).map_err(|message| parser.error(message))?,
        None => records.len() as u64, // ordinal fallback
    };
    let transition = event_attrs
        .get("lifecycle:transition")
        .map(|s| s.to_ascii_lowercase())
        .unwrap_or_else(|| "complete".to_string());
    let output = event_attrs.get("procmine:output").map(|v| {
        v.split(';')
            .filter_map(|x| x.trim().parse::<i64>().ok())
            .collect::<Vec<i64>>()
    });
    match transition.as_str() {
        "start" => records.push(EventRecord {
            process: case,
            activity,
            kind: EventKind::Start,
            time: stamp,
            output: None,
        }),
        // Everything else — complete, and coarse lifecycles like
        // "ate_abort" — closes the instance.
        _ => {
            // If no START is open for this activity in this case,
            // synthesize an instantaneous one.
            let open_starts = records
                .iter()
                .filter(|r| {
                    r.process == case && r.activity == activity && r.kind == EventKind::Start
                })
                .count();
            let closed = records
                .iter()
                .filter(|r| r.process == case && r.activity == activity && r.kind == EventKind::End)
                .count();
            if open_starts == closed {
                records.push(EventRecord {
                    process: case.clone(),
                    activity: activity.clone(),
                    kind: EventKind::Start,
                    time: stamp,
                    output: None,
                });
            }
            records.push(EventRecord {
                process: case,
                activity,
                kind: EventKind::End,
                time: stamp,
                output,
            });
        }
    }
    Ok(())
}
