//! JSON-lines codec: one JSON object per execution, lossless.
//!
//! Each line is an object with the execution id and its instances, with
//! activity names inlined so the file is self-describing:
//!
//! ```json
//! {"id":"p1","instances":[{"activity":"A","start":0,"end":1,"output":[3,4]}]}
//! ```

use super::{CodecStats, CountingReader};
use crate::{ActivityInstance, Execution, LogError, WorkflowLog};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

#[derive(Serialize, Deserialize)]
struct JsonInstance {
    activity: String,
    start: u64,
    end: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    output: Option<Vec<i64>>,
}

#[derive(Serialize, Deserialize)]
struct JsonExecution {
    id: String,
    instances: Vec<JsonInstance>,
}

/// Writes a log as JSON-lines.
pub fn write_log<W: Write>(log: &WorkflowLog, mut writer: W) -> Result<(), LogError> {
    for exec in log.executions() {
        let je = JsonExecution {
            id: exec.id.clone(),
            instances: exec
                .instances()
                .iter()
                .map(|i| JsonInstance {
                    activity: log.activities().name(i.activity).to_string(),
                    start: i.start,
                    end: i.end,
                    output: i.output.clone(),
                })
                .collect(),
        };
        serde_json::to_writer(&mut writer, &je)?;
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a JSON-lines log. Blank lines are skipped.
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_instrumented(reader, &mut CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, activity instances
/// parsed, and executions assembled accumulate into `stats`.
pub fn read_log_instrumented<R: BufRead>(
    reader: R,
    stats: &mut CodecStats,
) -> Result<WorkflowLog, LogError> {
    let mut counting = CountingReader::new(reader);
    let mut executions = Vec::new();
    let mut table = crate::ActivityTable::new();
    for (lineno, line) in (&mut counting).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let je: JsonExecution = serde_json::from_str(&line).map_err(|e| LogError::Parse {
            line: lineno + 1,
            message: e.to_string(),
        })?;
        stats.events_parsed += je.instances.len() as u64;
        let instances: Vec<ActivityInstance> = je
            .instances
            .into_iter()
            .map(|i| ActivityInstance {
                activity: table.intern(&i.activity),
                start: i.start,
                end: i.end,
                output: i.output,
            })
            .collect();
        executions.push(Execution::new(je.id, instances)?);
    }
    let mut log = WorkflowLog::with_activities(table);
    for e in executions {
        log.push(e);
    }
    stats.bytes_read += counting.bytes();
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventRecord;

    #[test]
    fn lossless_round_trip() {
        let records = vec![
            EventRecord::start("p1", "A", 0),
            EventRecord::start("p1", "B", 1), // overlaps A
            EventRecord::end("p1", "A", 2, Some(vec![5, -3])),
            EventRecord::end("p1", "B", 4, None),
        ];
        let log = WorkflowLog::from_events(&records).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        let exec = &back.executions()[0];
        assert_eq!(exec.instances().len(), 2);
        assert_eq!(exec.instances()[0].start, 0);
        assert_eq!(exec.instances()[0].end, 2);
        assert_eq!(exec.instances()[0].output.as_deref(), Some(&[5i64, -3][..]));
        // Overlap is preserved — no precedence pair between A and B.
        assert_eq!(exec.precedence_pairs().count(), 0);
    }

    #[test]
    fn rejects_bad_json() {
        let result = read_log("{not json".as_bytes());
        assert!(matches!(result, Err(LogError::Parse { line: 1, .. })));
    }

    #[test]
    fn skips_blank_lines() {
        let log = WorkflowLog::from_strings(["AB"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let padded = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let back = read_log(padded.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }
}
