//! Parallel execution strategies for the pipeline stages. Algorithm 2's
//! two heavy passes — ordered-pair counting (step 2) and per-execution
//! transitive-reduction marking (step 5) — are embarrassingly parallel
//! over executions; this module fans them out over scoped threads with
//! per-thread accumulators merged at the join barriers, reusing the
//! serial per-execution bodies ([`count_one_execution`] /
//! [`mark_one_execution`]) so there is exactly one implementation of
//! each stage's work.
//!
//! A [`MineSession`](crate::MineSession) with `threads > 1` routes the
//! counting and marking stages through [`parallel_count`] /
//! [`parallel_mark`]; the SCC and global-transitive-reduction stages
//! additionally switch to the graph crate's parallel algorithms once
//! the vertex count reaches [`PARALLEL_GRAPH_MIN_VERTICES`]. The
//! results are identical to the serial strategy for any thread count —
//! counts merge by addition, marks by union, both order-independent.
//!
//! The paper's cost model has `m ≫ n`, so both passes are linear in the
//! number of executions; at the Table 1 scale (10 000 executions) the
//! speedup is near-linear in cores (see the `parallel_scaling` bench
//! binary).

use crate::general_dag::{
    count_one_execution, mark_one_execution, pair_observations_range, record_arena_telemetry,
    MarkScratch, OrderObservations, VertexLog,
};
use crate::limits::Deadline;
use crate::obs::Registry;
use crate::session::MineSession;
use crate::telemetry::{stage_end, stage_start, MetricsSink, MinerMetrics, Stage, WallStage};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::AdjMatrix;
use procmine_log::WorkflowLog;

/// Vertex count below which the graph-level parallel algorithms
/// (per-component SCC, row-parallel transitive reduction) are not worth
/// their spawn overhead; smaller graphs keep the serial bodies even in
/// a multi-threaded session. Overridable at run time through the
/// `PROCMINE_PARALLEL_MIN_VERTICES` environment variable (see
/// [`parallel_graph_min_vertices`]), so the threshold can be tuned
/// against real workloads without a rebuild.
pub(crate) const PARALLEL_GRAPH_MIN_VERTICES: usize = 256;

/// The effective graph-parallelism threshold: the
/// `PROCMINE_PARALLEL_MIN_VERTICES` override when set and valid (a
/// positive integer), [`PARALLEL_GRAPH_MIN_VERTICES`] otherwise. Read
/// once per process; an invalid value warns on stderr and keeps the
/// default rather than silently changing strategy.
pub(crate) fn parallel_graph_min_vertices() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let raw = std::env::var("PROCMINE_PARALLEL_MIN_VERTICES").ok();
        match parse_threshold_override(raw.as_deref(), PARALLEL_GRAPH_MIN_VERTICES) {
            Ok(v) => v,
            Err(bad) => {
                eprintln!(
                    "warning: ignoring PROCMINE_PARALLEL_MIN_VERTICES=`{bad}` \
                     (expected a positive integer); using {PARALLEL_GRAPH_MIN_VERTICES}"
                );
                PARALLEL_GRAPH_MIN_VERTICES
            }
        }
    })
}

/// Validates one threshold override: `None` keeps the default, a
/// positive integer replaces it, anything else is returned as the
/// offending string. Pure, so tests cover the validation without
/// mutating process environment (env reads race across parallel
/// tests).
pub(crate) fn parse_threshold_override(raw: Option<&str>, default: usize) -> Result<usize, String> {
    match raw {
        None => Ok(default),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(v) if v > 0 => Ok(v),
            _ => Err(s.to_string()),
        },
    }
}

/// Parallel Algorithm 2: identical output to
/// [`mine_general_dag`](crate::mine_general_dag), with the heavy stages
/// fanned out over `threads` scoped threads. Convenience wrapper for a
/// default [`MineSession`](crate::MineSession) with
/// [`with_threads`](crate::MineSession::with_threads) set;
/// `threads == 0` is treated as 1.
pub fn mine_general_dag_parallel(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
) -> Result<MinedModel, MineError> {
    crate::general_dag::mine_general_dag_in(
        &mut MineSession::new().with_threads(threads),
        log,
        options,
    )
}

/// Merges per-worker results at a join barrier: every handle is joined
/// even after an error so no worker outlives the scope; a worker panic
/// is re-raised as-is, and the first worker error wins.
fn join_workers<'scope, T, S: MetricsSink>(
    handles: Vec<std::thread::ScopedJoinHandle<'scope, Result<(T, MinerMetrics), MineError>>>,
    sink: &mut S,
    mut fold: impl FnMut(T),
) -> Result<(), MineError> {
    let mut first_err = None;
    for h in handles {
        let (local, lm) = match h.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
                continue;
            }
            Ok(Ok(parts)) => parts,
        };
        fold(local);
        if S::ENABLED {
            sink.record(|m| m.merge(&lm));
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The parallel [`Stage::CountPairs`] strategy: per-thread count
/// matrices built by the serial [`count_one_execution`] body, merged by
/// addition at the join barrier. Each worker accumulates its own
/// [`MinerMetrics`] (the sink itself never crosses a thread boundary)
/// and records its span into a private per-thread trace buffer (its own
/// lane — see [`Tracer::worker`]), flushed at the join. A [`WallStage`]
/// timer around the barrier records elapsed wall time, so CPU-ns /
/// wall-ns per stage is the parallel efficiency.
pub(crate) fn parallel_count<S: MetricsSink>(
    vlog: &VertexLog<'_>,
    threads: usize,
    deadline: Deadline,
    sink: &mut S,
    tracer: &Tracer,
    reg: &Registry,
) -> Result<OrderObservations, MineError> {
    let _span = tracer.span_cat(Stage::CountPairs.span_name(), "miner");
    deadline.check()?;
    let reg_started = reg.start();
    let vlog = *vlog;
    let n = vlog.n;
    let m_execs = vlog.cols.exec_count();
    let chunk = m_execs.div_ceil(threads).max(1);
    let wall = WallStage::start::<S>(Stage::CountPairs);
    let mut total = OrderObservations::new(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m_execs)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(m_execs);
                scope.spawn(
                    move || -> Result<(OrderObservations, MinerMetrics), MineError> {
                        let buf = tracer.worker();
                        let _span = buf.span_cat("count_pairs.worker", "miner");
                        let started = stage_start::<S>();
                        let mut local = OrderObservations::new(n);
                        for i in lo..hi {
                            deadline.check()?;
                            count_one_execution(n, vlog.cols.exec(i), &mut local);
                        }
                        let mut lm = MinerMetrics::new();
                        if S::ENABLED {
                            lm.executions_scanned = (hi - lo) as u64;
                            lm.pairs_counted = pair_observations_range(vlog.cols, lo, hi);
                            stage_end(&mut lm, Stage::CountPairs, started);
                        }
                        Ok((local, lm))
                    },
                )
            })
            .collect();
        join_workers(handles, sink, |local: OrderObservations| {
            for (t, l) in total.ordered.iter_mut().zip(local.ordered) {
                *t += l;
            }
            for (t, l) in total.overlap.iter_mut().zip(local.overlap) {
                *t += l;
            }
        })
    })?;
    wall.finish(sink);
    reg.stage_latency(Stage::CountPairs)
        .observe_since(reg_started);
    Ok(total)
}

/// The parallel [`Stage::Reduce`] strategy: per-thread marked matrices
/// built by the serial [`mark_one_execution`] body, merged by union at
/// the join barrier. Worker telemetry and tracing mirror
/// [`parallel_count`].
pub(crate) fn parallel_mark<S: MetricsSink>(
    vlog: &VertexLog<'_>,
    g: &AdjMatrix,
    threads: usize,
    deadline: Deadline,
    sink: &mut S,
    tracer: &Tracer,
    reg: &Registry,
) -> Result<AdjMatrix, MineError> {
    let _span = tracer.span_cat(Stage::Reduce.span_name(), "miner");
    deadline.check()?;
    let reg_started = reg.start();
    let vlog = *vlog;
    let n = vlog.n;
    let m_execs = vlog.cols.exec_count();
    let chunk = m_execs.div_ceil(threads).max(1);
    let wall = WallStage::start::<S>(Stage::Reduce);
    let mut total = AdjMatrix::new(n);
    let mut arena_total = procmine_graph::ArenaStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m_execs)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(m_execs);
                scope.spawn(
                    move || -> Result<((AdjMatrix, procmine_graph::ArenaStats), MinerMetrics), MineError> {
                        let buf = tracer.worker();
                        let _span = buf.span_cat("transitive_reduction.worker", "miner");
                        let started = stage_start::<S>();
                        let mut local = AdjMatrix::new(n);
                        let mut scratch = MarkScratch::new();
                        for i in lo..hi {
                            deadline.check()?;
                            mark_one_execution(g, vlog.cols.exec(i), &mut local, &mut scratch);
                        }
                        let mut lm = MinerMetrics::new();
                        if S::ENABLED {
                            stage_end(&mut lm, Stage::Reduce, started);
                        }
                        Ok(((local, scratch.arena_stats()), lm))
                    },
                )
            })
            .collect();
        join_workers(
            handles,
            sink,
            |(local, stats): (AdjMatrix, procmine_graph::ArenaStats)| {
                for (u, v) in local.edges() {
                    total.add_edge(u, v);
                }
                arena_total.merge(&stats);
            },
        )
    })?;
    record_arena_telemetry(&arena_total, sink, reg);
    wall.finish(sink);
    reg.stage_latency(Stage::Reduce).observe_since(reg_started);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_general_dag;

    fn assert_matches_serial(strings: &[&str], threads: usize) {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), threads).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b, "threads={threads}");
        // Edge support must match too (counts merged correctly).
        let mut sa = serial.edge_support().to_vec();
        let mut sb = parallel.edge_support().to_vec();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn matches_serial_at_various_thread_counts() {
        let strings = ["ABCF", "ACDF", "ADEF", "AECF", "ABCF", "ACDF"];
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_matches_serial(&strings, threads);
        }
    }

    #[test]
    fn matches_serial_on_larger_random_workload() {
        use procmine_sim::{randdag, walk};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let model = randdag::random_dag(
            &randdag::RandomDagConfig {
                vertices: 20,
                edge_prob: 0.4,
            },
            &mut rng,
        )
        .unwrap();
        let log = walk::random_walk_log(&model, 500, &mut rng).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), 4).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs_like_serial() {
        assert!(matches!(
            mine_general_dag_parallel(&WorkflowLog::new(), &MinerOptions::default(), 4),
            Err(MineError::EmptyLog)
        ));
        let cyclic = WorkflowLog::from_strings(["ABAB"]).unwrap();
        assert!(matches!(
            mine_general_dag_parallel(&cyclic, &MinerOptions::default(), 4),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
    }

    #[test]
    fn merged_counters_equal_serial() {
        use crate::general_dag::mine_general_dag_in;
        use crate::telemetry::MinerMetrics;
        let strings = ["ABCF", "ACDF", "ADEF", "AECF", "ABCF", "ACDF"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let mut serial = MinerMetrics::new();
        let mut session = MineSession::new().with_sink(&mut serial);
        mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
        drop(session);
        for threads in [1, 2, 3, 8, 64] {
            let mut parallel = MinerMetrics::new();
            let mut session = MineSession::new()
                .with_threads(threads)
                .with_sink(&mut parallel);
            mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
            drop(session);
            assert_eq!(
                serial.counters(),
                parallel.counters(),
                "threads={threads}: per-thread metrics must merge to the serial totals"
            );
        }
    }

    #[test]
    fn wall_timers_cover_only_the_barrier_stages() {
        use crate::general_dag::mine_general_dag_in;
        use procmine_sim::{randdag, walk};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let model = randdag::random_dag(
            &randdag::RandomDagConfig {
                vertices: 15,
                edge_prob: 0.4,
            },
            &mut rng,
        )
        .unwrap();
        let log = walk::random_walk_log(&model, 400, &mut rng).unwrap();
        let mut m = MinerMetrics::new();
        let mut session = MineSession::new().with_threads(2).with_sink(&mut m);
        mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
        drop(session);
        // The two fan-out/join barriers record wall time; serial stages
        // have no barrier and stay at zero wall.
        assert!(m.wall_nanos(Stage::CountPairs) > 0);
        assert!(m.wall_nanos(Stage::Reduce) > 0);
        assert_eq!(m.wall_nanos(Stage::Lower), 0);
        assert_eq!(m.wall_nanos(Stage::Prune), 0);
        assert_eq!(m.wall_nanos(Stage::SccRemoval), 0);
        assert_eq!(m.wall_nanos(Stage::Assemble), 0);
    }

    #[test]
    fn threshold_override_parses_and_validates() {
        // Pure validation — no env mutation (racy across parallel
        // tests); `parallel_graph_min_vertices` is just a cached read
        // of this through the process environment.
        assert_eq!(parse_threshold_override(None, 256), Ok(256));
        assert_eq!(parse_threshold_override(Some("64"), 256), Ok(64));
        assert_eq!(parse_threshold_override(Some(" 1024 "), 256), Ok(1024));
        assert_eq!(
            parse_threshold_override(Some("0"), 256),
            Err("0".to_string()),
            "zero would disable the serial fallback entirely"
        );
        assert_eq!(
            parse_threshold_override(Some("-3"), 256),
            Err("-3".to_string())
        );
        assert_eq!(
            parse_threshold_override(Some("lots"), 256),
            Err("lots".to_string())
        );
        assert!(parallel_graph_min_vertices() > 0);
    }

    #[test]
    fn respects_threshold() {
        let mut strings = vec!["ABC"; 10];
        strings.push("ACB");
        let log = WorkflowLog::from_strings(strings).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::with_threshold(2)).unwrap();
        let parallel =
            mine_general_dag_parallel(&log, &MinerOptions::with_threshold(2), 3).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
