//! End-to-end conditions mining: one learned condition per model edge.

use crate::telemetry::ClassifyMetrics;
use crate::{edge_training_set, rules_of, Dataset, DecisionTree, Rule, TreeConfig};
use procmine_core::{MetricsSink, MineSession, MinedModel};
use procmine_log::ActivityId;
use procmine_log::WorkflowLog;
use std::time::Instant;

/// The learned condition for one edge of a mined model.
#[derive(Debug, Clone)]
pub struct LearnedCondition {
    /// Source activity name.
    pub from: String,
    /// Target activity name.
    pub to: String,
    /// The fitted tree (`None` when the log never records an output for
    /// the source activity — nothing to learn from, as with the paper's
    /// Flowmark logs, which "do not log the input and output parameters").
    pub tree: Option<DecisionTree>,
    /// Positive rules extracted from the tree.
    pub rules: Vec<Rule>,
    /// Training accuracy of the tree (1.0 when no tree was fit).
    pub train_accuracy: f64,
    /// `(negative, positive)` training examples.
    pub support: (usize, usize),
}

impl LearnedCondition {
    /// Predicts whether the edge fires for a given source output.
    /// Without a tree, falls back to the majority class of the training
    /// support (or `true` when even that is unknown — an edge with no
    /// evidence at all behaves unconditionally).
    pub fn predict(&self, output: &[i64]) -> bool {
        match &self.tree {
            Some(t) => t.predict(output),
            None => self.support.1 >= self.support.0,
        }
    }
}

/// Learns a condition for every edge of `model` from `log` (§7).
///
/// The model's node indices must align with the log's activity table —
/// true for models mined from that log.
pub fn learn_edge_conditions(
    model: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
) -> Vec<LearnedCondition> {
    learn_edge_conditions_in(&mut MineSession::new(), model, log, cfg)
}

/// [`learn_edge_conditions`] inside a [`MineSession`]: counts edges,
/// extracted training rows, evaluated splits, fitted trees and their
/// maximum depth, plus the end-to-end learn time, into the session's
/// sink (see [`ClassifyMetrics`]), and a `learn_conditions` span into
/// its tracer. With the default session this is the plain twin.
pub fn learn_edge_conditions_in<S: MetricsSink<ClassifyMetrics>>(
    session: &mut MineSession<S>,
    model: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
) -> Vec<LearnedCondition> {
    let (sink, tracer) = session.handles();
    let _root = tracer.span_cat("learn_conditions", "classify");
    let started = S::ENABLED.then(Instant::now);
    let mut out = Vec::with_capacity(model.edge_count());
    for (u, v) in model.graph().edges() {
        let ua = ActivityId::from_index(u.index());
        let va = ActivityId::from_index(v.index());
        let from = model.name_of(u).to_string();
        let to = model.name_of(v).to_string();
        let ds: Option<Dataset> = edge_training_set(log, ua, va);
        if S::ENABLED {
            let rows = ds.as_ref().map_or(0, |d| d.len() as u64);
            let no_outputs = u64::from(ds.is_none());
            sink.record(|m| {
                m.edges_considered += 1;
                m.rows_extracted += rows;
                m.edges_without_outputs += no_outputs;
            });
        }
        match ds {
            Some(ds) => {
                let tree = DecisionTree::fit_with(&ds, cfg, sink);
                let rules = rules_of(&tree);
                let support = (ds.len() - ds.positives(), ds.positives());
                out.push(LearnedCondition {
                    from,
                    to,
                    train_accuracy: tree.accuracy(&ds),
                    rules,
                    tree: Some(tree),
                    support,
                });
            }
            None => {
                // No outputs: count co-occurrence support only.
                let (mut neg, mut pos) = (0usize, 0usize);
                for exec in log.executions() {
                    if exec.contains(ua) {
                        if exec.contains(va) {
                            pos += 1;
                        } else {
                            neg += 1;
                        }
                    }
                }
                out.push(LearnedCondition {
                    from,
                    to,
                    tree: None,
                    rules: Vec::new(),
                    train_accuracy: 1.0,
                    support: (neg, pos),
                });
            }
        }
    }
    if let Some(s) = started {
        let nanos = s.elapsed().as_nanos() as u64;
        sink.record(|m| m.learn_nanos += nanos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_core::{mine_general_dag, MinerOptions};
    use procmine_sim::{engine, presets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_order_fulfillment_conditions() {
        let model = presets::order_fulfillment();
        let mut rng = StdRng::seed_from_u64(2025);
        let log = engine::generate_log(&model, 400, &mut rng).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());

        let find = |f: &str, t: &str| {
            learned
                .iter()
                .find(|c| c.from == f && c.to == t)
                .unwrap_or_else(|| panic!("no learned condition for {f}->{t}"))
        };

        // Assess → ManagerApproval fires iff amount (o[0]) > 500.
        let approval = find("Assess", "ManagerApproval");
        assert!(
            approval.train_accuracy > 0.98,
            "acc={}",
            approval.train_accuracy
        );
        assert!(approval.predict(&[800, 10]));
        assert!(!approval.predict(&[100, 10]));

        // Assess → FraudCheck fires iff risk (o[1]) > 70.
        let fraud = find("Assess", "FraudCheck");
        assert!(fraud.train_accuracy > 0.98);
        assert!(fraud.predict(&[100, 90]));
        assert!(!fraud.predict(&[100, 10]));
    }

    #[test]
    fn session_learning_matches_plain() {
        let model = presets::order_fulfillment();
        let mut rng = StdRng::seed_from_u64(7);
        let log = engine::generate_log(&model, 200, &mut rng).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();

        let plain = learn_edge_conditions(&mined, &log, &TreeConfig::default());
        let mut metrics = ClassifyMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let instrumented =
            learn_edge_conditions_in(&mut session, &mined, &log, &TreeConfig::default());
        drop(session);

        assert_eq!(plain.len(), instrumented.len());
        let mut max_depth = 0u64;
        let mut rows = 0u64;
        for (a, b) in plain.iter().zip(&instrumented) {
            assert_eq!((&a.from, &a.to, a.support), (&b.from, &b.to, b.support));
            assert_eq!(a.train_accuracy, b.train_accuracy);
            assert_eq!(a.tree.is_some(), b.tree.is_some());
            if let Some(t) = &b.tree {
                max_depth = max_depth.max(t.depth() as u64);
                rows += (b.support.0 + b.support.1) as u64;
            }
        }

        assert_eq!(metrics.edges_considered, mined.edge_count() as u64);
        assert_eq!(
            metrics.trees_fitted + metrics.edges_without_outputs,
            metrics.edges_considered
        );
        assert_eq!(metrics.max_tree_depth, max_depth);
        assert_eq!(metrics.rows_extracted, rows);
        assert!(metrics.splits_evaluated > 0);
        assert!(metrics.learn_nanos > 0);
    }

    #[test]
    fn session_counts_edges_without_outputs() {
        let log = procmine_log::WorkflowLog::from_strings(["ABC", "ABC", "AC"]).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut metrics = ClassifyMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        learn_edge_conditions_in(&mut session, &mined, &log, &TreeConfig::default());
        drop(session);
        assert_eq!(metrics.edges_without_outputs, metrics.edges_considered);
        assert_eq!(metrics.trees_fitted, 0);
        assert_eq!(metrics.rows_extracted, 0);
        assert_eq!(metrics.splits_evaluated, 0);
    }

    #[test]
    fn edges_without_outputs_get_support_only() {
        let log = procmine_log::WorkflowLog::from_strings(["ABC", "ABC", "AC"]).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());
        for c in &learned {
            assert!(c.tree.is_none(), "no outputs anywhere in this log");
        }
        let ab = learned
            .iter()
            .find(|c| c.from == "A" && c.to == "B")
            .unwrap();
        assert_eq!(ab.support, (1, 2));
        assert!(ab.predict(&[]), "majority of A-executions take B");
    }
}
