//! A fixed-capacity bitset over `u64` blocks.
//!
//! Used as the row type of [`crate::AdjMatrix`] and as the descendant
//! sets in the Appendix-A transitive-reduction algorithm, where the
//! dominant operation is `descendants(v) |= descendants(succ)` — a
//! block-wise union.

use serde::{Deserialize, Serialize};
use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity set of `usize` values in `0..len`.
///
/// All operations panic if an index is out of range; capacity is fixed at
/// construction (the mining algorithms know `n` up front).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for values in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// The capacity (exclusive upper bound of storable values).
    pub fn capacity(&self) -> usize {
        self.len
    }

    #[inline]
    fn check(&self, bit: usize) {
        assert!(
            bit < self.len,
            "bit index {bit} out of range for BitSet of capacity {}",
            self.len
        );
    }

    /// Inserts `bit`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        self.check(bit);
        let (blk, mask) = (bit / BITS, 1u64 << (bit % BITS));
        let was = self.blocks[blk] & mask != 0;
        self.blocks[blk] |= mask;
        !was
    }

    /// Removes `bit`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        self.check(bit);
        let (blk, mask) = (bit / BITS, 1u64 << (bit % BITS));
        let was = self.blocks[blk] & mask != 0;
        self.blocks[blk] &= !mask;
        was
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        self.check(bit);
        self.blocks[bit / BITS] & (1u64 << (bit % BITS)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` if the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Builds a set of capacity `len` from a raw block slice (e.g. an
    /// [`crate::AdjMatrix`] row view). Panics if `words` is not exactly
    /// `ceil(len / 64)` blocks; bits at positions `>= len` must be
    /// clear.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(BITS),
            "block count mismatch for BitSet of capacity {len}"
        );
        BitSet {
            blocks: words.to_vec(),
            len,
        }
    }

    /// The backing blocks, least-significant word first.
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    /// `self |= words` for a raw block slice of the same width (e.g. an
    /// [`crate::AdjMatrix`] row view). Panics on width mismatch.
    pub fn union_with_words(&mut self, words: &[u64]) {
        assert_eq!(self.blocks.len(), words.len(), "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(words) {
            *a |= b;
        }
    }

    /// `self |= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self &= other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self &= !other` (set difference). Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// `true` if the sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates the elements in increasing order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to just fit the maximum value.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for v in values {
            set.insert(v);
        }
        set
    }
}

/// Iterator over the elements of a [`BitSet`], in increasing order.
pub struct Ones<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.block * BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(63) && !s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for v in [5usize, 0, 199, 64, 63, 65] {
            s.insert(v);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn empty_iteration_and_zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let s = BitSet::new(100);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for v in [1usize, 2, 3, 70] {
            a.insert(v);
        }
        for v in [2usize, 3, 4, 99] {
            b.insert(v);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(a.intersects(&b));
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 9]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
    }
}
