//! Concrete generators.

use crate::chacha::{BlockRng, ChaCha12Core};
use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha12, matching rand 0.8's `StdRng`
/// word-for-word for identical seeds.
#[derive(Clone, Debug)]
pub struct StdRng(BlockRng);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(BlockRng::new(ChaCha12Core::from_seed(seed)))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Alias kept for API compatibility; the real crate's `SmallRng` is a
/// different algorithm, but nothing in this workspace relies on its
/// exact stream.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    // Bit-compatibility with the real rand 0.8 StdRng is verified
    // end-to-end by the repo's RNG-dependent golden files
    // (tests/golden), which were generated with the real crate.

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
