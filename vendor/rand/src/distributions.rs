//! Standard and uniform distributions, reproducing rand 0.8's exact
//! sampling algorithms so seeded value streams match the real crate.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types samplable with `rng.gen::<T>()` (rand's `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 on 64-bit targets samples usize as u64.
        rng.next_u64() as usize
    }
}
impl StandardSample for i32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl StandardSample for i64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one u32, test the sign bit.
        (rng.next_u32() as i32) < 0
    }
}
impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 high bits scaled to [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply: `(high, low)` words of `a * b`.
trait WideMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

macro_rules! wmul_impl {
    ($ty:ty, $wide:ty, $bits:expr) => {
        impl WideMul for $ty {
            #[inline]
            fn wmul(self, other: Self) -> (Self, Self) {
                let tmp = (self as $wide) * (other as $wide);
                ((tmp >> $bits) as $ty, tmp as $ty)
            }
        }
    };
}
wmul_impl!(u32, u64, 32);
wmul_impl!(u64, u128, 64);
wmul_impl!(usize, u128, 64); // 64-bit targets

macro_rules! uniform_int_impl {
    ($fname:ident, $ty:ty, $uty:ty) => {
        /// rand 0.8 `UniformInt::sample_single_inclusive`: widening-
        /// multiply rejection sampling with a range-specific zone.
        #[inline]
        fn $fname<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
            let range = (high.wrapping_sub(low) as $uty).wrapping_add(1);
            if range == 0 {
                // The full integer range: any sample is uniform.
                return <$uty as StandardSample>::sample_standard(rng) as $ty;
            }
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v = <$uty as StandardSample>::sample_standard(rng);
                let (hi, lo) = v.wmul(range);
                if lo <= zone {
                    return low.wrapping_add(hi as $ty);
                }
            }
        }

        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                $fname(self.start, self.end - 1, rng)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                $fname(low, high, rng)
            }
        }
    };
}

uniform_int_impl!(sample_u32, u32, u32);
uniform_int_impl!(sample_i32, i32, u32);
uniform_int_impl!(sample_u64, u64, u64);
uniform_int_impl!(sample_i64, i64, u64);
uniform_int_impl!(sample_usize, usize, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // rand 0.8 `UniformFloat::sample_single`:
        // value0_1 * scale + low, with scale = high - low.
        let scale = self.end - self.start;
        let value0_1 = f64::sample_standard(rng);
        value0_1 * scale + self.start
    }
}

/// Explicit distribution objects usable with `rng.sample(..)`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample_dist<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// rand 0.8's Bernoulli distribution: probability scaled to 2⁶⁴.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p_int: u64,
}

/// Error for out-of-range Bernoulli probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BernoulliError;

const ALWAYS_TRUE: u64 = u64::MAX;
// 2^64 as f64 (p is scaled by 2 * 2^63 to stay in f64 range).
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Creates a Bernoulli distribution returning `true` with
    /// probability `p`.
    #[inline]
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError);
        }
        Ok(Bernoulli {
            p_int: (p * SCALE) as u64,
        })
    }

    /// Samples the distribution.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        let v: u64 = rng.gen();
        v < self.p_int
    }
}

impl Distribution<bool> for Bernoulli {
    #[inline]
    fn sample_dist<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        self.sample(rng)
    }
}

/// The standard distribution as a unit struct, for
/// `rng.sample(Standard)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl<T: StandardSample> Distribution<T> for Standard {
    #[inline]
    fn sample_dist<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
