//! Baseline: finite-state-machine process discovery (k-tails).
//!
//! The paper's related-work section positions process graphs against
//! the FSM-based discovery of Cook & Wolf [CW95, CW96], whose RNet/
//! k-tails methods come from Biermann & Feldman's classic grammar
//! inference. The paper's §1 argument is structural: for the parallel
//! process `{S→A, A→E, S→B, B→E}` with executions `SABE` and `SBAE`,
//! "the automaton that accepts these two strings is a quite different
//! structure … An activity appears only once in a process graph as a
//! vertex label, whereas the same token (activity) may appear multiple
//! times in an automaton."
//!
//! This module implements the k-tails baseline so that claim can be
//! *measured*: [`ktail`] builds the automaton whose states are
//! equivalence classes of prefixes with identical k-futures, and
//! [`Automaton::token_duplication`] counts how often each activity
//! labels more than one transition — the blow-up process graphs avoid.
//! The `baseline_fsm` experiment binary compares model sizes on the
//! paper's workloads.

use procmine_log::{ActivityId, WorkflowLog};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A discovered finite-state machine. State 0 is initial; transitions
/// are deterministic in the merged-prefix construction only if the
/// k-future equivalence happens to be right-invariant on the log.
#[derive(Debug, Clone)]
pub struct Automaton {
    state_count: usize,
    /// `(from_state, activity) → to_state`, sorted for determinism.
    transitions: BTreeMap<(usize, ActivityId), BTreeSet<usize>>,
    accepting: BTreeSet<usize>,
}

impl Automaton {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of transitions (edges of the automaton graph, counting
    /// multi-target nondeterministic entries individually).
    pub fn transition_count(&self) -> usize {
        self.transitions.values().map(BTreeSet::len).sum()
    }

    /// Accepting states (ends of observed traces).
    pub fn accepting_states(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// `true` if no `(state, activity)` pair has more than one target.
    pub fn is_deterministic(&self) -> bool {
        self.transitions.values().all(|t| t.len() == 1)
    }

    /// How many distinct transitions each activity labels — the §1
    /// duplication argument: in a process graph every activity labels
    /// exactly one vertex, in an automaton the same token may appear on
    /// many transitions. Returns `(activity, transition_count)` for
    /// activities appearing more than once.
    pub fn token_duplication(&self) -> Vec<(ActivityId, usize)> {
        let mut counts: HashMap<ActivityId, usize> = HashMap::new();
        for (&(_, a), targets) in &self.transitions {
            *counts.entry(a).or_insert(0) += targets.len();
        }
        let mut dup: Vec<(ActivityId, usize)> =
            counts.into_iter().filter(|&(_, c)| c > 1).collect();
        dup.sort_by_key(|&(a, _)| a);
        dup
    }

    /// `true` if the automaton accepts the activity sequence (follows
    /// any nondeterministic branch).
    pub fn accepts(&self, seq: &[ActivityId]) -> bool {
        let mut states: BTreeSet<usize> = BTreeSet::from([0]);
        for &a in seq {
            let mut next = BTreeSet::new();
            for &s in &states {
                if let Some(targets) = self.transitions.get(&(s, a)) {
                    next.extend(targets);
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        states.iter().any(|s| self.accepting.contains(s))
    }
}

/// Builds a k-tails automaton from the log: prefixes of observed traces
/// are states, and two prefixes merge when the sets of suffixes of
/// length ≤ `k` observed after them are equal. `k = 0` merges
/// everything into one state; large `k` approaches the prefix-tree
/// acceptor.
pub fn ktail(log: &WorkflowLog, k: usize) -> Automaton {
    let traces: Vec<Vec<ActivityId>> = log.executions().iter().map(|e| e.sequence()).collect();

    // Enumerate all prefixes (including the empty prefix and full
    // traces) and collect each prefix's k-future set.
    type Future = BTreeSet<Vec<ActivityId>>;
    let mut futures: BTreeMap<Vec<ActivityId>, Future> = BTreeMap::new();
    let mut is_end: BTreeSet<Vec<ActivityId>> = BTreeSet::new();
    for t in &traces {
        for cut in 0..=t.len() {
            let prefix = t[..cut].to_vec();
            let suffix = &t[cut..];
            let horizon = suffix.len().min(k);
            futures
                .entry(prefix.clone())
                .or_default()
                .insert(suffix[..horizon].to_vec());
            if cut == t.len() {
                is_end.insert(prefix);
            }
        }
    }

    // Merge prefixes with identical futures.
    let mut class_of_future: HashMap<&Future, usize> = HashMap::new();
    let mut class_of_prefix: BTreeMap<&Vec<ActivityId>, usize> = BTreeMap::new();
    // Ensure the empty prefix's class is state 0.
    let empty = Vec::new();
    let empty_future = futures.get(&empty).cloned().unwrap_or_default();
    let mut next_class = 0usize;
    for (prefix, future) in &futures {
        let class = *class_of_future.entry(future).or_insert_with(|| {
            let c = next_class;
            next_class += 1;
            c
        });
        class_of_prefix.insert(prefix, class);
    }
    // Swap classes so the empty prefix is state 0.
    let empty_class = class_of_future.get(&empty_future).copied().unwrap_or(0);

    let renumber = |c: usize| -> usize {
        if c == empty_class {
            0
        } else if c == 0 {
            empty_class
        } else {
            c
        }
    };

    let mut transitions: BTreeMap<(usize, ActivityId), BTreeSet<usize>> = BTreeMap::new();
    let mut accepting = BTreeSet::new();
    for t in &traces {
        for cut in 0..t.len() {
            let from = renumber(class_of_prefix[&t[..cut].to_vec()]);
            let to = renumber(class_of_prefix[&t[..cut + 1].to_vec()]);
            transitions.entry((from, t[cut])).or_default().insert(to);
        }
        accepting.insert(renumber(class_of_prefix[&t.to_vec()]));
    }

    Automaton {
        state_count: next_class,
        transitions,
        accepting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(log: &WorkflowLog, s: &str) -> Vec<ActivityId> {
        s.chars()
            .map(|c| log.activities().id(&c.to_string()).unwrap())
            .collect()
    }

    #[test]
    fn paper_section1_parallel_example() {
        // Executions SABE and SBAE of the parallel process: the process
        // graph has 4 vertices and 4 edges with each activity appearing
        // once; the k-tails automaton duplicates the A and B tokens.
        let log = WorkflowLog::from_strings(["SABE", "SBAE"]).unwrap();
        let fsm = ktail(&log, 2);
        assert!(fsm.accepts(&seq(&log, "SABE")));
        assert!(fsm.accepts(&seq(&log, "SBAE")));
        assert!(!fsm.accepts(&seq(&log, "SAAE")));

        let dup = fsm.token_duplication();
        let a = log.activities().id("A").unwrap();
        let b = log.activities().id("B").unwrap();
        assert!(dup.iter().any(|&(t, c)| t == a && c >= 2), "{dup:?}");
        assert!(dup.iter().any(|&(t, c)| t == b && c >= 2), "{dup:?}");

        // The mined process graph, by contrast, has one node per
        // activity and admits both interleavings with 4 edges.
        let (model, _) = crate::mine_auto(&log, &crate::MinerOptions::default()).unwrap();
        assert_eq!(model.activity_count(), 4);
        assert_eq!(model.edge_count(), 4);
    }

    #[test]
    fn k0_collapses_k_large_is_prefix_tree() {
        let log = WorkflowLog::from_strings(["ABC", "ABD"]).unwrap();
        let collapsed = ktail(&log, 0);
        assert_eq!(collapsed.state_count(), 1, "all futures trivially equal");

        let tree = ktail(&log, 10);
        // Prefix classes: "", A, AB, ABC, ABD — AB C/D diverge, the two
        // leaves share the empty future and merge: 4 distinct states.
        assert!(tree.state_count() >= 4, "{}", tree.state_count());
        assert!(tree.accepts(&seq(&log, "ABC")));
        assert!(tree.accepts(&seq(&log, "ABD")));
        assert!(!tree.accepts(&seq(&log, "AB")));
    }

    #[test]
    fn accepts_only_observed_like_traces() {
        let log = WorkflowLog::from_strings(["ABCE", "ACBE"]).unwrap();
        let fsm = ktail(&log, 3);
        assert!(fsm.accepts(&seq(&log, "ABCE")));
        assert!(fsm.accepts(&seq(&log, "ACBE")));
        assert!(!fsm.accepts(&seq(&log, "AE")));
        assert!(!fsm.accepts(&seq(&log, "ABCEA")));
    }

    #[test]
    fn loops_produce_cyclic_automata() {
        let log = WorkflowLog::from_strings(["AXB", "AXXB", "AXXXB"]).unwrap();
        let fsm = ktail(&log, 1);
        // With k=1 the states inside the X-run merge, giving a loop the
        // automaton generalizes through.
        let x4 = {
            let mut s = seq(&log, "A");
            for _ in 0..4 {
                s.push(log.activities().id("X").unwrap());
            }
            s.push(log.activities().id("B").unwrap());
            s
        };
        assert!(fsm.accepts(&x4), "generalizes to unseen repetition counts");
    }

    #[test]
    fn deterministic_on_deterministic_logs() {
        let log = WorkflowLog::from_strings(["ABC", "ABC"]).unwrap();
        let fsm = ktail(&log, 2);
        assert!(fsm.is_deterministic());
        assert_eq!(fsm.transition_count(), 3);
    }
}
