//! Shared helpers for the experiment binaries that regenerate the
//! paper's tables and figures (see `src/bin/`) and for the Criterion
//! benches (see `benches/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use procmine_core::{
    mine_general_dag, mine_general_dag_in, MineSession, MinedModel, MinerMetrics, MinerOptions,
};
use procmine_log::WorkflowLog;
use procmine_sim::randdag::{random_dag, RandomDagConfig};
use procmine_sim::{walk, ProcessModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The synthetic graph sizes of Tables 1 and 2, with the edge counts the
/// paper reports for its generating graphs (used to pick matching edge
/// densities): 10/24, 25/224, 50/1058, 100/4569.
pub fn paper_graph_configs() -> Vec<(usize, usize)> {
    vec![(10, 24), (25, 224), (50, 1058), (100, 4569)]
}

/// The execution counts of Table 1.
pub fn paper_execution_counts() -> Vec<usize> {
    vec![100, 1_000, 10_000]
}

/// Generates the synthetic workload of §8.1: a random DAG with `n`
/// vertices targeting `edges` edges, and `m` random-walk executions.
/// Deterministic in `seed`.
pub fn synthetic_workload(
    n: usize,
    edges: usize,
    m: usize,
    seed: u64,
) -> (ProcessModel, WorkflowLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = random_dag(&RandomDagConfig::with_target_edges(n, edges), &mut rng)
        .expect("random DAG generation is infallible for n >= 2");
    let log = walk::random_walk_log(&model, m, &mut rng).expect("walk generation");
    (model, log)
}

/// Mines with Algorithm 2 and returns the model plus wall-clock time.
pub fn timed_mine(log: &WorkflowLog) -> (MinedModel, Duration) {
    let started = Instant::now();
    let model = mine_general_dag(log, &MinerOptions::default()).expect("mining succeeds");
    (model, started.elapsed())
}

/// [`timed_mine`] with telemetry: also returns the pipeline's
/// [`MinerMetrics`], so experiment binaries can break the wall-clock
/// figure down by stage and report the pipeline counters.
pub fn timed_mine_with_metrics(log: &WorkflowLog) -> (MinedModel, Duration, MinerMetrics) {
    let mut metrics = MinerMetrics::new();
    let started = Instant::now();
    let model = mine_general_dag_in(
        &mut MineSession::new().with_sink(&mut metrics),
        log,
        &MinerOptions::default(),
    )
    .expect("mining succeeds");
    (model, started.elapsed(), metrics)
}

/// A minimal fixed-width text table, for printing paper-style tables to
/// stdout.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        fn fmt_row(cells: &[String], widths: &[usize]) -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line.push('\n');
            line
        }
        let mut out = fmt_row(&self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_in_seed() {
        let (m1, l1) = synthetic_workload(10, 24, 20, 7);
        let (m2, l2) = synthetic_workload(10, 24, 20, 7);
        assert_eq!(m1.edge_count(), m2.edge_count());
        assert_eq!(l1.display_sequences(), l2.display_sequences());
        let (_, l3) = synthetic_workload(10, 24, 20, 8);
        assert_ne!(l1.display_sequences(), l3.display_sequences());
    }

    #[test]
    fn timed_mine_returns_model() {
        let (_, log) = synthetic_workload(10, 24, 50, 1);
        let (model, elapsed) = timed_mine(&log);
        assert_eq!(model.activity_count(), 10);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn metered_mine_fills_metrics() {
        let (_, log) = synthetic_workload(10, 24, 50, 1);
        let (model, _, metrics) = timed_mine_with_metrics(&log);
        assert_eq!(metrics.executions_scanned, 50);
        assert_eq!(metrics.edges_final, model.edge_count() as u64);
        // The plain and metered paths mine the same model.
        let (plain, _) = timed_mine(&log);
        assert_eq!(plain.edges_named(), model.edges_named());
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(["n", "time"]);
        t.row(["10", "4.6"]);
        t.row(["100", "15.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[3].contains("100"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
