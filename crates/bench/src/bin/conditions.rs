//! §7 experiment — conditions mining.
//!
//! The paper could not run this on the Flowmark logs ("Currently,
//! Flowmark does not log the input and output parameters to the
//! activities. Hence, we could not learn conditions on the edges."), so
//! the substituted experiment plants known Boolean conditions in a
//! process model, generates output-carrying logs with the engine, mines
//! the graph, learns per-edge decision trees, and checks that the
//! planted predicates are recovered. Run with `--release`.

use procmine_bench::TextTable;
use procmine_classify::{learn_edge_conditions, TreeConfig};
use procmine_core::{mine_general_dag, MinerOptions};
use procmine_sim::{engine, presets};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = presets::order_fulfillment();
    println!(
        "Conditions mining (§7) on `{}`: planted conditions\n  Assess->ManagerApproval : o[0] > 500\n  Assess->AutoApprove     : o[0] <= 500\n  Assess->FraudCheck      : o[1] > 70\n",
        model.name()
    );

    let mut table = TextTable::new(["m", "edge", "learned rule(s)", "train acc"]);
    for m in [50usize, 200, 1000] {
        let mut rng = StdRng::seed_from_u64(7 + m as u64);
        let log = engine::generate_log(&model, m, &mut rng).expect("log generation");
        let mined = mine_general_dag(&log, &MinerOptions::default()).expect("mine");
        let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());
        for c in learned
            .iter()
            .filter(|c| c.from == "Assess" && c.tree.is_some())
        {
            let rules = if c.rules.is_empty() {
                "never taken".to_string()
            } else {
                c.rules
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" OR ")
            };
            table.row([
                m.to_string(),
                format!("{}->{}", c.from, c.to),
                rules,
                format!("{:.3}", c.train_accuracy),
            ]);
        }
    }
    println!("{}", table.render());
    println!("shape: thresholds converge to the planted constants (500, 70) and");
    println!("accuracy approaches 1.0 as the log grows.");
}
