//! Columnar (struct-of-arrays) log layout.
//!
//! [`WorkflowLog`] stores one `Vec<ActivityInstance>` per execution —
//! convenient for codecs and validation, but pointer-heavy for the
//! miners, whose step-2 pair scans and follows counting stream over
//! every instance of every execution. [`EventColumns`] flattens a log
//! into four parallel arrays — activity ids, start times, end times,
//! and a CSR-style offsets array delimiting executions — so those scans
//! run over contiguous buffers with no per-execution indirection.
//!
//! [`CompactLog`] bundles the columns with everything the row layout
//! carries that the miners do not need per-event (the activity table,
//! execution ids, sparse output vectors), making the conversion
//! lossless in both directions: `CompactLog::from_log(&log).to_log()`
//! reproduces the original log exactly, so codecs and the streaming
//! case assembler keep operating on [`WorkflowLog`] unchanged.

use crate::{ActivityId, ActivityInstance, ActivityTable, Execution, LogError, WorkflowLog};

/// Struct-of-arrays event storage: all instances of all executions in
/// four parallel buffers, executions delimited CSR-style by `offsets`.
///
/// Execution `i` owns the index range `offsets[i]..offsets[i + 1]` of
/// `activities` / `starts` / `ends`. Within an execution, events keep
/// the [`Execution`] invariant: sorted by `(start, end, activity)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventColumns {
    activities: Vec<u32>,
    starts: Vec<u64>,
    ends: Vec<u64>,
    /// `offsets[0] == 0`, one extra entry per execution; length is
    /// `exec_count() + 1`.
    offsets: Vec<usize>,
}

/// Borrowed view of one execution's columns (see
/// [`EventColumns::exec`]). The three slices are index-parallel.
#[derive(Debug, Clone, Copy)]
pub struct ExecColumns<'a> {
    /// Activity id of each event.
    pub activities: &'a [u32],
    /// Start timestamp of each event.
    pub starts: &'a [u64],
    /// End timestamp of each event.
    pub ends: &'a [u64],
}

impl ExecColumns<'_> {
    /// Number of events in this execution.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// `true` if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }
}

impl EventColumns {
    /// Empty columns (zero executions).
    pub fn new() -> Self {
        EventColumns {
            activities: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Empty columns with room for `execs` executions totalling
    /// `events` events.
    pub fn with_capacity(execs: usize, events: usize) -> Self {
        EventColumns {
            activities: Vec::with_capacity(events),
            starts: Vec::with_capacity(events),
            ends: Vec::with_capacity(events),
            offsets: {
                let mut o = Vec::with_capacity(execs + 1);
                o.push(0);
                o
            },
        }
    }

    /// Flattens a [`WorkflowLog`]'s instance rows into columns
    /// (dropping ids and outputs — see [`CompactLog`] for the lossless
    /// wrapper).
    pub fn from_log(log: &WorkflowLog) -> Self {
        let events = log.executions().iter().map(Execution::len).sum();
        let mut cols = EventColumns::with_capacity(log.len(), events);
        for e in log.executions() {
            cols.push_exec(
                e.instances()
                    .iter()
                    .map(|i| (i.activity.index() as u32, i.start, i.end)),
            );
        }
        cols
    }

    /// Appends one execution from `(activity, start, end)` event
    /// triples, in order.
    pub fn push_exec(&mut self, events: impl IntoIterator<Item = (u32, u64, u64)>) {
        for (a, s, e) in events {
            self.activities.push(a);
            self.starts.push(s);
            self.ends.push(e);
        }
        self.offsets.push(self.activities.len());
    }

    /// Number of executions.
    pub fn exec_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of events across all executions.
    pub fn event_count(&self) -> usize {
        self.activities.len()
    }

    /// `true` if there are no executions.
    pub fn is_empty(&self) -> bool {
        self.exec_count() == 0
    }

    /// The columns of execution `i`. Panics if `i` is out of range.
    pub fn exec(&self, i: usize) -> ExecColumns<'_> {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        ExecColumns {
            activities: &self.activities[lo..hi],
            starts: &self.starts[lo..hi],
            ends: &self.ends[lo..hi],
        }
    }

    /// Number of events in execution `i` without materializing a view.
    pub fn exec_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The CSR offsets array (`exec_count() + 1` entries, first is 0).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat activity-id column.
    pub fn activities(&self) -> &[u32] {
        &self.activities
    }

    /// The flat start-time column.
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// The flat end-time column.
    pub fn ends(&self) -> &[u64] {
        &self.ends
    }
}

/// A [`WorkflowLog`] in columnar form, losslessly.
///
/// [`EventColumns`] carries what the miners consume; this wrapper adds
/// the activity table, per-execution case ids, and the sparse output
/// vectors (Definition 2's `O` field, present on few events in
/// practice) so the row form can be reconstructed exactly.
#[derive(Debug, Clone)]
pub struct CompactLog {
    activities: ActivityTable,
    ids: Vec<String>,
    columns: EventColumns,
    /// `(exec index, event index within the execution, output vector)`
    /// for each event that recorded an output, in log order.
    outputs: Vec<(u32, u32, Vec<i64>)>,
}

impl CompactLog {
    /// Converts a row-layout log to columns, keeping everything needed
    /// to invert the conversion.
    pub fn from_log(log: &WorkflowLog) -> Self {
        let mut outputs = Vec::new();
        for (x, e) in log.executions().iter().enumerate() {
            for (j, inst) in e.instances().iter().enumerate() {
                if let Some(out) = &inst.output {
                    outputs.push((x as u32, j as u32, out.clone()));
                }
            }
        }
        CompactLog {
            activities: log.activities().clone(),
            ids: log.executions().iter().map(|e| e.id.clone()).collect(),
            columns: EventColumns::from_log(log),
            outputs,
        }
    }

    /// Reconstructs the row-layout log. Exact inverse of
    /// [`from_log`](Self::from_log): ids, instance order, and outputs
    /// all round-trip.
    pub fn to_log(&self) -> Result<WorkflowLog, LogError> {
        let mut log = WorkflowLog::with_activities(self.activities.clone());
        let mut out_iter = self.outputs.iter().peekable();
        for (x, id) in self.ids.iter().enumerate() {
            let cols = self.columns.exec(x);
            let mut instances: Vec<ActivityInstance> = (0..cols.len())
                .map(|j| ActivityInstance {
                    activity: ActivityId::from_index(cols.activities[j] as usize),
                    start: cols.starts[j],
                    end: cols.ends[j],
                    output: None,
                })
                .collect();
            while let Some((ex, j, out)) = out_iter.peek() {
                if *ex as usize != x {
                    break;
                }
                instances[*j as usize].output = Some(out.clone());
                out_iter.next();
            }
            log.push(Execution::new(id.clone(), instances)?);
        }
        Ok(log)
    }

    /// The shared activity table.
    pub fn activities(&self) -> &ActivityTable {
        &self.activities
    }

    /// The per-execution case ids, in log order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// The event columns.
    pub fn columns(&self) -> &EventColumns {
        &self.columns
    }

    /// Number of executions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the log has no executions.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> WorkflowLog {
        let mut log = WorkflowLog::new();
        let a = log.intern_activity("A");
        let b = log.intern_activity("B");
        let c = log.intern_activity("C");
        let mk = |act, start, end, output| ActivityInstance {
            activity: act,
            start,
            end,
            output,
        };
        log.push(
            Execution::new(
                "case-1",
                vec![
                    mk(a, 0, 2, None),
                    mk(b, 3, 5, Some(vec![7, -1])),
                    mk(c, 6, 6, None),
                ],
            )
            .unwrap(),
        );
        log.push(
            Execution::new(
                "case-2",
                vec![mk(a, 10, 11, None), mk(c, 12, 15, Some(vec![0]))],
            )
            .unwrap(),
        );
        log
    }

    #[test]
    fn columns_flatten_csr_style() {
        let log = sample_log();
        let cols = EventColumns::from_log(&log);
        assert_eq!(cols.exec_count(), 2);
        assert_eq!(cols.event_count(), 5);
        assert_eq!(cols.offsets(), &[0, 3, 5]);
        assert_eq!(cols.activities(), &[0, 1, 2, 0, 2]);
        assert_eq!(cols.starts(), &[0, 3, 6, 10, 12]);
        assert_eq!(cols.ends(), &[2, 5, 6, 11, 15]);
        let e1 = cols.exec(1);
        assert_eq!(e1.len(), 2);
        assert_eq!(e1.activities, &[0, 2]);
        assert_eq!(e1.starts, &[10, 12]);
        assert_eq!(cols.exec_len(0), 3);
    }

    #[test]
    fn empty_columns() {
        let cols = EventColumns::new();
        assert!(cols.is_empty());
        assert_eq!(cols.exec_count(), 0);
        assert_eq!(cols.offsets(), &[0]);
        let cols = EventColumns::from_log(&WorkflowLog::new());
        assert!(cols.is_empty());
    }

    #[test]
    fn push_exec_appends_in_order() {
        let mut cols = EventColumns::new();
        cols.push_exec([(4u32, 0u64, 1u64), (2, 2, 3)]);
        cols.push_exec([(1u32, 5u64, 5u64)]);
        assert_eq!(cols.exec_count(), 2);
        assert_eq!(cols.exec(0).activities, &[4, 2]);
        assert_eq!(cols.exec(1).ends, &[5]);
    }

    #[test]
    fn compact_log_round_trips_losslessly() {
        let log = sample_log();
        let compact = CompactLog::from_log(&log);
        assert_eq!(compact.len(), 2);
        assert_eq!(compact.ids(), &["case-1".to_string(), "case-2".to_string()]);
        let back = compact.to_log().unwrap();
        assert_eq!(back.activities().names(), log.activities().names());
        assert_eq!(back.executions(), log.executions());
    }

    #[test]
    fn round_trip_preserves_outputs_and_empty_log() {
        let log = sample_log();
        let back = CompactLog::from_log(&log).to_log().unwrap();
        assert_eq!(
            back.executions()[0].instances()[1].output,
            Some(vec![7, -1])
        );
        assert_eq!(back.executions()[1].instances()[1].output, Some(vec![0]));
        let empty = WorkflowLog::new();
        let back = CompactLog::from_log(&empty).to_log().unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn round_trip_from_sequences() {
        let log = WorkflowLog::from_sequences([vec!["A", "B", "C", "E"], vec!["A", "C", "D", "E"]])
            .unwrap();
        let back = CompactLog::from_log(&log).to_log().unwrap();
        assert_eq!(back.executions(), log.executions());
        assert_eq!(back.activities().names(), log.activities().names());
    }
}
