//! Log codec throughput: the paper's logs reached 107 MB for 10 000
//! executions, so parse/serialize speed matters for end-to-end runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use procmine_bench::synthetic_workload;
use procmine_log::codec::{flowmark, jsonl, seqs};

fn bench_codecs(c: &mut Criterion) {
    let (_, log) = synthetic_workload(25, 224, 1000, 555);

    let mut fm = Vec::new();
    flowmark::write_log(&log, &mut fm).unwrap();
    let mut js = Vec::new();
    jsonl::write_log(&log, &mut js).unwrap();
    let mut sq = Vec::new();
    seqs::write_log(&log, &mut sq).unwrap();

    let mut group = c.benchmark_group("codec_read");
    group.throughput(Throughput::Bytes(fm.len() as u64));
    group.bench_with_input(BenchmarkId::new("flowmark", fm.len()), &fm, |b, data| {
        b.iter(|| flowmark::read_log(data.as_slice()).unwrap())
    });
    group.throughput(Throughput::Bytes(js.len() as u64));
    group.bench_with_input(BenchmarkId::new("jsonl", js.len()), &js, |b, data| {
        b.iter(|| jsonl::read_log(data.as_slice()).unwrap())
    });
    group.throughput(Throughput::Bytes(sq.len() as u64));
    group.bench_with_input(BenchmarkId::new("seqs", sq.len()), &sq, |b, data| {
        b.iter(|| seqs::read_log(data.as_slice()).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("codec_write");
    group.throughput(Throughput::Bytes(fm.len() as u64));
    group.bench_function("flowmark", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(fm.len());
            flowmark::write_log(&log, &mut out).unwrap();
            out
        })
    });
    group.throughput(Throughput::Bytes(js.len() as u64));
    group.bench_function("jsonl", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(js.len());
            jsonl::write_log(&log, &mut out).unwrap();
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
