#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "ci: OK"
