//! Fixed process models used by the experiments and examples.
//!
//! * [`graph10`] — a 10-activity DAG matching Figure 7 of the paper
//!   ("Graph10"): the paper lists ADBEJ, AGHEJ, ADGHBEJ and AGCFIBEJ as
//!   typical executions, and this model admits all of them.
//! * [`flowmark_models`] — stand-ins for the five processes of Table 3
//!   (`Upload_and_Notify`, `StressSleep`, `Pend_Block`, `Local_Swap`,
//!   `UWI_Pilot`). The original Flowmark installation logs are
//!   proprietary; these models reproduce each process' **vertex and edge
//!   counts** exactly as reported in Table 3, so the experiment — mine
//!   the log, verify the underlying process is recovered — exercises the
//!   same code path at the same scale.
//! * [`order_fulfillment`] — a conditions-annotated model for the §7
//!   conditions-mining experiment: edges guarded by simple predicates on
//!   activity outputs, which the decision-tree learner should recover.

use crate::{CmpOp, Condition, OutputSpec, ProcessModel};

/// The Figure 7 synthetic graph: 10 activities A–J, single source A,
/// single sink J. Typical random-walk executions include ADBEJ, AGHEJ,
/// ADGHBEJ and AGCFIBEJ.
pub fn graph10() -> ProcessModel {
    ProcessModel::builder("Graph10")
        .activity("A")
        .activity("B")
        .activity("C")
        .activity("D")
        .activity("E")
        .activity("F")
        .activity("G")
        .activity("H")
        .activity("I")
        .activity("J")
        .edge("A", "D")
        .edge("A", "G")
        .edge("D", "B")
        .edge("G", "H")
        .edge("G", "C")
        .edge("C", "F")
        .edge("F", "I")
        .edge("I", "B")
        .edge("H", "B")
        .edge("H", "E")
        .edge("B", "E")
        .edge("E", "J")
        .build()
        .expect("graph10 preset is valid")
}

/// `Upload_and_Notify` stand-in: 7 vertices, 7 edges (Table 3).
pub fn upload_and_notify() -> ProcessModel {
    ProcessModel::builder("Upload_and_Notify")
        .activity("Start")
        .activity("CheckFile")
        .activity("Upload")
        .activity("Verify")
        .activity("NotifyUser")
        .activity("NotifyAdmin")
        .activity("End")
        .edge("Start", "CheckFile")
        .edge("CheckFile", "Upload")
        .edge("Upload", "Verify")
        .edge("Verify", "NotifyUser")
        .edge("Verify", "NotifyAdmin")
        .edge("NotifyUser", "End")
        .edge("NotifyAdmin", "End")
        .build()
        .expect("preset is valid")
}

/// `StressSleep` stand-in: 14 vertices, 23 edges (Table 3) — the
/// densest of the five, with four parallel worker lanes and cross-lane
/// dependencies.
pub fn stress_sleep() -> ProcessModel {
    let mut b = ProcessModel::builder("StressSleep")
        .activity("Start")
        .activity("Warmup")
        .activity("Init")
        .activity("Collect")
        .activity("Report")
        .activity("End");
    for i in 1..=4 {
        b = b
            .activity(&format!("Spawn{i}"))
            .activity(&format!("Sleep{i}"));
    }
    let mut b = b
        .edge("Start", "Warmup")
        .edge("Warmup", "Init")
        .edge("Init", "Collect")
        .edge("Collect", "Report")
        .edge("Report", "End");
    for i in 1..=4 {
        b = b
            .edge("Init", &format!("Spawn{i}"))
            .edge(&format!("Spawn{i}"), &format!("Sleep{i}"))
            .edge(&format!("Sleep{i}"), "Collect");
    }
    b.edge("Spawn1", "Sleep2")
        .edge("Spawn2", "Sleep3")
        .edge("Spawn3", "Sleep4")
        .edge("Spawn4", "Sleep1")
        .edge("Warmup", "Collect")
        .edge("Spawn1", "Sleep3")
        .build()
        .expect("preset is valid")
}

/// `Pend_Block` stand-in: 6 vertices, 7 edges (Table 3).
pub fn pend_block() -> ProcessModel {
    ProcessModel::builder("Pend_Block")
        .activity("Start")
        .activity("Submit")
        .activity("Pend")
        .activity("Block")
        .activity("Resolve")
        .activity("End")
        .edge("Start", "Submit")
        .edge("Submit", "Pend")
        .edge("Submit", "Block")
        .edge("Pend", "Resolve")
        .edge("Block", "Resolve")
        .edge("Resolve", "End")
        .edge("Submit", "Resolve")
        .build()
        .expect("preset is valid")
}

/// `Local_Swap` stand-in: 12 vertices, 11 edges (Table 3). A
/// single-source/single-sink graph with `n − 1` edges is necessarily a
/// chain, so the process is a 12-step sequence.
pub fn local_swap() -> ProcessModel {
    let steps = [
        "Start",
        "Quiesce",
        "Snapshot",
        "CopyOut",
        "VerifyCopy",
        "Detach",
        "SwapVolume",
        "Attach",
        "Replay",
        "VerifySwap",
        "Resume",
        "End",
    ];
    let mut b = ProcessModel::builder("Local_Swap");
    for s in steps {
        b = b.activity(s);
    }
    for w in steps.windows(2) {
        b = b.edge(w[0], w[1]);
    }
    b.build().expect("preset is valid")
}

/// `UWI_Pilot` stand-in: 7 vertices, 7 edges (Table 3).
pub fn uwi_pilot() -> ProcessModel {
    ProcessModel::builder("UWI_Pilot")
        .activity("Start")
        .activity("Init")
        .activity("Run")
        .activity("Evaluate")
        .activity("Publish")
        .activity("Archive")
        .activity("End")
        .edge("Start", "Init")
        .edge("Init", "Run")
        .edge("Run", "Evaluate")
        .edge("Evaluate", "Publish")
        .edge("Evaluate", "Archive")
        .edge("Publish", "End")
        .edge("Archive", "End")
        .build()
        .expect("preset is valid")
}

/// All five Table 3 stand-ins with the paper's execution counts:
/// `(model, number_of_executions)`.
pub fn flowmark_models() -> Vec<(ProcessModel, usize)> {
    vec![
        (upload_and_notify(), 134),
        (stress_sleep(), 160),
        (pend_block(), 121),
        (local_swap(), 24),
        (uwi_pilot(), 134),
    ]
}

/// An order-fulfillment process with output-dependent routing, for the
/// §7 conditions-mining experiment:
///
/// * `Assess` outputs `(amount, risk)`;
/// * orders with `amount > 500` require `ManagerApproval`, others take
///   `AutoApprove`;
/// * `risk > 70` additionally routes through `FraudCheck` (in parallel
///   with the approval path);
/// * everything joins at `Ship`.
pub fn order_fulfillment() -> ProcessModel {
    let high_value = Condition::cmp(0, CmpOp::Gt, 500);
    let low_value = Condition::cmp(0, CmpOp::Le, 500);
    let risky = Condition::cmp(1, CmpOp::Gt, 70);
    ProcessModel::builder("OrderFulfillment")
        .activity("Receive")
        .activity_with("Assess", OutputSpec::Uniform(vec![(0, 1000), (0, 100)]))
        .activity("ManagerApproval")
        .activity("AutoApprove")
        .activity_with("FraudCheck", OutputSpec::Uniform(vec![(0, 1)]))
        .activity("Ship")
        .edge("Receive", "Assess")
        .edge_if("Assess", "ManagerApproval", high_value)
        .edge_if("Assess", "AutoApprove", low_value)
        .edge_if("Assess", "FraudCheck", risky)
        .edge("ManagerApproval", "Ship")
        .edge("AutoApprove", "Ship")
        .edge("FraudCheck", "Ship")
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::{ActivityId, Execution};

    /// Asserts the string is a valid execution order of the model: every
    /// graph edge between present activities is respected.
    fn admits(model: &ProcessModel, s: &str) {
        let ids: Vec<ActivityId> = s
            .chars()
            .map(|c| {
                model
                    .activities()
                    .id(&c.to_string())
                    .expect("known activity")
            })
            .collect();
        let exec = Execution::from_ids(s, &ids).unwrap();
        let g = model.graph();
        let seq = exec.sequence();
        for (i, &u) in seq.iter().enumerate() {
            for &v in &seq[i + 1..] {
                assert!(
                    !g.has_edge(
                        procmine_graph::NodeId::new(v.index()),
                        procmine_graph::NodeId::new(u.index())
                    ),
                    "{s} violates edge {} -> {}",
                    model.activities().name(v),
                    model.activities().name(u)
                );
            }
        }
        assert_eq!(seq[0], model.start());
        assert_eq!(*seq.last().unwrap(), model.end());
    }

    #[test]
    fn graph10_admits_paper_executions() {
        let model = graph10();
        assert_eq!(model.activity_count(), 10);
        for s in ["ADBEJ", "AGHEJ", "ADGHBEJ", "AGCFIBEJ"] {
            admits(&model, s);
        }
    }

    #[test]
    fn flowmark_counts_match_table3() {
        let expected = [
            ("Upload_and_Notify", 7, 7, 134),
            ("StressSleep", 14, 23, 160),
            ("Pend_Block", 6, 7, 121),
            ("Local_Swap", 12, 11, 24),
            ("UWI_Pilot", 7, 7, 134),
        ];
        let models = flowmark_models();
        assert_eq!(models.len(), expected.len());
        for ((model, m), (name, v, e, execs)) in models.iter().zip(expected) {
            assert_eq!(model.name(), name);
            assert_eq!(model.activity_count(), v, "{name} vertices");
            assert_eq!(model.edge_count(), e, "{name} edges");
            assert_eq!(*m, execs, "{name} executions");
            assert!(model.is_acyclic());
        }
    }

    #[test]
    fn order_fulfillment_routing_is_exclusive_on_value() {
        use crate::engine::simulate;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = order_fulfillment();
        let mut rng = StdRng::seed_from_u64(77);
        let approval = model.activities().id("ManagerApproval").unwrap();
        let auto = model.activities().id("AutoApprove").unwrap();
        let fraud = model.activities().id("FraudCheck").unwrap();
        let assess = model.activities().id("Assess").unwrap();
        for i in 0..100 {
            let e = simulate(&model, format!("o{i}"), &mut rng).unwrap();
            assert_ne!(e.contains(approval), e.contains(auto));
            let out = e.output_of(assess).unwrap();
            assert_eq!(e.contains(approval), out[0] > 500);
            assert_eq!(e.contains(fraud), out[1] > 70);
        }
    }
}
