//! XES codec — the IEEE 1849 XML interchange format used by the
//! process-mining ecosystem (ProM, PM4Py, Disco, …).
//!
//! Writing `procmine` logs as XES lets downstream users cross-check
//! mined models against other tools; reading XES lets real-world event
//! logs flow into these miners. The implementation is self-contained: a
//! minimal XML pull parser (elements, attributes, comments,
//! declarations, entity escapes) and civil-date conversion, covering the
//! XES subset the log model needs:
//!
//! * one `<trace>` per execution, named by `concept:name`;
//! * one `<event>` per START/END, with `concept:name` (activity),
//!   `lifecycle:transition` (`start` / `complete`) and `time:timestamp`
//!   (ISO 8601; the log's integer ticks are interpreted as milliseconds
//!   since the Unix epoch);
//! * instantaneous instances are written as a single `complete` event
//!   and read back as `start == end`, matching the paper's list-form
//!   simplification;
//! * output vectors ride on `complete` events as a `procmine:output`
//!   string attribute (`"1;2;3"`), a documented extension.
//!
//! # Fast path
//!
//! The parser is zero-copy: the whole document is validated as UTF-8
//! once up front, then a byte-offset [`Scanner`] slices names and
//! attribute values straight out of the input. All XML delimiters are
//! ASCII, so byte search never lands inside a multi-byte character;
//! values are borrowed (`Cow::Borrowed`) unless they contain an entity
//! (`&…;`), which is the only case that allocates. Errors keep the
//! historical contract — byte offsets, 1-based line:column (column in
//! characters), [`LogError::UnexpectedEof`] at clean truncation — by
//! computing positions lazily on the error paths only.
//!
//! [`read_log_with_threads`] adds a chunked parallel mode: the input is
//! split at top-level-looking `<trace` boundaries and chunks are parsed
//! on scoped threads. The merge step re-validates every assumption the
//! split makes (no chunk errors, no state leaking across boundaries, no
//! case names shared between chunks) and falls back to the serial
//! parser whenever anything is off, so error reports and recovery
//! behaviour are byte-for-byte identical to a serial read. The previous
//! character-based implementation is preserved as
//! [`xes_reference`](super::xes_reference) and pinned to this one by
//! differential tests.

use super::{CodecStats, IngestReport, RecoveryPolicy};
use crate::{EventKind, EventRecord, LogError, WorkflowLog};
use std::borrow::Cow;
use std::collections::HashMap;
use std::io::{BufRead, Write};

// ---------------------------------------------------------------------------
// Civil-date conversion (proleptic Gregorian, no leap seconds).
// ---------------------------------------------------------------------------

/// Days from civil date to days since 1970-01-01 (Howard Hinnant's
/// `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp as u64 + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (y + i64::from(m <= 2), m, d)
}

/// Appends `millis` since the Unix epoch to `out` as
/// `YYYY-MM-DDThh:mm:ss.mmm+00:00`.
fn push_iso8601(out: &mut String, millis: u64) {
    use std::fmt::Write as _;
    let total_secs = millis / 1000;
    let ms = millis % 1000;
    let days = (total_secs / 86_400) as i64;
    let secs_of_day = total_secs % 86_400;
    let (y, mo, d) = civil_from_days(days);
    let (h, mi, s) = (
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60,
    );
    let _ = write!(
        out,
        "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}+00:00"
    );
}

/// Formats milliseconds since the Unix epoch as
/// `YYYY-MM-DDThh:mm:ss.mmm+00:00`.
pub fn millis_to_iso8601(millis: u64) -> String {
    let mut out = String::with_capacity(29);
    push_iso8601(&mut out, millis);
    out
}

/// Parses an ISO 8601 timestamp to milliseconds since the Unix epoch.
/// Accepts `YYYY-MM-DDThh:mm:ss[.fff][Z|±hh:mm]`; the `T` separator may
/// also be lowercase `t` or a space, and the zone designator may be
/// lowercase `z`. Offsets are applied. Timestamps before the epoch are
/// rejected (the log model's clock is unsigned).
///
/// The leap-second spelling `:60` is **clamped to `:59`** (fractional
/// part preserved): the log clock is POSIX-like and has no leap
/// seconds, and [`millis_to_iso8601`] never emits `:60`, so
/// `parse ∘ format` is the identity and `format ∘ parse` is idempotent
/// — XES round-trips are byte-stable.
pub fn iso8601_to_millis(text: &str) -> Result<u64, String> {
    let bytes = text.as_bytes();
    let fail = || format!("invalid ISO 8601 timestamp `{text}`");
    if bytes.len() < 19
        || bytes[4] != b'-'
        || bytes[7] != b'-'
        || !matches!(bytes[10], b'T' | b't' | b' ')
    {
        return Err(fail());
    }
    let num = |range: std::ops::Range<usize>| -> Result<i64, String> {
        text.get(range)
            .and_then(|s| s.parse().ok())
            .ok_or_else(fail)
    };
    let (y, mo, d) = (num(0..4)?, num(5..7)? as u32, num(8..10)? as u32);
    if !(1..=12).contains(&mo) {
        return Err(fail());
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let days_in_month = match mo {
        4 | 6 | 9 | 11 => 30,
        2 if leap => 29,
        2 => 28,
        _ => 31,
    };
    if d == 0 || d > days_in_month {
        return Err(format!(
            "invalid ISO 8601 timestamp `{text}`: day {d} out of range for {y:04}-{mo:02}"
        ));
    }
    let (h, mi, s) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if bytes[13] != b':' || bytes[16] != b':' || h > 23 || mi > 59 || s > 60 {
        return Err(fail());
    }
    // Leap second: fold into the last ordinary second of the minute.
    let s = s.min(59);

    let mut pos = 19;
    let mut ms: i64 = 0;
    if bytes.get(pos) == Some(&b'.') {
        let start = pos + 1;
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end == start {
            return Err(fail());
        }
        // Truncate or pad fractional seconds to milliseconds.
        let frac = &text[start..end.min(start + 3)];
        ms = frac.parse::<i64>().map_err(|_| fail())?;
        for _ in frac.len()..3 {
            ms *= 10;
        }
        pos = end;
    }

    let mut offset_minutes: i64 = 0;
    match bytes.get(pos) {
        None => {}
        Some(b'Z' | b'z') if pos + 1 == bytes.len() => {}
        Some(sign @ (b'+' | b'-')) => {
            if bytes.len() != pos + 6 || bytes[pos + 3] != b':' {
                return Err(fail());
            }
            let oh = num(pos + 1..pos + 3)?;
            let om = num(pos + 4..pos + 6)?;
            offset_minutes = oh * 60 + om;
            if *sign == b'+' {
                offset_minutes = -offset_minutes; // ahead of UTC → subtract
            }
        }
        Some(_) => return Err(fail()),
    }

    let days = days_from_civil(y, mo, d);
    let total = (days * 86_400 + h * 3600 + mi * 60 + s + offset_minutes * 60) * 1000 + ms;
    u64::try_from(total).map_err(|_| format!("timestamp `{text}` is before the Unix epoch"))
}

// ---------------------------------------------------------------------------
// Zero-copy XML pull scanner.
// ---------------------------------------------------------------------------

/// First position of `needle` in `hay`. `Iterator::position` over bytes
/// compiles to a vectorized scan, which is all the memchr this needs.
#[inline]
fn find_byte(needle: u8, hay: &[u8]) -> Option<usize> {
    hay.iter().position(|&b| b == needle)
}

/// An XML tag event. Borrowed from the document text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag<'a> {
    Open { name: &'a str, self_closing: bool },
    Close(&'a str),
}

/// The only two attributes the XES subset reads (`key="…"`/`value="…"`
/// on `<string>`-family elements). Captured during tag parsing so
/// uninteresting attributes are scanned but never stored.
#[derive(Default)]
struct KeyValue<'a> {
    key: Option<Cow<'a, str>>,
    value: Option<Cow<'a, str>>,
}

/// Byte-offset scanner over a UTF-8 document. `pos` always sits on a
/// character boundary: every delimiter searched for is ASCII, and the
/// Unicode-aware paths (names, whitespace) advance by whole `char`s.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner { text, pos: 0 }
    }

    /// 1-based line, 1-based column (in characters), and byte offset of
    /// the current position. O(pos), but only paid on the error paths.
    fn position(&self) -> (usize, usize, u64) {
        let end = self.pos.min(self.text.len());
        let mut line = 1usize;
        let mut line_start = 0usize;
        for (i, &b) in self.text.as_bytes()[..end].iter().enumerate() {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        let column = 1 + self.text[line_start..end].chars().count();
        (line, column, end as u64)
    }

    /// An error at the current position: [`LogError::UnexpectedEof`]
    /// when input ran out (truncation), [`LogError::Xml`] with
    /// line/column otherwise.
    fn error(&self, message: impl Into<String>) -> LogError {
        let (line, column, byte_offset) = self.position();
        if self.pos >= self.text.len() {
            LogError::UnexpectedEof {
                byte_offset,
                message: message.into(),
            }
        } else {
            LogError::Xml {
                line,
                column,
                message: message.into(),
            }
        }
    }

    /// After a syntax error in a recovering read: step past the
    /// offending character so the pull loop re-syncs at the next `<`.
    /// Always advances, so a corrupt document cannot loop forever.
    fn resync(&mut self) {
        let step = self.text[self.pos.min(self.text.len())..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += step;
    }

    fn starts_with(&self, pat: &[u8]) -> bool {
        self.text.as_bytes()[self.pos.min(self.text.len())..].starts_with(pat)
    }

    fn consume(&mut self, b: u8) -> bool {
        if self.pos < self.text.len() && self.text.as_bytes()[self.pos] == b {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), LogError> {
        let bytes = self.text.as_bytes();
        let pat = end.as_bytes();
        let mut i = self.pos.min(bytes.len());
        while i < bytes.len() {
            match find_byte(pat[0], &bytes[i..]) {
                Some(k) => {
                    i += k;
                    if bytes[i..].starts_with(pat) {
                        self.pos = i + pat.len();
                        return Ok(());
                    }
                    i += 1;
                }
                None => break,
            }
        }
        self.pos = bytes.len();
        Err(self.error(format!("unterminated construct (expected `{end}`)")))
    }

    fn skip_ws(&mut self) {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii() {
                if matches!(b, b'\t' | b'\n' | 0x0b | 0x0c | b'\r' | b' ') {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                // Unicode whitespace: match `char::is_whitespace`.
                match self.text[self.pos..].chars().next() {
                    Some(c) if c.is_whitespace() => self.pos += c.len_utf8(),
                    _ => break,
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<&'a str, LogError> {
        let bytes = self.text.as_bytes();
        let start = self.pos;
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii() {
                if b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.') {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                // Unicode name characters: match `char::is_alphanumeric`.
                match self.text[self.pos..].chars().next() {
                    Some(c) if c.is_alphanumeric() => self.pos += c.len_utf8(),
                    _ => break,
                }
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(&self.text[start..self.pos])
    }

    /// Next element-open or element-close event, skipping text,
    /// comments, declarations and processing instructions. `key`/`value`
    /// attributes of an opening tag are captured into `kv`; all other
    /// attributes are scanned (and validated) but dropped.
    fn next(&mut self, kv: &mut KeyValue<'a>) -> Result<Option<Tag<'a>>, LogError> {
        let bytes = self.text.as_bytes();
        self.pos = self.pos.min(bytes.len());
        loop {
            // Skip character data.
            match find_byte(b'<', &bytes[self.pos..]) {
                Some(i) => self.pos += i,
                None => {
                    self.pos = bytes.len();
                    return Ok(None);
                }
            }
            // Comment / declaration / PI?
            if self.starts_with(b"<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with(b"<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with(b"<!") {
                self.skip_until(">")?;
                continue;
            }
            if self.starts_with(b"</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_ws();
                if !self.consume(b'>') {
                    return Err(self.error("malformed closing tag"));
                }
                return Ok(Some(Tag::Close(name)));
            }
            // Opening tag.
            self.pos += 1;
            let name = self.read_name()?;
            kv.key = None;
            kv.value = None;
            loop {
                self.skip_ws();
                if self.consume(b'>') {
                    return Ok(Some(Tag::Open {
                        name,
                        self_closing: false,
                    }));
                }
                if self.starts_with(b"/>") {
                    self.pos += 2;
                    return Ok(Some(Tag::Open {
                        name,
                        self_closing: true,
                    }));
                }
                let key = self.read_name()?;
                self.skip_ws();
                if !self.consume(b'=') {
                    return Err(self.error(format!("attribute `{key}` missing `=`")));
                }
                self.skip_ws();
                let quote = if self.consume(b'"') {
                    b'"'
                } else if self.consume(b'\'') {
                    b'\''
                } else {
                    return Err(self.error(format!("attribute `{key}` missing quote")));
                };
                let start = self.pos;
                match find_byte(quote, &bytes[self.pos..]) {
                    Some(i) => self.pos += i,
                    None => {
                        self.pos = bytes.len();
                        return Err(self.error("unterminated attribute value"));
                    }
                }
                let raw = &self.text[start..self.pos];
                self.pos += 1; // closing quote
                let value = if raw.as_bytes().contains(&b'&') {
                    Cow::Owned(unescape(raw).map_err(|m| self.error(m))?)
                } else {
                    Cow::Borrowed(raw)
                };
                match key {
                    "key" => kv.key = Some(value),
                    "value" => kv.value = Some(value),
                    _ => {}
                }
            }
        }
    }
}

/// Appends `s` to `out` with XML entity escaping. The escape-free case
/// (overwhelmingly common) is a single bulk copy.
fn push_escaped(out: &mut String, s: &str) {
    if !s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\''))
    {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// Resolves entity escapes; the `Err` message is positioned by the
/// caller (via [`Scanner::error`]).
pub(crate) fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i..];
        let semi = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity in `{s}`"))?;
        let entity = &rest[1..semi];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            other => return Err(format!("unsupported entity `&{other};`")),
        });
        // Skip the entity body.
        for _ in 0..semi {
            chars.next();
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// XES writing.
// ---------------------------------------------------------------------------

const XES_HEADER: &str = concat!(
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n",
    "<log xes.version=\"1.0\" xes.features=\"nested-attributes\" openxes.version=\"procmine\">\n",
    "  <extension name=\"Concept\" prefix=\"concept\" uri=\"http://www.xes-standard.org/concept.xesext\"/>\n",
    "  <extension name=\"Lifecycle\" prefix=\"lifecycle\" uri=\"http://www.xes-standard.org/lifecycle.xesext\"/>\n",
    "  <extension name=\"Time\" prefix=\"time\" uri=\"http://www.xes-standard.org/time.xesext\"/>\n",
);

/// Writes a log as XES. The document is built in memory and written
/// with a single `write_all`, so `w` needs no buffering of its own.
pub fn write_log<W: Write>(log: &WorkflowLog, mut w: W) -> Result<(), LogError> {
    use std::fmt::Write as _;
    let instances: usize = log.executions().iter().map(|e| e.instances().len()).sum();
    let mut out = String::with_capacity(XES_HEADER.len() + 16 + log.len() * 64 + instances * 300);
    out.push_str(XES_HEADER);
    let mut events: Vec<(u64, bool, usize)> = Vec::new(); // (time, is_end, instance)
    for exec in log.executions() {
        out.push_str("  <trace>\n    <string key=\"concept:name\" value=\"");
        push_escaped(&mut out, &exec.id);
        out.push_str("\"/>\n");
        // Emit events in time order (START before END at equal stamps).
        events.clear();
        for (i, inst) in exec.instances().iter().enumerate() {
            if inst.start == inst.end {
                events.push((inst.end, true, i)); // single complete event
            } else {
                events.push((inst.start, false, i));
                events.push((inst.end, true, i));
            }
        }
        events.sort_by_key(|&(t, is_end, _)| (t, is_end));
        for &(time, is_end, i) in &events {
            let inst = &exec.instances()[i];
            let name = log.activities().name(inst.activity);
            out.push_str("    <event>\n      <string key=\"concept:name\" value=\"");
            push_escaped(&mut out, name);
            out.push_str("\"/>\n      <string key=\"lifecycle:transition\" value=\"");
            out.push_str(if is_end { "complete" } else { "start" });
            out.push_str("\"/>\n      <date key=\"time:timestamp\" value=\"");
            push_iso8601(&mut out, time);
            out.push_str("\"/>\n");
            if is_end {
                if let Some(output) = &inst.output {
                    out.push_str("      <string key=\"procmine:output\" value=\"");
                    for (k, v) in output.iter().enumerate() {
                        if k > 0 {
                            out.push(';');
                        }
                        let _ = write!(out, "{v}");
                    }
                    out.push_str("\"/>\n");
                }
            }
            out.push_str("    </event>\n");
        }
        out.push_str("  </trace>\n");
    }
    out.push_str("</log>\n");
    w.write_all(out.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// XES reading.
// ---------------------------------------------------------------------------

/// Reads an XES log. Events missing a `lifecycle:transition` are treated
/// as `complete`; a lone `complete` without a preceding `start` becomes
/// an instantaneous instance.
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_with_stats(reader, &mut super::CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, `<event>` elements
/// parsed, and executions assembled accumulate into `stats`.
pub fn read_log_with_stats<R: BufRead>(
    reader: R,
    stats: &mut super::CodecStats,
) -> Result<WorkflowLog, LogError> {
    read_log_with(
        reader,
        RecoveryPolicy::Strict,
        stats,
        &mut IngestReport::default(),
    )
}

/// [`read_log_with_stats`] with a [`RecoveryPolicy`]. Under `Strict`
/// the first XML syntax error, undecodable event, or invalid timestamp
/// aborts (recorded in `report` with its byte offset; truncation
/// surfaces as [`LogError::UnexpectedEof`]). Under `Skip`/`BestEffort`
/// bad events are dropped, XML syntax errors re-sync at the next tag,
/// and START/END pairing falls back to lenient assembly.
pub fn read_log_with<R: BufRead>(
    mut reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut raw = Vec::new();
    let read_result = reader.read_to_end(&mut raw);
    stats.bytes_read += raw.len() as u64;
    read_result?;
    let text = decode_utf8(&raw, policy, report)?;
    read_text(&text, policy, stats, report)
}

/// Minimum input size for the chunked parallel decode. Below this the
/// serial parser wins: spawning scoped threads costs tens of
/// microseconds, which dwarfs the parse itself.
pub const PARALLEL_XES_MIN_BYTES: usize = 64 * 1024;

/// The effective parallel-decode threshold:
/// [`PARALLEL_XES_MIN_BYTES`] unless the `PROCMINE_PARALLEL_XES_MIN_BYTES`
/// environment variable overrides it with a positive integer. Invalid
/// values warn once on stderr and keep the default — tuning knobs must
/// never turn a working pipeline into a failing one. Read once and
/// cached for the process lifetime.
pub fn parallel_xes_min_bytes() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("PROCMINE_PARALLEL_XES_MIN_BYTES").ok();
        match parse_env_threshold(raw.as_deref(), PARALLEL_XES_MIN_BYTES) {
            Ok(v) => v,
            Err(bad) => {
                eprintln!(
                    "warning: ignoring PROCMINE_PARALLEL_XES_MIN_BYTES={bad:?}: \
                     expected a positive integer; keeping {PARALLEL_XES_MIN_BYTES}"
                );
                PARALLEL_XES_MIN_BYTES
            }
        }
    })
}

/// Pure parse of a threshold override: `None` (unset) yields `default`,
/// a positive integer its value, anything else the offending string.
/// Split from the env read so validation is unit-testable without
/// mutating process environment (env mutation races across parallel
/// tests).
fn parse_env_threshold(raw: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(raw) = raw else { return Ok(default) };
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(raw.to_string()),
    }
}

/// [`read_log_with`] with a chunked parallel decode. With `threads > 1`
/// and at least [`PARALLEL_XES_MIN_BYTES`] of input (overridable via
/// the `PROCMINE_PARALLEL_XES_MIN_BYTES` environment variable) the document is
/// split at top-level `<trace` boundaries and chunks are parsed on
/// scoped threads. The fast path engages only when every chunk parses
/// cleanly and no parser state crosses a chunk boundary; otherwise the
/// input is re-parsed serially, so results — including error offsets,
/// recovery behaviour and truncation detection — are identical to
/// [`read_log_with`] in all cases.
pub fn read_log_with_threads<R: BufRead>(
    reader: R,
    policy: RecoveryPolicy,
    threads: usize,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    read_log_with_threads_min_bytes(
        reader,
        policy,
        threads,
        parallel_xes_min_bytes(),
        stats,
        report,
    )
}

/// [`read_log_with_threads`] with an explicit parallel threshold.
/// Exposed for tests and tuning; most callers want the default.
#[doc(hidden)]
pub fn read_log_with_threads_min_bytes<R: BufRead>(
    mut reader: R,
    policy: RecoveryPolicy,
    threads: usize,
    min_bytes: usize,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut raw = Vec::new();
    let read_result = reader.read_to_end(&mut raw);
    stats.bytes_read += raw.len() as u64;
    read_result?;
    let text = decode_utf8(&raw, policy, report)?;
    if threads > 1 && text.len() >= min_bytes {
        if let Some((records, events)) = parallel_parse(&text, threads) {
            stats.events_parsed += events;
            report.records_parsed += events;
            return assemble(records, policy, stats, report);
        }
    }
    read_text(&text, policy, stats, report)
}

/// Validates `raw` as UTF-8 without copying; under a recovery policy an
/// invalid input is decoded lossily (recorded in `report`), matching
/// the historical behaviour.
fn decode_utf8<'a>(
    raw: &'a [u8],
    policy: RecoveryPolicy,
    report: &mut IngestReport,
) -> Result<Cow<'a, str>, LogError> {
    match std::str::from_utf8(raw) {
        Ok(text) => Ok(Cow::Borrowed(text)),
        Err(e) => {
            let offset = e.valid_up_to() as u64;
            if policy.is_strict() {
                let err = LogError::Parse {
                    line: 0,
                    message: format!("input is not valid UTF-8 (first bad byte at {offset})"),
                };
                report.record_error(offset, 0, err.to_string());
                return Err(err);
            }
            report.record_error(offset, 0, "input is not valid UTF-8; decoding lossily");
            report.over_budget(policy)?;
            Ok(String::from_utf8_lossy(raw))
        }
    }
}

/// Serial parse + assembly of a decoded document.
fn read_text(
    text: &str,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut scanner = Scanner::new(text);
    let outcome = parse_records(&mut scanner, policy, stats, report, true)?;
    assemble(outcome.records, policy, stats, report)
}

/// Builds the final [`WorkflowLog`] from parsed event records: strict
/// assembly under `Strict`, lenient START/END pairing otherwise.
fn assemble(
    records: Vec<EventRecord>,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let log = if policy.is_strict() {
        WorkflowLog::from_events(&records).map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?
    } else {
        let mut table = crate::ActivityTable::new();
        let assembled = crate::validate::assemble_executions_with(
            &records,
            &mut table,
            crate::validate::AssemblyPolicy::Lenient,
        )
        .map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?;
        report.records_skipped += assembled.diagnostics.len() as u64;
        let mut log = WorkflowLog::with_activities(table);
        for exec in assembled.executions {
            log.push(exec);
        }
        log
    };
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

/// Per-case, per-activity count of START events not yet closed by an
/// END — an O(1) replacement for the reference parser's linear scans,
/// with provably identical outcomes.
type BalanceMap = HashMap<String, HashMap<String, usize>>;

/// Everything one `parse_records` pass produces. The serial path only
/// uses `records`; the rest lets the parallel coordinator prove that a
/// chunked parse is equivalent to a serial one (or fall back).
struct ParseOutcome<'a> {
    records: Vec<EventRecord>,
    /// `(record index, local trace ordinal)` for records whose case is
    /// an auto-generated `trace-N` name; the parallel merge rewrites
    /// these with the chunk's global trace base.
    default_named: Vec<(usize, usize)>,
    /// `<trace>` opens seen.
    traces: usize,
    /// Successfully closed `<event>` elements.
    events: u64,
    /// Elements still open at EOF, innermost last.
    open_at_eof: Vec<&'a str>,
    /// Close tags that matched no open element, in input order.
    unmatched_closes: Vec<&'a str>,
    /// An `<event>` scope was still active at EOF (a self-closing
    /// `<event/>` sets this without a stack entry).
    in_event_at_eof: bool,
    /// Some event had no `time:timestamp` and fell back to its ordinal,
    /// which depends on global record count — poison for chunking.
    used_ordinal_fallback: bool,
}

/// The pull loop: tags in, event records out. With `check_truncation`
/// an open element at EOF is reported as [`LogError::UnexpectedEof`]
/// (the document was cut off); chunk parses disable that check and let
/// the coordinator judge the residual stack instead.
fn parse_records<'a>(
    scanner: &mut Scanner<'a>,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
    check_truncation: bool,
) -> Result<ParseOutcome<'a>, LogError> {
    let mut records: Vec<EventRecord> = Vec::new();
    let mut default_named: Vec<(usize, usize)> = Vec::new();
    let mut balance = BalanceMap::new();
    let mut events = 0u64;
    let mut used_ordinal_fallback = false;
    // Parse state.
    let mut trace_name: Option<Cow<'a, str>> = None;
    let mut trace_default = false;
    let mut trace_counter = 0usize;
    let mut in_event = false;
    let mut attrs = EventAttrs::default();
    let mut kv = KeyValue::default();
    // Open (non-self-closing) elements, innermost last. A non-empty
    // stack at EOF means the document was cut off between records —
    // truncation that clean XML-level parsing would otherwise miss.
    let mut open_elements: Vec<&'a str> = Vec::new();
    let mut unmatched_closes: Vec<&'a str> = Vec::new();
    loop {
        let tag = match scanner.next(&mut kv) {
            Ok(None) => {
                if check_truncation {
                    if let Some(innermost) = open_elements.last() {
                        let (line, _, byte_offset) = scanner.position();
                        let err = LogError::UnexpectedEof {
                            byte_offset,
                            message: format!("input ends inside an open <{innermost}> element"),
                        };
                        report.record_error(byte_offset, line, err.to_string());
                        if policy.is_strict() {
                            return Err(err);
                        }
                        report.over_budget(policy)?;
                    }
                }
                break;
            }
            Ok(Some(tag)) => tag,
            Err(e) => {
                let (line, _, byte_offset) = scanner.position();
                report.record_error(byte_offset, line, e.to_string());
                if policy.is_strict() {
                    return Err(e);
                }
                report.over_budget(policy)?;
                // Attribute state is suspect after a syntax error.
                in_event = false;
                scanner.resync();
                continue;
            }
        };
        match tag {
            Tag::Open {
                name,
                self_closing: false,
            } => open_elements.push(name),
            Tag::Close(name) => {
                // Pop to the innermost matching element; mismatches are
                // tolerated (recovery resync can drop close tags).
                if let Some(i) = open_elements.iter().rposition(|n| *n == name) {
                    open_elements.truncate(i);
                } else {
                    unmatched_closes.push(name);
                }
            }
            _ => {}
        }
        match tag {
            Tag::Open { name: "trace", .. } => {
                trace_counter += 1;
                trace_name = Some(Cow::Owned(format!("trace-{trace_counter}")));
                trace_default = true;
            }
            Tag::Open { name: "event", .. } => {
                in_event = true;
                attrs.clear();
            }
            Tag::Open {
                name: "string" | "date" | "int" | "float" | "boolean",
                ..
            } => {
                // Nested attributes are allowed by XES; we only need the
                // top-level key/value, children are skipped naturally.
                let key = kv.key.take().unwrap_or(Cow::Borrowed(""));
                let value = kv.value.take().unwrap_or(Cow::Borrowed(""));
                if in_event {
                    attrs.set(&key, value);
                } else if key == "concept:name" && trace_name.is_some() {
                    trace_name = Some(value);
                    trace_default = false;
                }
            }
            Tag::Close("event") => {
                in_event = false;
                let len_before = records.len();
                match close_event(
                    &attrs,
                    trace_name.as_deref(),
                    &mut records,
                    &mut balance,
                    scanner,
                    &mut used_ordinal_fallback,
                ) {
                    Ok(()) => {
                        stats.events_parsed += 1;
                        report.records_parsed += 1;
                        events += 1;
                        if trace_default && trace_name.is_some() {
                            for i in len_before..records.len() {
                                default_named.push((i, trace_counter));
                            }
                        }
                    }
                    Err(e) => {
                        let (line, _, byte_offset) = scanner.position();
                        report.record_error(byte_offset, line, e.to_string());
                        if policy.is_strict() {
                            return Err(e);
                        }
                        report.records_skipped += 1;
                        report.over_budget(policy)?;
                    }
                }
            }
            Tag::Close("trace") => {
                trace_name = None;
            }
            _ => {}
        }
    }
    Ok(ParseOutcome {
        records,
        default_named,
        traces: trace_counter,
        events,
        open_at_eof: open_elements,
        unmatched_closes,
        in_event_at_eof: in_event,
        used_ordinal_fallback,
    })
}

/// The four event attributes the log model reads. Last write wins,
/// like the reference parser's attribute map.
#[derive(Default)]
struct EventAttrs<'a> {
    name: Option<Cow<'a, str>>,
    transition: Option<Cow<'a, str>>,
    timestamp: Option<Cow<'a, str>>,
    output: Option<Cow<'a, str>>,
}

impl<'a> EventAttrs<'a> {
    fn clear(&mut self) {
        *self = EventAttrs::default();
    }

    fn set(&mut self, key: &str, value: Cow<'a, str>) {
        match key {
            "concept:name" => self.name = Some(value),
            "lifecycle:transition" => self.transition = Some(value),
            "time:timestamp" => self.timestamp = Some(value),
            "procmine:output" => self.output = Some(value),
            _ => {}
        }
    }
}

/// Turns one closed `<event>` into START/END records. Validates before
/// pushing, so a failed event leaves `records` untouched.
fn close_event(
    attrs: &EventAttrs<'_>,
    trace_name: Option<&str>,
    records: &mut Vec<EventRecord>,
    balance: &mut BalanceMap,
    scanner: &Scanner<'_>,
    used_ordinal_fallback: &mut bool,
) -> Result<(), LogError> {
    let case = trace_name.unwrap_or("trace-0");
    let activity = attrs
        .name
        .as_deref()
        .ok_or_else(|| scanner.error("event without concept:name"))?;
    let stamp = match attrs.timestamp.as_deref() {
        Some(ts) => iso8601_to_millis(ts).map_err(|message| scanner.error(message))?,
        None => {
            *used_ordinal_fallback = true;
            records.len() as u64 // ordinal fallback
        }
    };
    let transition: Cow<'_, str> = match attrs.transition.as_deref() {
        Some(s) => Cow::Owned(s.to_ascii_lowercase()),
        None => Cow::Borrowed("complete"),
    };
    let output = attrs.output.as_deref().map(|v| {
        v.split(';')
            .filter_map(|x| x.trim().parse::<i64>().ok())
            .collect::<Vec<i64>>()
    });
    if transition == "start" {
        records.push(EventRecord {
            process: case.to_string(),
            activity: activity.to_string(),
            kind: EventKind::Start,
            time: stamp,
            output: None,
        });
        let open = balance
            .entry(case.to_string())
            .or_default()
            .entry(activity.to_string())
            .or_insert(0);
        *open += 1;
    } else {
        // Everything else — complete, and coarse lifecycles like
        // "ate_abort" — closes the instance. If no START is open for
        // this activity in this case, synthesize an instantaneous one.
        let open = balance
            .get_mut(case)
            .and_then(|acts| acts.get_mut(activity));
        match open {
            Some(n) if *n > 0 => *n -= 1,
            _ => records.push(EventRecord {
                process: case.to_string(),
                activity: activity.to_string(),
                kind: EventKind::Start,
                time: stamp,
                output: None,
            }),
        }
        records.push(EventRecord {
            process: case.to_string(),
            activity: activity.to_string(),
            kind: EventKind::End,
            time: stamp,
            output,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Chunked parallel decode.
// ---------------------------------------------------------------------------

/// Byte offsets of `<trace` tokens whose next byte cannot continue an
/// XML name — candidate top-level trace boundaries. Deliberately
/// conservative in both directions: a token inside a comment or
/// attribute value still becomes a split point (the resulting broken
/// chunk fails validation and forces the serial fallback), and a
/// Unicode-delimited `<trace…>` is missed (its chunk simply contains
/// more than one trace, which the merge handles via per-chunk counts).
fn trace_splits(bytes: &[u8]) -> Vec<usize> {
    let mut splits = Vec::new();
    let mut i = 0usize;
    while i + 6 < bytes.len() {
        match find_byte(b'<', &bytes[i..]) {
            Some(k) => i += k,
            None => break,
        }
        if i + 6 >= bytes.len() {
            break;
        }
        if &bytes[i + 1..i + 6] == b"trace" {
            let d = bytes[i + 6];
            let name_cont = d.is_ascii_alphanumeric()
                || matches!(d, b':' | b'_' | b'-' | b'.')
                || !d.is_ascii();
            if !name_cont {
                splits.push(i);
                i += 6;
                continue;
            }
        }
        i += 1;
    }
    splits
}

/// Parses one chunk in isolation. Any error at all disqualifies the
/// chunk (`None`): errors must be produced by the serial parser so
/// their offsets and recovery interplay are exact.
fn parse_chunk(chunk: &str) -> Option<ParseOutcome<'_>> {
    let mut stats = CodecStats::default();
    let mut report = IngestReport::default();
    let mut scanner = Scanner::new(chunk);
    let outcome = parse_records(
        &mut scanner,
        RecoveryPolicy::Strict,
        &mut stats,
        &mut report,
        false,
    )
    .ok()?;
    if report.errors_total != 0 {
        return None;
    }
    Some(outcome)
}

/// Splits at trace boundaries, parses chunks on scoped threads, and
/// merges — or returns `None` when a serial parse is required for
/// exactness.
fn parallel_parse(text: &str, threads: usize) -> Option<(Vec<EventRecord>, u64)> {
    let mut bounds = vec![0usize];
    bounds.extend(trace_splits(text.as_bytes()));
    bounds.dedup();
    bounds.push(text.len());
    let nchunks = bounds.len() - 1;
    if nchunks < 2 {
        return None;
    }
    let workers = threads.min(nchunks);
    let outcomes: Vec<Option<ParseOutcome<'_>>> = std::thread::scope(|scope| {
        let bounds = &bounds;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * nchunks / workers;
                let hi = (w + 1) * nchunks / workers;
                scope.spawn(move || {
                    (lo..hi)
                        .map(|c| parse_chunk(&text[bounds[c]..bounds[c + 1]]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::with_capacity(nchunks);
        for h in handles {
            match h.join() {
                Ok(v) => all.extend(v),
                Err(_) => all.push(None), // worker panicked → serial fallback
            }
        }
        all
    });
    if outcomes.len() != nchunks {
        return None;
    }
    merge_chunks(outcomes)
}

/// Validates that the chunked parse is equivalent to a serial one and
/// concatenates the per-chunk records. Every rule here exists because
/// the serial parser carries state across what is now a chunk
/// boundary; violating any of them returns `None` (serial fallback).
fn merge_chunks(outcomes: Vec<Option<ParseOutcome<'_>>>) -> Option<(Vec<EventRecord>, u64)> {
    let n = outcomes.len();
    let mut chunks: Vec<ParseOutcome<'_>> = Vec::with_capacity(n);
    for o in outcomes {
        chunks.push(o?);
    }
    for (i, c) in chunks.iter().enumerate() {
        let last = i + 1 == n;
        // Ordinal timestamps depend on the global record count.
        if c.used_ordinal_fallback {
            return None;
        }
        // An `<event>` scope crossing a boundary would attach the next
        // chunk's attributes to it.
        if !last && c.in_event_at_eof {
            return None;
        }
        if i == 0 {
            // The prefix may leave `<log>` (and stray elements) open,
            // but an open `<event>` means records could straddle.
            if !c.unmatched_closes.is_empty() || c.open_at_eof.contains(&"event") {
                return None;
            }
        } else if !last {
            // Interior chunks must be fully self-contained.
            if !c.open_at_eof.is_empty() || !c.unmatched_closes.is_empty() {
                return None;
            }
        } else if !c.open_at_eof.is_empty() {
            // A serial parse would flag truncation here.
            return None;
        }
    }
    // Replay the last chunk's unmatched closes (typically `</log>`)
    // against the prefix's residual stack exactly like the parser
    // (rposition + truncate); anything left means a serial parse would
    // report truncation.
    let mut stack: Vec<&str> = chunks[0].open_at_eof.clone();
    for name in &chunks[n - 1].unmatched_closes {
        if let Some(i) = stack.iter().rposition(|s| s == name) {
            stack.truncate(i);
        }
    }
    if !stack.is_empty() {
        return None;
    }
    // Rewrite auto-generated trace names with global ordinals.
    let mut base = 0usize;
    for c in &mut chunks {
        for &(idx, ord) in &c.default_named {
            c.records[idx].process = format!("trace-{}", base + ord);
        }
        base += c.traces;
    }
    // Case names must be disjoint across chunks: START/END balance (and
    // hence instantaneous-event synthesis) is tracked per case.
    {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (ci, c) in chunks.iter().enumerate() {
            let mut prev_case: Option<&str> = None;
            for r in &c.records {
                let case = r.process.as_str();
                if prev_case == Some(case) {
                    continue; // consecutive records share their case
                }
                prev_case = Some(case);
                match seen.get(case) {
                    Some(&owner) if owner != ci => return None,
                    _ => {
                        seen.insert(case, ci);
                    }
                }
            }
        }
    }
    let total: usize = chunks.iter().map(|c| c.records.len()).sum();
    let mut records = Vec::with_capacity(total);
    let mut events = 0u64;
    for c in chunks {
        events += c.events;
        records.extend(c.records);
    }
    Some((records, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActivityInstance;
    use crate::Execution;

    #[test]
    fn civil_date_round_trip() {
        for days in [-719468i64, -1, 0, 1, 365, 10957, 18993, 2932896] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "{y}-{m}-{d}");
        }
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(10957), (2000, 1, 1));
        assert_eq!(days_from_civil(2026, 7, 5), 20639);
    }

    #[test]
    fn iso8601_round_trip() {
        for millis in [0u64, 1, 999, 1000, 86_400_000, 1_700_000_000_123] {
            let iso = millis_to_iso8601(millis);
            assert_eq!(iso8601_to_millis(&iso).unwrap(), millis, "{iso}");
        }
        assert_eq!(millis_to_iso8601(0), "1970-01-01T00:00:00.000+00:00");
    }

    #[test]
    fn iso8601_variants() {
        assert_eq!(iso8601_to_millis("1970-01-01T00:00:01Z").unwrap(), 1000);
        assert_eq!(iso8601_to_millis("1970-01-01T00:00:00.5Z").unwrap(), 500);
        assert_eq!(
            iso8601_to_millis("1970-01-01T01:00:00+01:00").unwrap(),
            0,
            "offset ahead of UTC subtracts"
        );
        assert_eq!(
            iso8601_to_millis("1969-12-31T23:00:00-01:00").unwrap(),
            0,
            "offset behind UTC adds"
        );
        assert_eq!(iso8601_to_millis("1970-01-01 00:00:00").unwrap(), 0);
        for bad in [
            "1970-13-01T00:00:00Z",
            "not a date",
            "1970-01-01T00:00",
            "1969-01-01T00:00:00Z",
            "1970-01-01T00:00:61Z",
        ] {
            assert!(iso8601_to_millis(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn iso8601_lowercase_separators() {
        assert_eq!(iso8601_to_millis("1970-01-01t00:00:01z").unwrap(), 1000);
        assert_eq!(iso8601_to_millis("1970-01-01t00:00:01Z").unwrap(), 1000);
        assert_eq!(iso8601_to_millis("1970-01-01T00:00:01z").unwrap(), 1000);
    }

    #[test]
    fn iso8601_leap_second_clamps() {
        // `:60` folds into the last ordinary second, fraction intact.
        assert_eq!(
            iso8601_to_millis("1998-12-31T23:59:60.500Z").unwrap(),
            iso8601_to_millis("1998-12-31T23:59:59.500Z").unwrap(),
        );
        // `:61` is still rejected.
        assert!(iso8601_to_millis("1998-12-31T23:59:61Z").is_err());
    }

    #[test]
    fn iso8601_parse_format_fixed_point() {
        // format ∘ parse is idempotent across accepted spellings.
        for text in [
            "1970-01-01T00:00:00.000+00:00",
            "1998-12-31T23:59:60.500Z",
            "2024-06-01t12:34:56z",
            "2024-06-01 12:34:56.789",
            "2024-06-01T13:34:56+01:00",
        ] {
            let millis = iso8601_to_millis(text).unwrap();
            let formatted = millis_to_iso8601(millis);
            assert_eq!(
                iso8601_to_millis(&formatted).unwrap(),
                millis,
                "parse(format(parse({text})))"
            );
            assert_eq!(
                millis_to_iso8601(iso8601_to_millis(&formatted).unwrap()),
                formatted,
                "format is a fixed point for {text}"
            );
        }
    }

    #[test]
    fn xes_round_trip_instantaneous() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("<trace>"));
        assert!(text.contains(r#"<string key="lifecycle:transition" value="complete"/>"#));
        assert!(
            !text.contains(r#"value="start""#),
            "instantaneous → complete only"
        );

        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
    }

    #[test]
    fn xes_round_trip_intervals_and_outputs() {
        let mut table = crate::ActivityTable::new();
        let a = table.intern("Approve & Review");
        let b = table.intern("Ship<fast>");
        let mut log = WorkflowLog::with_activities(table);
        log.push(
            Execution::new(
                "case \"1\"",
                vec![
                    ActivityInstance {
                        activity: a,
                        start: 0,
                        end: 5000,
                        output: Some(vec![-3, 12]),
                    },
                    ActivityInstance {
                        activity: b,
                        start: 2000,
                        end: 9000,
                        output: None,
                    },
                ],
            )
            .unwrap(),
        );
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        let exec = &back.executions()[0];
        assert_eq!(exec.id, "case \"1\"");
        assert_eq!(exec.instances().len(), 2);
        let aid = back.activities().id("Approve & Review").unwrap();
        let inst = exec.instances().iter().find(|i| i.activity == aid).unwrap();
        assert_eq!((inst.start, inst.end), (0, 5000));
        assert_eq!(inst.output.as_deref(), Some(&[-3i64, 12][..]));
        // Overlap preserved.
        assert_eq!(exec.precedence_pairs().count(), 0);
    }

    #[test]
    fn reads_foreign_xes() {
        // A PM4Py-style export: no start events, extra attributes,
        // comments, single quotes.
        let text = r#"<?xml version='1.0' encoding='UTF-8'?>
<!-- exported elsewhere -->
<log xes.version="1846.2016">
  <string key="source" value="other tool"/>
  <trace>
    <string key="concept:name" value="order-17"/>
    <string key="customer" value="ACME &amp; sons"/>
    <event>
      <string key="concept:name" value="register"/>
      <date key="time:timestamp" value="2024-01-01T10:00:00.000+00:00"/>
      <int key="amount" value="250"/>
    </event>
    <event>
      <string key="concept:name" value="ship"/>
      <date key="time:timestamp" value="2024-01-02T10:00:00.000+00:00"/>
    </event>
  </trace>
</log>"#;
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.executions()[0].id, "order-17");
        assert_eq!(log.display_sequences(), vec!["register ship"]);
    }

    #[test]
    fn malformed_xml_is_rejected() {
        for bad in [
            "<log><trace><event></log>", // mismatched nesting is tolerated…
            "<log><event><string key=></event></log>", // …but broken attributes are not
            "<log><trace><event><string key='concept:name' value='A'",
        ] {
            // Only assert no panic; structurally-broken inputs either
            // error or produce an empty/partial log.
            let _ = read_log(bad.as_bytes());
        }
        let bad_attr =
            "<log><event><string key=\"concept:name\" value=\"unterminated></event></log>";
        assert!(read_log(bad_attr.as_bytes()).is_err());
    }

    #[test]
    fn mining_from_xes_works() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
        assert_eq!(back.activities().len(), log.activities().len());
    }

    /// Parses `buf` both serially and with the chunked mode forced on
    /// (threshold 0) and asserts identical logs and reports.
    fn assert_parallel_matches_serial(buf: &[u8], policy: RecoveryPolicy) {
        let mut serial_stats = CodecStats::default();
        let mut serial_report = IngestReport::default();
        let serial = read_log_with(buf, policy, &mut serial_stats, &mut serial_report);
        let mut par_stats = CodecStats::default();
        let mut par_report = IngestReport::default();
        let par =
            read_log_with_threads_min_bytes(buf, policy, 4, 0, &mut par_stats, &mut par_report);
        assert_eq!(serial_report, par_report);
        assert_eq!(serial_stats, par_stats);
        match (serial, par) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.display_sequences(), b.display_sequences());
                assert_eq!(a.executions(), b.executions());
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("serial {a:?} vs parallel {b:?}"),
        }
    }

    #[test]
    fn parallel_read_matches_serial_on_clean_log() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        assert_parallel_matches_serial(&buf, RecoveryPolicy::Strict);
        assert_parallel_matches_serial(&buf, RecoveryPolicy::BestEffort);
    }

    #[test]
    fn parallel_read_renumbers_unnamed_traces() {
        // Traces without concept:name get trace-1, trace-2, … ordinals
        // that must be global, not per-chunk.
        let mut doc = String::from("<log>\n");
        for i in 0..6 {
            doc.push_str("<trace>\n<event>\n");
            doc.push_str(&format!(
                "<string key=\"concept:name\" value=\"act{i}\"/>\n"
            ));
            doc.push_str(
                "<date key=\"time:timestamp\" value=\"2024-01-01T10:00:00Z\"/>\n</event>\n</trace>\n",
            );
        }
        doc.push_str("</log>\n");
        assert_parallel_matches_serial(doc.as_bytes(), RecoveryPolicy::Strict);
        let log = read_log_with_threads_min_bytes(
            doc.as_bytes(),
            RecoveryPolicy::Strict,
            4,
            0,
            &mut CodecStats::default(),
            &mut IngestReport::default(),
        )
        .unwrap();
        let ids: Vec<_> = log.executions().iter().map(|e| e.id.as_str()).collect();
        assert_eq!(
            ids,
            ["trace-1", "trace-2", "trace-3", "trace-4", "trace-5", "trace-6"]
        );
    }

    #[test]
    fn parallel_read_matches_serial_on_truncated_and_corrupt_input() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        for cut in [buf.len() / 3, buf.len() / 2, buf.len() - 3] {
            assert_parallel_matches_serial(&buf[..cut], RecoveryPolicy::Strict);
            assert_parallel_matches_serial(&buf[..cut], RecoveryPolicy::BestEffort);
        }
        let mut corrupt = buf.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] = b'<';
        assert_parallel_matches_serial(&corrupt, RecoveryPolicy::Strict);
        assert_parallel_matches_serial(&corrupt, RecoveryPolicy::BestEffort);
    }

    #[test]
    fn parallel_read_falls_back_on_shared_case_names() {
        // Two explicit traces with the same name: START/END balance
        // spans chunks, so the chunked mode must detect and fall back.
        let doc = "<log>\
<trace><string key=\"concept:name\" value=\"same\"/>\
<event><string key=\"concept:name\" value=\"A\"/>\
<string key=\"lifecycle:transition\" value=\"start\"/>\
<date key=\"time:timestamp\" value=\"2024-01-01T10:00:00Z\"/></event></trace>\
<trace><string key=\"concept:name\" value=\"same\"/>\
<event><string key=\"concept:name\" value=\"A\"/>\
<string key=\"lifecycle:transition\" value=\"complete\"/>\
<date key=\"time:timestamp\" value=\"2024-01-01T11:00:00Z\"/></event></trace>\
</log>";
        assert_parallel_matches_serial(doc.as_bytes(), RecoveryPolicy::BestEffort);
    }

    #[test]
    fn parallel_read_matches_serial_on_ordinal_timestamps() {
        // Events without time:timestamp use a global ordinal — chunked
        // mode must fall back rather than restart ordinals per chunk.
        let mut doc = String::from("<log>");
        for i in 0..4 {
            doc.push_str(&format!(
                "<trace><event><string key=\"concept:name\" value=\"a{i}\"/></event></trace>"
            ));
        }
        doc.push_str("</log>");
        assert_parallel_matches_serial(doc.as_bytes(), RecoveryPolicy::Strict);
    }

    #[test]
    fn xes_stats_count_bytes_events_executions() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let mut stats = CodecStats::default();
        let back = read_log_with_stats(buf.as_slice(), &mut stats).unwrap();
        assert_eq!(stats.bytes_read, buf.len() as u64);
        assert_eq!(stats.events_parsed, 8, "4 instantaneous events per trace");
        assert_eq!(stats.executions_parsed, back.len() as u64);
    }

    #[test]
    fn env_threshold_override_parses_and_validates() {
        let d = PARALLEL_XES_MIN_BYTES;
        assert_eq!(parse_env_threshold(None, d), Ok(d));
        assert_eq!(parse_env_threshold(Some("4096"), d), Ok(4096));
        assert_eq!(parse_env_threshold(Some("  8192 "), d), Ok(8192));
        assert_eq!(parse_env_threshold(Some("1"), d), Ok(1));
        assert_eq!(parse_env_threshold(Some("0"), d), Err("0".to_string()));
        assert_eq!(parse_env_threshold(Some("-5"), d), Err("-5".to_string()));
        assert_eq!(parse_env_threshold(Some("64k"), d), Err("64k".to_string()));
        assert_eq!(parse_env_threshold(Some(""), d), Err(String::new()));
    }
}
