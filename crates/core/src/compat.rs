//! Deprecated pre-session entry points, kept for one release.
//!
//! Before [`MineSession`](crate::MineSession), every instrumented
//! pipeline had a `*_instrumented` twin that hand-threaded
//! `(sink, tracer)` through the call. Those twins now forward to the
//! session-based `*_in` forms; migrate by building a session once and
//! passing it instead:
//!
//! ```
//! use procmine_core::{mine_general_dag_in, MineSession, MinerMetrics, MinerOptions, Tracer};
//! # use procmine_log::WorkflowLog;
//! # let log = WorkflowLog::from_strings(["ABCF", "ACDF"]).unwrap();
//! let mut metrics = MinerMetrics::new();
//! let mut session = MineSession::new()
//!     .with_tracer(Tracer::new())
//!     .with_sink(&mut metrics);
//! let model = mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
//! ```

use crate::conformance::{ConformanceReport, Violation};
use crate::incremental::IncrementalMiner;
use crate::session::MineSession;
use crate::telemetry::{ConformanceMetrics, MetricsSink};
use crate::trace::Tracer;
use crate::{Algorithm, MineError, MinedModel, MinerOptions};
use procmine_log::{Execution, WorkflowLog};

/// Builds the throwaway serial session the deprecated twins run in.
fn shim_session<'s, S>(sink: &'s mut S, tracer: &Tracer) -> MineSession<&'s mut S> {
    MineSession::new()
        .with_tracer(tracer.clone())
        .with_sink(sink)
}

/// Deprecated spelling of
/// [`mine_special_dag_in`](crate::mine_special_dag_in): wraps `sink`
/// and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `mine_special_dag_in` instead")]
pub fn mine_special_dag_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<MinedModel, MineError> {
    crate::special_dag::mine_special_dag_in(&mut shim_session(sink, tracer), log, options)
}

/// Deprecated spelling of
/// [`mine_general_dag_in`](crate::mine_general_dag_in): wraps `sink`
/// and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `mine_general_dag_in` instead")]
pub fn mine_general_dag_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<MinedModel, MineError> {
    crate::general_dag::mine_general_dag_in(&mut shim_session(sink, tracer), log, options)
}

/// Deprecated spelling of [`mine_cyclic_in`](crate::mine_cyclic_in):
/// wraps `sink` and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `mine_cyclic_in` instead")]
pub fn mine_cyclic_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<MinedModel, MineError> {
    crate::cyclic::mine_cyclic_in(&mut shim_session(sink, tracer), log, options)
}

/// Deprecated spelling of [`mine_auto_in`](crate::mine_auto_in): wraps
/// `sink` and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `mine_auto_in` instead")]
pub fn mine_auto_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<(MinedModel, Algorithm), MineError> {
    crate::miner::mine_auto_in(&mut shim_session(sink, tracer), log, options)
}

/// Deprecated spelling of
/// [`mine_general_dag_in`](crate::mine_general_dag_in) with
/// `threads > 1`: wraps the arguments in a temporary [`MineSession`]
/// configured via
/// [`with_threads`](crate::MineSession::with_threads).
#[deprecated(
    note = "build a `MineSession` with `.with_threads(n)` and call `mine_general_dag_in` instead"
)]
pub fn mine_general_dag_parallel_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<MinedModel, MineError> {
    crate::general_dag::mine_general_dag_in(
        &mut shim_session(sink, tracer).with_threads(threads),
        log,
        options,
    )
}

/// Deprecated spelling of
/// [`check_conformance_in`](crate::conformance::check_conformance_in):
/// wraps `sink` and `tracer` in a temporary serial [`MineSession`].
#[deprecated(note = "build a `MineSession` and call `check_conformance_in` instead")]
pub fn check_conformance_instrumented<S: MetricsSink<ConformanceMetrics>>(
    model: &MinedModel,
    log: &WorkflowLog,
    sink: &mut S,
    tracer: &Tracer,
) -> ConformanceReport {
    crate::conformance::check_conformance_in(&mut shim_session(sink, tracer), model, log)
}

/// Deprecated spelling of
/// [`check_execution_in`](crate::conformance::check_execution_in):
/// wraps `sink` in a temporary serial [`MineSession`] with tracing
/// disabled (the per-execution check never traced).
#[deprecated(note = "build a `MineSession` and call `check_execution_in` instead")]
pub fn check_execution_instrumented<S: MetricsSink<ConformanceMetrics>>(
    model: &MinedModel,
    exec: &Execution,
    sink: &mut S,
) -> Vec<Violation> {
    crate::conformance::check_execution_in(&mut MineSession::new().with_sink(sink), model, exec)
}

impl IncrementalMiner {
    /// Deprecated spelling of
    /// [`model_in`](IncrementalMiner::model_in) from before sessions
    /// existed: wraps `sink` and `tracer` in a temporary serial session.
    #[deprecated(note = "build a `MineSession` and call `model_in` instead")]
    pub fn model_instrumented<S: MetricsSink>(
        &self,
        sink: &mut S,
        tracer: &Tracer,
    ) -> Result<MinedModel, MineError> {
        self.model_in(&mut shim_session(sink, tracer))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::telemetry::MinerMetrics;

    #[test]
    fn deprecated_twins_match_session_forms() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let options = MinerOptions::default();
        let mut metrics = MinerMetrics::new();
        let tracer = Tracer::new();
        let shimmed = mine_general_dag_instrumented(&log, &options, &mut metrics, &tracer).unwrap();
        let direct = crate::mine_general_dag(&log, &options).unwrap();
        assert_eq!(shimmed.edges_named(), direct.edges_named());
        assert_eq!(metrics.edges_final, direct.edge_count() as u64);
        assert!(
            tracer.records().iter().any(|r| r.name == "mine.general"),
            "shim forwards the caller's tracer"
        );

        let parallel = mine_general_dag_parallel_instrumented(
            &log,
            &options,
            4,
            &mut MinerMetrics::new(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(parallel.edges_named(), direct.edges_named());

        let (auto, alg) = mine_auto_instrumented(
            &log,
            &options,
            &mut MinerMetrics::new(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(alg, Algorithm::GeneralDag);
        assert_eq!(auto.edges_named(), direct.edges_named());
    }

    #[test]
    fn deprecated_conformance_twins_still_work() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let model = crate::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut metrics = ConformanceMetrics::new();
        let report =
            check_conformance_instrumented(&model, &log, &mut metrics, &Tracer::disabled());
        assert!(report.is_conformal());
        assert_eq!(metrics.executions_checked, log.len() as u64);

        let mut metrics = ConformanceMetrics::new();
        let violations = check_execution_instrumented(&model, &log.executions()[0], &mut metrics);
        assert!(violations.is_empty());
        assert_eq!(metrics.executions_checked, 1);
    }
}
