//! Log corruption for the §6 noise experiments.
//!
//! The paper names three noise sources: "erroneous activities were
//! inserted in the log, or some activities that were executed were not
//! logged, or some activities were reported in out of order time
//! sequence". [`corrupt_log`] injects all three at configurable rates,
//! producing the workloads for the noise-threshold sweep.

use procmine_log::{ActivityId, Execution, WorkflowLog};
use rand::Rng;

/// Per-execution corruption probabilities. Each kind of error strikes an
/// execution independently with the given probability; within a struck
/// execution one uniformly-chosen position is affected.
#[derive(Debug, Clone, Default)]
pub struct NoiseConfig {
    /// Probability of swapping two adjacent activities (out-of-order
    /// reporting).
    pub swap_prob: f64,
    /// Probability of dropping one activity (unlogged execution). Never
    /// drops the first or last activity, so case boundaries stay intact.
    pub drop_prob: f64,
    /// Probability of inserting a duplicate of a random activity at a
    /// random interior position (erroneous insertion).
    pub insert_prob: f64,
}

impl NoiseConfig {
    /// Noise affecting only activity order — the error model analyzed in
    /// §6 ("activities that must happen in sequence are reported out of
    /// sequence with an error rate of ε").
    pub fn swap_only(eps: f64) -> Self {
        NoiseConfig {
            swap_prob: eps,
            ..Default::default()
        }
    }
}

/// Returns a corrupted copy of `log`. The activity table is preserved;
/// outputs and interval structure are rebuilt as instantaneous
/// sequences (noise experiments use the paper's list-form logs).
pub fn corrupt_log<R: Rng + ?Sized>(
    log: &WorkflowLog,
    cfg: &NoiseConfig,
    rng: &mut R,
) -> WorkflowLog {
    let mut out = WorkflowLog::with_activities(log.activities().clone());
    let n = log.activities().len();
    for exec in log.executions() {
        let mut seq: Vec<ActivityId> = exec.sequence();

        if cfg.swap_prob > 0.0 && seq.len() >= 2 && rng.gen_bool(cfg.swap_prob) {
            let i = rng.gen_range(0..seq.len() - 1);
            seq.swap(i, i + 1);
        }
        if cfg.drop_prob > 0.0 && seq.len() >= 3 && rng.gen_bool(cfg.drop_prob) {
            let i = rng.gen_range(1..seq.len() - 1);
            seq.remove(i);
        }
        if cfg.insert_prob > 0.0 && n > 0 && rng.gen_bool(cfg.insert_prob) {
            let a = ActivityId::from_index(rng.gen_range(0..n));
            let i = rng.gen_range(1..=seq.len().saturating_sub(1).max(1));
            seq.insert(i, a);
        }

        out.push(
            Execution::from_ids(exec.id.clone(), &seq).expect("corrupted sequences stay non-empty"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_log(m: usize) -> WorkflowLog {
        WorkflowLog::from_strings(std::iter::repeat("ABCDE").take(m)).unwrap()
    }

    #[test]
    fn zero_noise_is_identity() {
        let log = chain_log(20);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = corrupt_log(&log, &NoiseConfig::default(), &mut rng);
        assert_eq!(noisy.display_sequences(), log.display_sequences());
    }

    #[test]
    fn swap_changes_roughly_eps_fraction() {
        let log = chain_log(2000);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = corrupt_log(&log, &NoiseConfig::swap_only(0.2), &mut rng);
        let changed = noisy
            .display_sequences()
            .iter()
            .filter(|s| s.as_str() != "A B C D E")
            .count();
        assert!(
            (300..500).contains(&changed),
            "got {changed} ≈ 400 expected"
        );
    }

    #[test]
    fn drop_removes_interior_only() {
        let log = chain_log(500);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = NoiseConfig {
            drop_prob: 1.0,
            ..Default::default()
        };
        let noisy = corrupt_log(&log, &cfg, &mut rng);
        for e in noisy.executions() {
            assert_eq!(e.len(), 4);
            let seq = e.display(noisy.activities());
            assert!(seq.starts_with('A') && seq.ends_with('E'));
        }
    }

    #[test]
    fn insert_adds_one_activity() {
        let log = chain_log(100);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = NoiseConfig {
            insert_prob: 1.0,
            ..Default::default()
        };
        let noisy = corrupt_log(&log, &cfg, &mut rng);
        for e in noisy.executions() {
            assert_eq!(e.len(), 6);
        }
    }

    #[test]
    fn table_is_preserved() {
        let log = chain_log(10);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = NoiseConfig {
            swap_prob: 0.5,
            drop_prob: 0.5,
            insert_prob: 0.5,
        };
        let noisy = corrupt_log(&log, &cfg, &mut rng);
        assert_eq!(noisy.activities().len(), log.activities().len());
        assert_eq!(noisy.len(), log.len());
    }
}
