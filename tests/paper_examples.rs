//! Every worked example of the paper, executed end-to-end through the
//! public facade API. These complement the per-crate unit tests by
//! acting as the "does the library reproduce the paper's narrative"
//! checklist.

use procmine::graph::DiGraph;
use procmine::log::WorkflowLog;
use procmine::mine::conformance::{check_execution, Violation};
use procmine::mine::follows::FollowsAnalysis;
use procmine::mine::{mine_auto, Algorithm, MinedModel, MinerOptions};

fn idx(log: &WorkflowLog, name: &str) -> usize {
    log.activities().id(name).unwrap().index()
}

/// Example 2: sample executions of the Figure 1 graph.
#[test]
fn example_2_executions_of_figure_1() {
    let log = WorkflowLog::from_strings(["ABCE", "ACDBE", "ACDE"]).unwrap();
    // The Figure 1 graph over the same activity table.
    let names: Vec<String> = log.activities().names().to_vec();
    let e = |a: &str, b: &str| (idx(&log, a), idx(&log, b));
    let g = DiGraph::from_edges(
        names,
        [
            e("A", "B"),
            e("A", "C"),
            e("B", "E"),
            e("C", "D"),
            e("C", "E"),
            e("D", "E"),
        ],
    );
    let model = MinedModel::from_graph(g);
    for exec in log.executions() {
        assert!(
            check_execution(&model, exec).is_empty(),
            "{} should be consistent with Figure 1",
            exec.display(log.activities())
        );
    }
}

/// Example 3: follows/depends relations on the two logs.
#[test]
fn example_3_dependencies() {
    let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ADBE"]).unwrap();
    let f = FollowsAnalysis::analyze(&log);
    let (a, b, d) = (idx(&log, "A"), idx(&log, "B"), idx(&log, "D"));
    assert!(f.depends(a, b), "B depends on A");
    assert!(
        f.independent(b, d),
        "B and D independent (D follows B via C)"
    );

    let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ADBE", "ADCE"]).unwrap();
    let f = FollowsAnalysis::analyze(&log);
    let (b, d) = (idx(&log, "B"), idx(&log, "D"));
    assert!(f.depends(d, b), "B depends on D once ADCE is added");
}

/// Example 4: consistency of executions with Figure 1.
#[test]
fn example_4_consistency() {
    let log = WorkflowLog::from_strings(["ABCDE"]).unwrap();
    let names: Vec<String> = log.activities().names().to_vec();
    let e = |a: &str, b: &str| (idx(&log, a), idx(&log, b));
    let g = DiGraph::from_edges(
        names,
        [
            e("A", "B"),
            e("A", "C"),
            e("B", "E"),
            e("C", "D"),
            e("C", "E"),
            e("D", "E"),
        ],
    );
    let model = MinedModel::from_graph(g);

    let to_exec = |s: &str| {
        let ids: Vec<_> = s
            .chars()
            .map(|c| log.activities().id(&c.to_string()).unwrap())
            .collect();
        procmine::log::Execution::from_ids(s, &ids).unwrap()
    };
    assert!(check_execution(&model, &to_exec("ACBE")).is_empty());
    let violations = check_execution(&model, &to_exec("ADBE"));
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::Unreachable { activity } if activity == "D")));
}

/// Example 5: both Figure 2 graphs are dependency graphs for the log,
/// but only the first is conformal (allows ADCE).
#[test]
fn example_5_execution_completeness_matters() {
    let log = WorkflowLog::from_strings(["ADCE", "ABCDE"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    // The miner must produce a conformal graph, i.e. admit ADCE.
    for exec in log.executions() {
        assert!(
            check_execution(&model, exec).is_empty(),
            "{}",
            exec.display(log.activities())
        );
    }
}

/// Example 6 / Figure 3: the special-DAG pipeline.
#[test]
fn example_6_special_dag() {
    let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert_eq!(algorithm, Algorithm::SpecialDag);
    let mut edges = model.edges_named();
    edges.sort();
    assert_eq!(
        edges,
        vec![("A", "B"), ("A", "C"), ("B", "E"), ("C", "D"), ("D", "E")]
    );
}

/// Example 7 / Figure 4: the general-DAG pipeline with the C/D/E
/// strongly connected component.
#[test]
fn example_7_general_dag() {
    let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert_eq!(algorithm, Algorithm::GeneralDag);
    for pair in [("C", "D"), ("D", "E"), ("E", "C")] {
        assert!(!model.has_edge(pair.0, pair.1), "SCC edge {pair:?} must go");
        assert!(!model.has_edge(pair.1, pair.0));
    }
    for sink_edge in [("C", "F"), ("D", "F"), ("E", "F")] {
        assert!(model.has_edge(sink_edge.0, sink_edge.1));
    }
}

/// The open-problem log (Figure 5): two conformal graphs exist; the
/// miner must return one of them (conformality checked, exact shape
/// unasserted).
#[test]
fn open_problem_log_is_mined_conformally() {
    let log = WorkflowLog::from_strings(["ACF", "ADCF", "ABCF", "ADECF"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let report = procmine::mine::conformance::check_conformance(&model, &log);
    assert!(report.is_conformal(), "{report:?}");
}

/// Example 8 / Figure 6: cyclic mining with instance labeling.
#[test]
fn example_8_cyclic() {
    let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]).unwrap();
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert_eq!(algorithm, Algorithm::Cyclic);
    assert!(
        model.has_edge("B", "C") && model.has_edge("C", "B"),
        "B⇄C cycle"
    );
    assert!(model.has_edge("A", "B") && model.has_edge("A", "D"));
    assert!(model.has_edge("C", "E") && model.has_edge("D", "E"));
}

/// Example 9: the noise scenario — k erroneous executions ADCBE among
/// m−k correct ABCDE. With T ≤ k the chain shatters; with k < T ≤ m−k
/// it survives.
#[test]
fn example_9_noise_threshold() {
    let m = 100;
    let k = 5;
    let mut strings = vec!["ABCDE"; m - k];
    strings.extend(std::iter::repeat("ADCBE").take(k));
    let log = WorkflowLog::from_strings(strings).unwrap();

    // T=1: B, C, D wrongly independent.
    let (naive, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert!(!naive.has_edge("B", "C") && !naive.has_edge("C", "D"));

    // T=k+1: the chain dependencies survive.
    let (robust, _) = mine_auto(&log, &MinerOptions::with_threshold(k as u32 + 1)).unwrap();
    assert!(robust.has_edge("B", "C"), "{:?}", robust.edges_named());
    assert!(robust.has_edge("C", "D"));
    assert!(robust.has_edge("D", "E"));
}
