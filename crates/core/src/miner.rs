//! Miner configuration and automatic algorithm selection.

use crate::cyclic::mine_cyclic_in;
use crate::general_dag::mine_general_dag_in;
use crate::session::MineSession;
use crate::special_dag::mine_special_dag_in;
use crate::telemetry::MetricsSink;
use crate::{MineError, MinedModel};
use procmine_log::WorkflowLog;

/// Options shared by all miners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerOptions {
    /// Minimum number of executions that must exhibit an ordered pair
    /// before it becomes an edge in step 2 — the §6 noise threshold `T`.
    /// The default of 1 keeps every observed ordering (the noise-free
    /// setting of §3–§5). Use [`crate::noise::optimal_threshold`] to
    /// derive a value from an error-rate estimate.
    pub noise_threshold: u32,
    /// Resource guards (size and wall-clock bounds). Defaults to
    /// unlimited; see [`crate::Limits`].
    pub limits: crate::Limits,
}

impl Default for MinerOptions {
    fn default() -> Self {
        MinerOptions {
            noise_threshold: 1,
            limits: crate::Limits::default(),
        }
    }
}

impl MinerOptions {
    /// Options with a specific noise threshold.
    pub fn with_threshold(noise_threshold: u32) -> Self {
        MinerOptions {
            noise_threshold,
            ..MinerOptions::default()
        }
    }

    /// Replaces the resource guards, builder-style.
    pub fn with_limits(mut self, limits: crate::Limits) -> Self {
        self.limits = limits;
        self
    }
}

/// Which of the paper's algorithms a mining run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1 — acyclic, every activity in every execution.
    SpecialDag,
    /// Algorithm 2 — acyclic, activities may be skipped.
    GeneralDag,
    /// Algorithm 3 — general graphs with cycles.
    Cyclic,
}

/// Inspects the log and runs the most specific applicable algorithm:
///
/// * any repeated activity within an execution → [`mine_cyclic`]
///   (Algorithm 3);
/// * every activity present in every execution → [`mine_special_dag`]
///   (Algorithm 1), which guarantees the unique minimal conformal graph;
/// * otherwise → [`mine_general_dag`] (Algorithm 2).
///
/// Returns the model together with the algorithm chosen.
///
/// [`mine_cyclic`]: crate::mine_cyclic
/// [`mine_special_dag`]: crate::mine_special_dag
/// [`mine_general_dag`]: crate::mine_general_dag
pub fn mine_auto(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, Algorithm), MineError> {
    mine_auto_in(&mut MineSession::new(), log, options)
}

/// [`mine_auto`] inside a [`MineSession`]: the chosen algorithm's stage
/// timings and counters are recorded into the session's sink, its spans
/// into the session's tracer, and its heavy stages honor the session's
/// thread count.
pub fn mine_auto_in<S: MetricsSink>(
    session: &mut MineSession<S>,
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, Algorithm), MineError> {
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    if log.has_repeats() {
        Ok((mine_cyclic_in(session, log, options)?, Algorithm::Cyclic))
    } else if log.every_activity_in_every_execution() {
        Ok((
            mine_special_dag_in(session, log, options)?,
            Algorithm::SpecialDag,
        ))
    } else {
        Ok((
            mine_general_dag_in(session, log, options)?,
            Algorithm::GeneralDag,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_to_special() {
        let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
        let (_, alg) = mine_auto(&log, &MinerOptions::default()).unwrap();
        assert_eq!(alg, Algorithm::SpecialDag);
    }

    #[test]
    fn dispatches_to_general() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let (_, alg) = mine_auto(&log, &MinerOptions::default()).unwrap();
        assert_eq!(alg, Algorithm::GeneralDag);
    }

    #[test]
    fn dispatches_to_cyclic() {
        let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE"]).unwrap();
        let (_, alg) = mine_auto(&log, &MinerOptions::default()).unwrap();
        assert_eq!(alg, Algorithm::Cyclic);
    }

    #[test]
    fn threaded_session_dispatches_identically() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let (serial, alg) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let mut session = MineSession::new().with_threads(4);
        let (threaded, alg2) = mine_auto_in(&mut session, &log, &MinerOptions::default()).unwrap();
        assert_eq!(alg, alg2);
        assert_eq!(serial.edges_named(), threaded.edges_named());
    }

    #[test]
    fn empty_log_is_an_error() {
        let log = WorkflowLog::new();
        assert_eq!(
            mine_auto(&log, &MinerOptions::default()).unwrap_err(),
            MineError::EmptyLog
        );
    }
}
