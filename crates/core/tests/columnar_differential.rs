//! Differential suite pinning the columnar mining path to the legacy
//! nested-`Vec` path kept in [`procmine_core::reference`].
//!
//! The columnar refactor (struct-of-arrays `EventColumns`, arena-backed
//! marking scratch, contiguous-word adjacency rows) must be a pure
//! layout change: for every log, each miner's mined model — edges,
//! supports — and its algorithmic `--stats-json` counters must be
//! bit-identical to what the pre-refactor implementation produced. The
//! reference module is a self-contained re-implementation of that
//! implementation (per-execution `Vec`s, per-execution `BitSet`
//! allocations, non-budgeted serial kernels), so agreement here is
//! evidence the refactor changed representation, not behavior.
//!
//! Covered miners: special (Algorithm 1), general (Algorithm 2), cyclic
//! (Algorithm 3), auto dispatch, the parallel strategy, and the
//! incremental miner — plus conformance replay of both models.

use procmine_core::conformance::check_conformance;
use procmine_core::reference::{
    mine_auto_reference, mine_cyclic_reference, mine_general_reference, mine_special_reference,
};
use procmine_core::{
    mine_auto_in, mine_cyclic_in, mine_general_dag_in, mine_special_dag_in, IncrementalMiner,
    MineSession, MinedModel, MinerMetrics, MinerOptions,
};
use procmine_log::{ActivityInstance, Execution, WorkflowLog};
use proptest::prelude::*;
use proptest::{collection, sample};

/// Activity-name pool shared by all generators.
const NAMES: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];

/// Builds a log from index sequences (instantaneous executions).
fn log_from_indices(seqs: &[Vec<usize>]) -> WorkflowLog {
    WorkflowLog::from_sequences(
        seqs.iter()
            .map(|seq| seq.iter().map(|&i| NAMES[i]).collect::<Vec<_>>()),
    )
    .expect("generated sequences are non-empty")
}

/// A repeat-free execution: random activity draws deduplicated to their
/// first occurrence, so arbitrary orders (and order conflicts across
/// executions) appear without ever repeating an activity.
fn repeat_free_exec(n: usize) -> impl Strategy<Value = Vec<usize>> {
    collection::vec(0usize..n, 1..=n * 2).prop_map(|draws| {
        let mut seen = [false; NAMES.len()];
        let mut seq = Vec::new();
        for d in draws {
            if !seen[d] {
                seen[d] = true;
                seq.push(d);
            }
        }
        seq
    })
}

/// A repeat-free log over `n` activities where every activity occurs in
/// at least one execution (so the table is exactly `0..n`).
fn general_log(n: usize) -> impl Strategy<Value = WorkflowLog> {
    collection::vec(repeat_free_exec(n), 1..10).prop_map(move |mut seqs| {
        // Guarantee full coverage of the activity universe so models
        // over the same table are compared like for like.
        seqs.push((0..n).collect());
        log_from_indices(&seqs)
    })
}

/// A log satisfying Algorithm 1's precondition: every execution is a
/// permutation of all `n` activities.
fn special_log(n: usize) -> impl Strategy<Value = WorkflowLog> {
    collection::vec(
        sample::subsequence((0..n).collect::<Vec<_>>(), n..=n).prop_shuffle(),
        1..10,
    )
    .prop_map(|seqs| log_from_indices(&seqs))
}

/// A log whose executions may repeat activities (Algorithm 3 input).
fn cyclic_log(n: usize) -> impl Strategy<Value = WorkflowLog> {
    collection::vec(collection::vec(0usize..n, 1..=12), 1..10).prop_map(move |mut seqs| {
        seqs.push((0..n).collect());
        log_from_indices(&seqs)
    })
}

/// An interval log: events carry real (start, duration) intervals, so
/// the overlap-counting path (§2 independence evidence) is exercised,
/// not just the strictly-ordered instantaneous form.
fn interval_log(n: usize) -> impl Strategy<Value = WorkflowLog> {
    collection::vec(collection::vec((0u64..40, 0u64..6), 1..=8), 1..8).prop_map(move |execs| {
        let mut log = WorkflowLog::new();
        let ids: Vec<_> = (0..n).map(|i| log.intern_activity(NAMES[i])).collect();
        for (x, events) in execs.iter().enumerate() {
            // One instance per distinct activity, at most n per
            // execution: take the first occurrence of each index.
            let mut seen = vec![false; n];
            let mut instances = Vec::new();
            for (j, &(start, dur)) in events.iter().enumerate() {
                let a = j % n;
                if !seen[a] {
                    seen[a] = true;
                    instances.push(ActivityInstance {
                        activity: ids[a],
                        start,
                        end: start + dur,
                        output: None,
                    });
                }
            }
            log.push(Execution::new(format!("case-{x}"), instances).unwrap());
        }
        log
    })
}

/// Runs a `*_in` miner with a metrics sink and returns model + metrics.
fn with_metrics<F>(f: F) -> (MinedModel, MinerMetrics)
where
    F: FnOnce(&mut MineSession<&mut MinerMetrics>) -> MinedModel,
{
    let mut metrics = MinerMetrics::new();
    let mut session = MineSession::new().with_sink(&mut metrics);
    let model = f(&mut session);
    drop(session);
    (model, metrics)
}

/// The model-level equality the suite pins: same edges in the same
/// order and identical per-edge supports.
fn assert_models_identical(columnar: &MinedModel, legacy: &MinedModel, what: &str) {
    assert_eq!(
        columnar.edges_named(),
        legacy.edges_named(),
        "{what}: edge sets diverged"
    );
    assert_eq!(
        columnar.edge_support(),
        legacy.edge_support(),
        "{what}: edge supports diverged"
    );
}

/// Counter equality: the eight algorithmic counters must match the
/// legacy path exactly (the arena section is new telemetry about the
/// columnar path itself and is deliberately outside `counters()`).
fn assert_counters_identical(columnar: &MinerMetrics, legacy: &MinerMetrics, what: &str) {
    assert_eq!(
        columnar.counters(),
        legacy.counters(),
        "{what}: --stats-json counters diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_miner_matches_reference(log in general_log(6), threshold in 1u32..3) {
        let options = MinerOptions::with_threshold(threshold);
        let (model, metrics) =
            with_metrics(|s| mine_general_dag_in(s, &log, &options).unwrap());
        let (expected, ref_metrics) = mine_general_reference(&log, &options).unwrap();
        assert_models_identical(&model, &expected, "general");
        assert_counters_identical(&metrics, &ref_metrics, "general");
    }

    #[test]
    fn special_miner_matches_reference(log in special_log(5), threshold in 1u32..3) {
        let options = MinerOptions::with_threshold(threshold);
        let mut metrics = MinerMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let result = mine_special_dag_in(&mut session, &log, &options);
        drop(session);
        match (result, mine_special_reference(&log, &options)) {
            (Ok(model), Ok((expected, ref_metrics))) => {
                assert_models_identical(&model, &expected, "special");
                assert_counters_identical(&metrics, &ref_metrics, "special");
            }
            // Thresholding can leave a long ordering cycle, which
            // Algorithm 1 rejects — both paths must reject identically.
            (Err(e), Err(ref_e)) => assert_eq!(e, ref_e, "special: error paths diverged"),
            (a, b) => panic!("special: one path failed, the other succeeded: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn cyclic_miner_matches_reference(log in cyclic_log(4), threshold in 1u32..3) {
        let options = MinerOptions::with_threshold(threshold);
        let (model, metrics) =
            with_metrics(|s| mine_cyclic_in(s, &log, &options).unwrap());
        let (expected, ref_metrics) = mine_cyclic_reference(&log, &options).unwrap();
        assert_models_identical(&model, &expected, "cyclic");
        assert_counters_identical(&metrics, &ref_metrics, "cyclic");
    }

    #[test]
    fn auto_dispatch_matches_reference(log in cyclic_log(4)) {
        let options = MinerOptions::default();
        let mut metrics = MinerMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let (model, algorithm) = mine_auto_in(&mut session, &log, &options).unwrap();
        drop(session);
        let (expected, ref_algorithm, ref_metrics) =
            mine_auto_reference(&log, &options).unwrap();
        assert_eq!(algorithm, ref_algorithm, "auto: dispatch diverged");
        assert_models_identical(&model, &expected, "auto");
        assert_counters_identical(&metrics, &ref_metrics, "auto");
    }

    #[test]
    fn parallel_strategy_matches_reference(log in general_log(6), threads in 2usize..5) {
        let options = MinerOptions::default();
        let mut metrics = MinerMetrics::new();
        let mut session = MineSession::new()
            .with_threads(threads)
            .with_sink(&mut metrics);
        let model = mine_general_dag_in(&mut session, &log, &options).unwrap();
        drop(session);
        let (expected, ref_metrics) = mine_general_reference(&log, &options).unwrap();
        assert_models_identical(&model, &expected, "parallel");
        assert_counters_identical(&metrics, &ref_metrics, "parallel");
    }

    #[test]
    fn incremental_miner_matches_reference(log in general_log(5)) {
        let options = MinerOptions::default();
        let mut inc = IncrementalMiner::new(options.clone());
        inc.absorb_log(&log).unwrap();
        let model = inc.model().unwrap();
        let (expected, _) = mine_general_reference(&log, &options).unwrap();
        assert_models_identical(&model, &expected, "incremental");

        // A checkpoint round trip through the (unchanged) nested wire
        // format must preserve the columns exactly.
        let resumed =
            IncrementalMiner::from_state(options, inc.export_state()).unwrap();
        let remodel = resumed.model().unwrap();
        assert_models_identical(&remodel, &expected, "incremental resume");
    }

    #[test]
    fn interval_overlap_logs_match_reference(log in interval_log(5)) {
        let options = MinerOptions::default();
        let (model, metrics) =
            with_metrics(|s| mine_general_dag_in(s, &log, &options).unwrap());
        let (expected, ref_metrics) = mine_general_reference(&log, &options).unwrap();
        assert_models_identical(&model, &expected, "interval");
        assert_counters_identical(&metrics, &ref_metrics, "interval");
    }

    #[test]
    fn conformance_replay_agrees_on_both_models(log in general_log(5)) {
        let options = MinerOptions::default();
        let (model, _) =
            with_metrics(|s| mine_general_dag_in(s, &log, &options).unwrap());
        let (expected, _) = mine_general_reference(&log, &options).unwrap();
        // Identical models must replay identically: the full report —
        // per-violation tallies included — is compared structurally.
        assert_eq!(
            check_conformance(&model, &log),
            check_conformance(&expected, &log),
            "conformance replay diverged between columnar and legacy models"
        );
    }
}
