//! Ablation A1: the paper's Appendix-A transitive reduction (reverse
//! topological order with descendant bitsets, O(|V||E|) with a 1/64
//! constant) against the naive per-edge-DFS reference. Also benches the
//! bitset matrix variant used in the miners' inner loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use procmine_graph::reduction::{
    transitive_reduction_dag, transitive_reduction_matrix, transitive_reduction_naive,
};
use procmine_graph::{AdjMatrix, DiGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random DAG over `n` nodes with forward-edge probability `p`.
fn random_dag(n: usize, p: f64, seed: u64) -> DiGraph<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                edges.push((i, j));
            }
        }
    }
    DiGraph::from_edges(vec![(); n], edges)
}

fn bench_tr(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_reduction");
    for &n in &[50usize, 100, 200] {
        let g = random_dag(n, 0.3, 77);
        let m = AdjMatrix::from_digraph(&g);
        group.bench_with_input(BenchmarkId::new("appendix_a", n), &g, |b, g| {
            b.iter(|| transitive_reduction_dag(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("matrix", n), &m, |b, m| {
            b.iter(|| transitive_reduction_matrix(m).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive_dfs", n), &g, |b, g| {
            b.iter(|| transitive_reduction_naive(g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tr);
criterion_main!(benches);
