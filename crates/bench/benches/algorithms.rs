//! Head-to-head of the three miners on workloads each can handle:
//! Algorithm 1's O(n²m) advantage on complete logs over Algorithm 2's
//! O(n³m), and Algorithm 3's instance-labeling overhead on cyclic logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use procmine_core::{mine_cyclic, mine_general_dag, mine_special_dag, MinerOptions};
use procmine_log::WorkflowLog;
use procmine_sim::{walk, ProcessModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A complete log (every activity in every execution): random
/// interleavings of a wide parallel fan.
fn complete_log(n: usize, m: usize, seed: u64) -> WorkflowLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..n).map(|i| format!("T{i}")).collect();
    let mut log = WorkflowLog::new();
    for _ in 0..m {
        // START, shuffled middle, END.
        let mut middle: Vec<&str> = names[1..n - 1].iter().map(String::as_str).collect();
        middle.shuffle(&mut rng);
        let mut seq = vec![names[0].as_str()];
        seq.extend(middle);
        seq.push(names[n - 1].as_str());
        log.push_sequence(&seq).unwrap();
    }
    log
}

/// A cyclic log over a small rework loop with k iterations.
fn cyclic_log(m: usize, seed: u64) -> WorkflowLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = WorkflowLog::new();
    for _ in 0..m {
        let mut seq = vec!["A"];
        let loops = rng.gen_range(1..=4);
        for _ in 0..loops {
            seq.push("B");
            seq.push("C");
        }
        seq.push("D");
        log.push_sequence(&seq).unwrap();
    }
    log
}

fn partial_log(n: usize, m: usize, seed: u64) -> WorkflowLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = procmine_sim::randdag::random_dag(
        &procmine_sim::randdag::RandomDagConfig {
            vertices: n,
            edge_prob: 0.4,
        },
        &mut rng,
    )
    .unwrap();
    let _: &ProcessModel = &model;
    walk::random_walk_log(&model, m, &mut rng).unwrap()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    for &m in &[200usize, 1000] {
        let complete = complete_log(20, m, 1);
        group.bench_with_input(
            BenchmarkId::new("special_on_complete", m),
            &complete,
            |b, log| b.iter(|| mine_special_dag(log, &MinerOptions::default()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("general_on_complete", m),
            &complete,
            |b, log| b.iter(|| mine_general_dag(log, &MinerOptions::default()).unwrap()),
        );

        let partial = partial_log(20, m, 2);
        group.bench_with_input(
            BenchmarkId::new("general_on_partial", m),
            &partial,
            |b, log| b.iter(|| mine_general_dag(log, &MinerOptions::default()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cyclic_on_partial", m),
            &partial,
            |b, log| b.iter(|| mine_cyclic(log, &MinerOptions::default()).unwrap()),
        );

        let cyclic = cyclic_log(m, 3);
        group.bench_with_input(BenchmarkId::new("cyclic_on_loops", m), &cyclic, |b, log| {
            b.iter(|| mine_cyclic(log, &MinerOptions::default()).unwrap())
        });
    }
    group.finish();
}

/// Theorem 6's k-dependence: mining time of Algorithm 3 as the maximum
/// repetition count grows (instance-vertex space is k·n).
fn bench_cyclic_k_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclic_k_scaling");
    for &k in &[1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(9);
        let mut log = WorkflowLog::new();
        for _ in 0..200 {
            let mut seq = vec!["A"];
            let loops = rng.gen_range(1..=k);
            for _ in 0..loops {
                seq.push("B");
                seq.push("C");
            }
            seq.push("D");
            log.push_sequence(&seq).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(k), &log, |b, log| {
            b.iter(|| mine_cyclic(log, &MinerOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_cyclic_k_scaling);
criterion_main!(benches);
