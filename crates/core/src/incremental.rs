//! Incremental mining — the paper's *process evolution* application.
//!
//! The introduction motivates using mined models "to allow the evolution
//! of the current process model into future versions of the model by
//! incorporating feedback from successful process executions". That
//! calls for a miner that absorbs executions as they complete and can
//! produce an up-to-date model at any point without rescanning history.
//!
//! [`IncrementalMiner`] maintains the step-2 ordering counts (the
//! dominant O(n²) work per execution) across batches; requesting a
//! [`model`](IncrementalMiner::model) runs only the cheap finishing
//! steps (threshold → two-cycles → SCC → per-execution reduction) over
//! the retained executions. The activity universe may grow between
//! batches — count matrices are re-indexed on the fly.
//!
//! Like Algorithm 2, the incremental miner handles acyclic processes;
//! an execution with repeated activities is rejected (route such logs
//! to [`crate::mine_cyclic`]).

use crate::general_dag::{
    count_one_execution, finish_from_counts, pair_observations, OrderObservations, VertexLog,
};
use crate::limits::LimitKind;
use crate::model::graph_skeleton;
use crate::session::{run_stage, MineSession};
use crate::telemetry::{MetricsSink, Stage};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::NodeId;
use procmine_log::{ActivityTable, EventColumns, Execution, WorkflowLog};

/// A miner that absorbs executions over time (Algorithm 2, incremental
/// step-2 counts).
#[derive(Debug, Clone)]
pub struct IncrementalMiner {
    pub(crate) options: MinerOptions,
    pub(crate) table: ActivityTable,
    /// Row-major `n × n` ordered-pair and overlap counts over the
    /// *current* table.
    pub(crate) obs: OrderObservations,
    /// Lowered executions (dense vertex, start, end) in columnar form,
    /// kept for the marking pass (steps 5–6 need the executions
    /// themselves).
    pub(crate) execs: EventColumns,
    /// Total activity instances absorbed — checked against
    /// [`crate::Limits::max_events`] before each absorb.
    pub(crate) events: u64,
}

impl IncrementalMiner {
    /// Creates an empty miner.
    pub fn new(options: MinerOptions) -> Self {
        IncrementalMiner {
            options,
            table: ActivityTable::new(),
            obs: OrderObservations::new(0),
            execs: EventColumns::new(),
            events: 0,
        }
    }

    /// Size-limit checks run *before* an absorb mutates any state, so a
    /// rejected execution leaves the miner (including its activity
    /// table) untouched. `new_names` is how many previously-unseen
    /// activities the execution would intern.
    fn check_absorb(&self, id: &str, len: usize, new_names: usize) -> Result<(), MineError> {
        let limits = &self.options.limits;
        if let Some(max) = limits.max_execution_len {
            if len > max {
                return Err(MineError::LimitExceeded {
                    kind: LimitKind::ExecutionLength,
                    details: format!("execution `{id}` has {len} activity instances (limit {max})"),
                });
            }
        }
        if let Some(max) = limits.max_activities {
            let grown = self.table.len() + new_names;
            if grown > max {
                return Err(MineError::LimitExceeded {
                    kind: LimitKind::Activities,
                    details: format!(
                        "execution `{id}` would grow the activity universe to {grown} (limit {max})"
                    ),
                });
            }
        }
        if let Some(max) = limits.max_events {
            let total = self.events + len as u64;
            if total > max {
                return Err(MineError::LimitExceeded {
                    kind: LimitKind::Events,
                    details: format!(
                        "absorbing execution `{id}` would exceed {max} total activity instances"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of executions absorbed.
    pub fn executions(&self) -> usize {
        self.execs.exec_count()
    }

    /// The activity table accumulated so far.
    pub fn activities(&self) -> &ActivityTable {
        &self.table
    }

    /// Absorbs one execution given as an ordered list of activity
    /// names (instantaneous form). New names grow the activity universe.
    pub fn absorb_sequence<S: AsRef<str>>(&mut self, names: &[S]) -> Result<(), MineError> {
        if names.is_empty() {
            return Err(MineError::EmptyExecution {
                execution: format!("incremental-{}", self.execs.exec_count()),
            });
        }
        let mut seen = std::collections::HashSet::new();
        if names.iter().any(|n| !seen.insert(n.as_ref())) {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: format!("incremental-{}", self.execs.exec_count()),
            });
        }
        let new_names = seen.iter().filter(|n| self.table.id(n).is_none()).count();
        self.check_absorb(
            &format!("incremental-{}", self.execs.exec_count()),
            names.len(),
            new_names,
        )?;
        let old_n = self.table.len();
        let table = &mut self.table;
        self.execs.push_exec(
            names
                .iter()
                .enumerate()
                .map(|(i, s)| (table.intern(s.as_ref()).index() as u32, i as u64, i as u64)),
        );
        self.grow_to(self.table.len(), old_n);
        let last = self.execs.exec_count() - 1;
        count_one_execution(self.table.len(), self.execs.exec(last), &mut self.obs);
        self.events += names.len() as u64;
        Ok(())
    }

    /// Absorbs an execution from a log that shares this miner's
    /// activity-name universe (ids are re-interned by name, so the
    /// source log may use a different table).
    pub fn absorb_execution(
        &mut self,
        exec: &Execution,
        source_table: &ActivityTable,
    ) -> Result<(), MineError> {
        if exec.instances().is_empty() {
            return Err(MineError::EmptyExecution {
                execution: exec.id.clone(),
            });
        }
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
        let new_names = exec
            .instances()
            .iter()
            .filter(|i| self.table.id(source_table.name(i.activity)).is_none())
            .count();
        self.check_absorb(&exec.id, exec.len(), new_names)?;
        let old_n = self.table.len();
        let table = &mut self.table;
        self.execs.push_exec(exec.instances().iter().map(|i| {
            (
                table.intern(source_table.name(i.activity)).index() as u32,
                i.start,
                i.end,
            )
        }));
        self.grow_to(self.table.len(), old_n);
        let last = self.execs.exec_count() - 1;
        count_one_execution(self.table.len(), self.execs.exec(last), &mut self.obs);
        self.events += exec.len() as u64;
        Ok(())
    }

    /// Absorbs every execution of a log.
    pub fn absorb_log(&mut self, log: &WorkflowLog) -> Result<(), MineError> {
        for exec in log.executions() {
            self.absorb_execution(exec, log.activities())?;
        }
        Ok(())
    }

    /// Re-indexes the count matrices when the activity universe grows
    /// from `old_n` to `new_n`.
    fn grow_to(&mut self, new_n: usize, old_n: usize) {
        if new_n == old_n {
            return;
        }
        let grow = |old: &[u32]| {
            let mut grown = vec![0u32; new_n * new_n];
            for u in 0..old_n {
                grown[u * new_n..u * new_n + old_n]
                    .copy_from_slice(&old[u * old_n..u * old_n + old_n]);
            }
            grown
        };
        self.obs.ordered = grow(&self.obs.ordered);
        self.obs.overlap = grow(&self.obs.overlap);
    }

    /// Produces the current model (steps 3–7 over the retained
    /// executions). Errors if nothing has been absorbed.
    ///
    /// Snapshots borrow the retained executions — producing a model
    /// copies nothing but the count matrices.
    pub fn model(&self) -> Result<MinedModel, MineError> {
        self.model_in(&mut MineSession::new())
    }

    /// [`model`](IncrementalMiner::model) inside a [`MineSession`]: the
    /// finishing steps are timed and counted into the session's sink,
    /// recorded as spans into its tracer, and fanned out over its
    /// threads. The step-2 counting work happened at absorb time, so
    /// [`Stage::CountPairs`] stays zero here; the scanned-execution and
    /// pair totals are still reported so the counters describe the
    /// whole mining effort behind the snapshot.
    ///
    /// The deadline (the sooner of the session's and
    /// `options.limits.deadline`, the latter measured from this call)
    /// starts *before* any work and is re-checked exactly once per
    /// retained execution during the marking pass, so an expired
    /// deadline aborts the snapshot promptly even on large histories.
    pub fn model_in<S: MetricsSink>(
        &self,
        session: &mut MineSession<S>,
    ) -> Result<MinedModel, MineError> {
        let deadline = session.run_deadline(&self.options.limits);
        let threads = session.threads;
        let MineSession {
            sink,
            tracer,
            obs: reg,
            ..
        } = session;
        let tracer: &Tracer = tracer;
        let reg: &crate::obs::Registry = reg;
        let _root = tracer.span_cat("mine.incremental", "miner");
        if self.execs.is_empty() {
            return Err(MineError::EmptyLog);
        }
        deadline.check()?;
        let n = self.table.len();
        let vlog = VertexLog {
            n,
            cols: &self.execs,
        };
        if S::ENABLED {
            let scanned = self.execs.exec_count() as u64;
            let pairs = pair_observations(&self.execs);
            sink.record(|m| {
                m.executions_scanned += scanned;
                m.pairs_counted += pairs;
            });
        }
        let result = finish_from_counts(
            &vlog,
            self.obs.clone(),
            self.options.noise_threshold,
            deadline,
            threads,
            sink,
            tracer,
            reg,
        )?;
        run_stage(Stage::Assemble, deadline, sink, tracer, reg, |_, _| {
            let mut graph = graph_skeleton(&self.table);
            let mut support = Vec::with_capacity(result.graph.edge_count());
            for (u, v) in result.graph.edges() {
                graph.add_edge(NodeId::new(u), NodeId::new(v));
                support.push((u, v, result.counts[u * n + v]));
            }
            Ok(MinedModel::new(graph, support))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_general_dag;
    use crate::Limits;
    use std::time::Duration;

    #[test]
    fn matches_batch_miner() {
        let strings = ["ABCF", "ACDF", "ADEF", "AECF"];
        let log = WorkflowLog::from_strings(strings).unwrap();

        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_log(&log).unwrap();
        let incremental = inc.model().unwrap();
        let batch = mine_general_dag(&log, &MinerOptions::default()).unwrap();

        let mut a = incremental.edges_named();
        let mut b = batch.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn model_evolves_with_new_executions() {
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_sequence(&["A", "B", "C"]).unwrap();
        inc.absorb_sequence(&["A", "B", "C"]).unwrap();
        let before = inc.model().unwrap();
        assert!(before.has_edge("B", "C"));

        // New observations reverse B and C: they become independent.
        inc.absorb_sequence(&["A", "C", "B"]).unwrap();
        let after = inc.model().unwrap();
        assert!(!after.has_edge("B", "C") && !after.has_edge("C", "B"));
        assert!(after.has_edge("A", "B") && after.has_edge("A", "C"));
    }

    #[test]
    fn activity_universe_grows() {
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_sequence(&["A", "B"]).unwrap();
        assert_eq!(inc.activities().len(), 2);
        // A branch through new activities arrives later.
        inc.absorb_sequence(&["A", "C", "D", "B"]).unwrap();
        assert_eq!(inc.activities().len(), 4);
        let model = inc.model().unwrap();
        assert!(
            model.has_edge("A", "B"),
            "direct path still needed by exec 1"
        );
        assert!(model.has_edge("C", "D"));
        assert_eq!(model.activity_count(), 4);
    }

    #[test]
    fn count_matrix_survives_growth() {
        // Counts recorded before growth must keep their values after
        // re-indexing.
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        for _ in 0..5 {
            inc.absorb_sequence(&["A", "B"]).unwrap();
        }
        inc.absorb_sequence(&["A", "X", "B"]).unwrap();
        let model = inc.model().unwrap();
        let support = model.edge_support();
        let ab = support
            .iter()
            .find(|&&(u, v, _)| {
                model.name_of(procmine_graph::NodeId::new(u)) == "A"
                    && model.name_of(procmine_graph::NodeId::new(v)) == "B"
            })
            .expect("A->B mined");
        assert_eq!(ab.2, 6, "all six observations counted");
    }

    #[test]
    fn rejects_repeats_and_empty() {
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        assert!(matches!(
            inc.absorb_sequence(&["A", "B", "A"]),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
        assert!(matches!(
            inc.absorb_sequence::<&str>(&[]),
            Err(MineError::EmptyExecution { .. })
        ));
        assert!(matches!(inc.model(), Err(MineError::EmptyLog)));
    }

    #[test]
    fn expired_deadline_aborts_snapshot_promptly() {
        // The snapshot deadline must start before any work and be
        // honored between retained executions, so even a large history
        // aborts on the first check rather than after a full pass.
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        for i in 0..200 {
            let names: Vec<String> = (0..20).map(|a| format!("A{a}-{}", i % 3)).collect();
            inc.absorb_sequence(&names).unwrap();
        }
        let mut session = MineSession::new().with_limits(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        let err = inc.model_in(&mut session).unwrap_err();
        assert!(matches!(
            err,
            MineError::LimitExceeded {
                kind: LimitKind::Deadline,
                ..
            }
        ));

        // An expired per-options deadline is honored the same way.
        let mut tight = IncrementalMiner::new(MinerOptions::default().with_limits(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        }));
        tight.absorb_sequence(&["A", "B", "C"]).unwrap();
        assert!(matches!(
            tight.model(),
            Err(MineError::LimitExceeded {
                kind: LimitKind::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn threaded_snapshot_matches_serial() {
        let strings = ["ABCF", "ACDF", "ADEF", "AECF"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_log(&log).unwrap();
        let serial = inc.model().unwrap();
        let mut session = MineSession::new().with_threads(4);
        let threaded = inc.model_in(&mut session).unwrap();
        let mut a = serial.edges_named();
        let mut b = threaded.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn absorb_from_differently_ordered_table() {
        // A log whose table interned names in another order still lands
        // on the right activities.
        let log = WorkflowLog::from_strings(["CBA"]).unwrap();
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_sequence(&["A", "B", "C"]).unwrap();
        inc.absorb_log(&log).unwrap();
        let model = inc.model().unwrap();
        // Both orders observed → all pairs independent.
        assert_eq!(model.edge_count(), 0);
    }
}
