//! The [`WorkflowLog`]: a set of executions over a shared activity table.

use crate::validate::assemble_executions;
use crate::{ActivityId, ActivityTable, EventRecord, Execution, LogError};
use serde::{Deserialize, Serialize};

/// A log of `m` executions of the same process, sharing one
/// [`ActivityTable`]. This is the input to all mining algorithms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkflowLog {
    activities: ActivityTable,
    executions: Vec<Execution>,
}

impl WorkflowLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a log with a pre-populated activity table (useful when the
    /// activity universe is known up front, as in the Flowmark schema
    /// described in the paper's introduction).
    pub fn with_activities(activities: ActivityTable) -> Self {
        WorkflowLog {
            activities,
            executions: Vec::new(),
        }
    }

    /// The activity table.
    pub fn activities(&self) -> &ActivityTable {
        &self.activities
    }

    /// Interns an activity name into this log's table, returning its
    /// id. Use when building executions by hand or merging logs.
    pub fn intern_activity(&mut self, name: &str) -> ActivityId {
        self.activities.intern(name)
    }

    /// The executions, in insertion order.
    pub fn executions(&self) -> &[Execution] {
        &self.executions
    }

    /// Number of executions (`m` in the paper).
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// `true` if the log has no executions.
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// Appends an already-built execution. The caller must have interned
    /// its activity ids in this log's table.
    pub fn push(&mut self, execution: Execution) {
        self.executions.push(execution);
    }

    /// Appends an execution given as a sequence of activity names
    /// (instantaneous form). The execution is named `exec-<k>`.
    pub fn push_sequence<S: AsRef<str>>(&mut self, names: &[S]) -> Result<(), LogError> {
        let ids: Vec<ActivityId> = names
            .iter()
            .map(|n| self.activities.intern(n.as_ref()))
            .collect();
        let id = format!("exec-{}", self.executions.len());
        self.executions.push(Execution::from_ids(id, &ids)?);
        Ok(())
    }

    /// Builds a log from a collection of name sequences. Each activity
    /// name becomes one instantaneous instance; `["A","B","C"]` is the
    /// paper's execution string `ABC`.
    ///
    /// ```
    /// use procmine_log::WorkflowLog;
    /// let log = WorkflowLog::from_sequences([["A","B","E"], ["A","C","E"]]).unwrap();
    /// assert_eq!(log.len(), 2);
    /// ```
    pub fn from_sequences<I, E, S>(seqs: I) -> Result<Self, LogError>
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut log = WorkflowLog::new();
        for seq in seqs {
            let names: Vec<String> = seq.into_iter().map(|s| s.as_ref().to_string()).collect();
            log.push_sequence(&names)?;
        }
        Ok(log)
    }

    /// Builds a log from compact execution strings where every activity
    /// is a single character: `"ABCE"` ≡ `["A","B","C","E"]`. This is the
    /// notation used throughout the paper's examples.
    pub fn from_strings<I, S>(strings: I) -> Result<Self, LogError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut log = WorkflowLog::new();
        for s in strings {
            let names: Vec<String> = s.as_ref().chars().map(|c| c.to_string()).collect();
            log.push_sequence(&names)?;
        }
        Ok(log)
    }

    /// Builds a log from raw event records, grouping by process name and
    /// pairing START/END events (see [`crate::validate`] for the rules).
    /// Executions appear in order of their first event.
    pub fn from_events(records: &[EventRecord]) -> Result<Self, LogError> {
        let mut log = WorkflowLog::new();
        let executions = assemble_executions(records, &mut log.activities)?;
        log.executions = executions;
        Ok(log)
    }

    /// The maximum number of times any activity repeats within one
    /// execution (`k` in Theorem 6); 1 for repeat-free logs, 0 for an
    /// empty log.
    pub fn max_repeats(&self) -> usize {
        let n = self.activities.len();
        let mut max = 0usize;
        let mut counts = vec![0usize; n];
        for e in &self.executions {
            counts[..n].fill(0);
            for a in e.sequence() {
                counts[a.index()] += 1;
                max = max.max(counts[a.index()]);
            }
        }
        max
    }

    /// `true` if every activity of the table appears in every execution —
    /// the precondition of Algorithm 1 (Special DAG).
    pub fn every_activity_in_every_execution(&self) -> bool {
        let n = self.activities.len();
        self.executions.iter().all(|e| {
            let mut seen = vec![false; n];
            for a in e.sequence() {
                seen[a.index()] = true;
            }
            seen.iter().all(|&s| s)
        })
    }

    /// `true` if any execution repeats an activity (indicating cycles —
    /// Algorithm 3 territory).
    pub fn has_repeats(&self) -> bool {
        self.executions.iter().any(Execution::has_repeats)
    }

    /// Renders each execution as a name string, for debugging and tests.
    pub fn display_sequences(&self) -> Vec<String> {
        self.executions
            .iter()
            .map(|e| e.display(&self.activities))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_strings_matches_paper_notation() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ADBE"]).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.activities().len(), 5);
        assert_eq!(
            log.display_sequences(),
            vec!["A B C E", "A C D E", "A D B E"]
        );
        assert!(!log.has_repeats());
        assert_eq!(log.max_repeats(), 1);
        assert!(!log.every_activity_in_every_execution());
    }

    #[test]
    fn special_dag_precondition_detection() {
        let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
        assert!(log.every_activity_in_every_execution());
    }

    #[test]
    fn repeats_detected() {
        let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE"]).unwrap();
        assert!(log.has_repeats());
        assert_eq!(log.max_repeats(), 2);
    }

    #[test]
    fn from_events_groups_by_process() {
        let records = vec![
            EventRecord::start("p1", "A", 0),
            EventRecord::end("p1", "A", 1, Some(vec![3])),
            EventRecord::start("p2", "A", 0),
            EventRecord::start("p1", "B", 2),
            EventRecord::end("p2", "A", 5, None),
            EventRecord::end("p1", "B", 3, None),
        ];
        let log = WorkflowLog::from_events(&records).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.executions()[0].id, "p1");
        assert_eq!(log.executions()[0].len(), 2);
        assert_eq!(log.executions()[1].id, "p2");
        let a = log.activities().id("A").unwrap();
        assert_eq!(log.executions()[0].output_of(a), Some(&[3i64][..]));
    }

    #[test]
    fn empty_log_properties() {
        let log = WorkflowLog::new();
        assert!(log.is_empty());
        assert_eq!(log.max_repeats(), 0);
        assert!(log.every_activity_in_every_execution());
        assert!(!log.has_repeats());
    }

    #[test]
    fn serde_round_trip() {
        let log = WorkflowLog::from_strings(["ABE", "ACE"]).unwrap();
        let json = serde_json::to_string(&log).unwrap();
        let back: WorkflowLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.display_sequences(), log.display_sequences());
    }
}
