//! Noise thresholding (§6 of the paper).
//!
//! Logging errors insert spurious orderings; independent activities can
//! by chance always appear in the same order. Both failure modes are
//! controlled by the edge-count threshold `T` of
//! [`MinerOptions::noise_threshold`](crate::MinerOptions): an ordered
//! pair becomes an edge only if at least `T` executions exhibit it.
//!
//! With error rate `ε < 1/2` and `m` executions the paper bounds
//!
//! * `P[dependency lost]   ≤ C(m, T)·ε^T` — at least `T` erroneous
//!   reversals arrive, creating a two-cycle that deletes a real edge;
//! * `P[false dependency]  ≤ C(m, m−T)·(1/2)^(m−T)` — two independent
//!   activities happen to be ordered the same way in at least `m−T`
//!   executions, so the minority direction falls below `T` and a
//!   spurious edge survives.
//!
//! Setting the bounds equal gives `ε^T = (1/2)^(m−T)`, i.e.
//! `T = m·ln 2 / (ln 2 − ln ε)` — implemented by [`optimal_threshold`].

/// ln(m choose k), computed by summing logarithms (exact enough for the
/// probability bounds; `k ≤ m` required).
pub fn ln_choose(m: u64, k: u64) -> f64 {
    assert!(k <= m, "ln_choose requires k <= m");
    let k = k.min(m - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((m - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Natural log of the bound `C(m,t)·eps^t` (without clamping) — use
/// this when the bound underflows `f64` (it does quickly: the whole
/// point of the threshold is to make these probabilities astronomically
/// small). Returns `f64::INFINITY`-free values; `eps = 0` gives
/// `-inf` for `t > 0`.
pub fn ln_prob_dependency_lost(m: u64, t: u64, eps: f64) -> f64 {
    assert!((0.0..1.0).contains(&eps), "eps must be in [0, 1)");
    if t > m {
        return f64::NEG_INFINITY;
    }
    ln_choose(m, t) + t as f64 * eps.ln()
}

/// Natural log of the bound `C(m, m−t)·(1/2)^(m−t)` (without clamping).
pub fn ln_prob_false_dependency(m: u64, t: u64) -> f64 {
    if t >= m {
        return 0.0; // bound degenerates to 1
    }
    let k = m - t;
    ln_choose(m, k) + k as f64 * 0.5f64.ln()
}

/// Upper bound on the probability that a true dependency is lost to
/// noise: at least `t` of `m` executions reverse the pair, each
/// independently with probability `eps`. (`C(m,t)·eps^t`, clamped to 1.)
pub fn prob_dependency_lost(m: u64, t: u64, eps: f64) -> f64 {
    if t > m {
        return 0.0; // can never see t reversals in fewer executions
    }
    if eps == 0.0 {
        return if t == 0 { 1.0 } else { 0.0 };
    }
    ln_prob_dependency_lost(m, t, eps).exp().min(1.0)
}

/// Upper bound on the probability that a false dependency is added
/// between independent activities: they are ordered the same way in at
/// least `m − t` of `m` executions. (`C(m, m−t)·(1/2)^(m−t)`, clamped.)
pub fn prob_false_dependency(m: u64, t: u64) -> f64 {
    ln_prob_false_dependency(m, t).exp().min(1.0)
}

/// Lower bound `δ` on the probability that Algorithm 2 classifies a
/// given pair correctly: `1 − max(P[lost], P[false])`.
pub fn success_probability(m: u64, t: u64, eps: f64) -> f64 {
    (1.0 - prob_dependency_lost(m, t, eps).max(prob_false_dependency(m, t))).max(0.0)
}

/// The threshold `T` that balances the two §6 error bounds:
/// `T = m·ln 2 / (ln 2 − ln ε)`, rounded, clamped to `[1, m]`.
///
/// Requires `0 < eps < 1/2` (the paper's standing assumption); at
/// `eps → 1/2` this tends to `m/2`, and smaller error rates give smaller
/// thresholds.
///
/// Returns `u64`: `T` scales with `m`, so for logs beyond `u32::MAX`
/// executions a narrower return type would silently truncate. Callers
/// feeding [`MinerOptions`](crate::MinerOptions) narrow with
/// `u32::try_from` at the boundary.
pub fn optimal_threshold(m: u64, eps: f64) -> u64 {
    assert!(
        eps > 0.0 && eps < 0.5,
        "optimal_threshold requires 0 < eps < 1/2 (got {eps})"
    );
    let ln2 = std::f64::consts::LN_2;
    let t = m as f64 * ln2 / (ln2 - eps.ln());
    (t.round() as u64).clamp(1, m.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!((ln_choose(10, 10)).abs() < 1e-12);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn optimal_threshold_limits() {
        // ε → 1/2 gives T ≈ m/2 (within rounding).
        let t = optimal_threshold(1000, 0.499);
        assert!((499..=500).contains(&t), "got {t}");
        // Small ε gives small T.
        let t = optimal_threshold(1000, 0.01);
        assert!(t < 150, "got {t}");
        // Monotone in ε.
        assert!(optimal_threshold(1000, 0.05) < optimal_threshold(1000, 0.2));
        // Always at least 1.
        assert_eq!(optimal_threshold(1, 0.01), 1);
    }

    #[test]
    fn optimal_threshold_survives_logs_beyond_u32() {
        // At eps → 1/2, T ≈ m/2: for 10 billion executions that is
        // itself beyond u32::MAX. The old `as u32` return truncated it.
        let t = optimal_threshold(10_000_000_000, 0.499);
        assert!(t > u64::from(u32::MAX), "got {t}");
        assert!((4_990_000_000..=5_000_000_000).contains(&t), "got {t}");
    }

    #[test]
    fn balanced_threshold_equalizes_bounds() {
        // At the optimal T the two log-bounds agree (the probabilities
        // themselves underflow f64 — by design).
        let (m, eps) = (10_000u64, 0.05f64);
        let t = optimal_threshold(m, eps);
        let lost = ln_prob_dependency_lost(m, t, eps);
        let false_dep = ln_prob_false_dependency(m, t);
        let rel = (lost - false_dep).abs() / lost.abs().max(1.0);
        assert!(rel < 0.02, "ln lost={lost} ln false={false_dep}");
    }

    #[test]
    fn probabilities_are_clamped_and_monotone() {
        assert!(prob_dependency_lost(10, 1, 0.4) <= 1.0);
        assert!(prob_dependency_lost(10, 11, 0.4) == 0.0);
        assert_eq!(prob_false_dependency(10, 10), 1.0);
        // More executions make false dependencies less likely at fixed T-fraction.
        assert!(prob_false_dependency(1000, 100) < prob_false_dependency(10, 1));
        // Raising the threshold lowers the lost-dependency bound: more
        // erroneous reversals are required. (Compare in log domain —
        // the clamped bounds saturate at 1 for small T.)
        assert!(ln_prob_dependency_lost(100, 50, 0.1) < ln_prob_dependency_lost(100, 30, 0.1));
        assert!(prob_dependency_lost(100, 50, 0.1) < 1e-10);
    }

    #[test]
    fn success_probability_reasonable() {
        let m = 10_000;
        let eps = 0.05;
        let t = optimal_threshold(m, eps);
        let p = success_probability(m, t, eps);
        assert!(
            p > 0.999,
            "with m=10k, eps=5% the pair-level error is negligible (p={p})"
        );
        // A terrible threshold ruins it.
        assert!(success_probability(10, 9, 0.05) < 0.5);
    }

    #[test]
    fn zero_eps_edge_cases() {
        assert_eq!(prob_dependency_lost(100, 5, 0.0), 0.0);
        assert_eq!(prob_dependency_lost(100, 0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "0 < eps < 1/2")]
    fn optimal_threshold_rejects_large_eps() {
        optimal_threshold(100, 0.6);
    }
}
