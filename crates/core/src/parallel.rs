//! Parallel mining: Algorithm 2's two heavy passes — ordered-pair
//! counting (step 2) and per-execution transitive-reduction marking
//! (step 5) — are embarrassingly parallel over executions. This module
//! runs them on scoped threads with per-thread accumulators merged at
//! the barriers, producing results identical to the serial miner.
//!
//! The paper's cost model has `m ≫ n`, so both passes are linear in the
//! number of executions; at the Table 1 scale (10 000 executions) the
//! speedup is near-linear in cores (see the `parallel_scaling` bench
//! binary).

use crate::general_dag::{
    count_one_execution, mark_one_execution, pair_observations, prune_graph, MarkScratch,
    OrderObservations, VertexLog,
};
use crate::model::graph_skeleton;
use crate::telemetry::{
    stage_end, stage_start, MetricsSink, MinerMetrics, NullSink, Stage, WallStage,
};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::{AdjMatrix, NodeId};
use procmine_log::WorkflowLog;

/// Parallel Algorithm 2: identical output to
/// [`mine_general_dag`](crate::mine_general_dag), with steps 2 and 5
/// fanned out over `threads` scoped threads.
///
/// `threads == 0` is treated as 1. The result is deterministic and
/// equal to the serial miner's for any thread count (counts merge by
/// addition, marks by union — both order-independent).
pub fn mine_general_dag_parallel(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
) -> Result<MinedModel, MineError> {
    mine_general_dag_parallel_instrumented(
        log,
        options,
        threads,
        &mut NullSink,
        &Tracer::disabled(),
    )
}

/// [`mine_general_dag_parallel`] with telemetry and tracing: each worker
/// thread accumulates its own [`MinerMetrics`], merged into `sink` at
/// the two join barriers (see [`crate::telemetry`]). Stage nanoseconds
/// for the parallel passes therefore sum CPU time across threads; a
/// [`WallStage`] timer around each barrier additionally records the
/// elapsed wall time, so CPU-ns / wall-ns per stage is the parallel
/// efficiency. The counters are identical to the serial miner's. Each
/// worker additionally records a per-thread span into `tracer` (its own
/// trace lane — see [`Tracer::worker`]), so a Chrome-trace view shows
/// the fan-out/join shape directly.
pub fn mine_general_dag_parallel_instrumented<S: MetricsSink>(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
    sink: &mut S,
    tracer: &Tracer,
) -> Result<MinedModel, MineError> {
    let _root = tracer.span_cat("mine.parallel", "miner");
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    options.limits.check_log(log)?;
    let deadline = options.limits.start_clock();
    for exec in log.executions() {
        deadline.check()?;
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
    }
    let threads = threads.max(1);
    let n = log.activities().len();
    let lower_span = tracer.span_cat("lower", "miner");
    let started = stage_start::<S>();
    let mut execs: Vec<Vec<(usize, u64, u64)>> = Vec::with_capacity(log.len());
    for e in log.executions() {
        deadline.check()?;
        execs.push(
            e.instances()
                .iter()
                .map(|i| (i.activity.index(), i.start, i.end))
                .collect(),
        );
    }
    let vlog = VertexLog { n, execs: &execs };
    stage_end(sink, Stage::Lower, started);
    drop(lower_span);

    // Step 2 in parallel: per-thread count matrices, merged by addition.
    // Each worker also fills a private MinerMetrics (the sink itself
    // never crosses a thread boundary); the join merges them. Each
    // worker likewise records its span into a private per-thread trace
    // buffer, flushed into the tracer when the buffer drops at join.
    let chunk = vlog.execs.len().div_ceil(threads);
    let count_span = tracer.span_cat("count_pairs", "miner");
    let wall = WallStage::start::<S>(Stage::CountPairs);
    let obs: OrderObservations = std::thread::scope(|scope| {
        let handles: Vec<_> = vlog
            .execs
            .chunks(chunk.max(1))
            .map(|execs| {
                scope.spawn(
                    move || -> Result<(OrderObservations, MinerMetrics), MineError> {
                        let buf = tracer.worker();
                        let _span = buf.span_cat("count_pairs.worker", "miner");
                        let started = stage_start::<S>();
                        let mut local = OrderObservations::new(n);
                        for exec in execs {
                            deadline.check()?;
                            count_one_execution(n, exec, &mut local);
                        }
                        let mut lm = MinerMetrics::new();
                        if S::ENABLED {
                            lm.executions_scanned = execs.len() as u64;
                            lm.pairs_counted = pair_observations(execs);
                            stage_end(&mut lm, Stage::CountPairs, started);
                        }
                        Ok((local, lm))
                    },
                )
            })
            .collect();
        let mut total = OrderObservations::new(n);
        let mut first_err = None;
        for h in handles {
            // Every handle is joined even after an error so no worker
            // outlives the scope; a worker panic is re-raised as-is.
            let (local, lm) = match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                    continue;
                }
                Ok(Ok(parts)) => parts,
            };
            for (t, l) in total.ordered.iter_mut().zip(local.ordered) {
                *t += l;
            }
            for (t, l) in total.overlap.iter_mut().zip(local.overlap) {
                *t += l;
            }
            if S::ENABLED {
                sink.record(|m| m.merge(&lm));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    })?;
    wall.finish(sink);
    drop(count_span);

    // Steps 3–4 serial (cheap).
    let mut g = prune_graph(n, &obs, options.noise_threshold, deadline, sink, tracer)?;
    let counts = obs.ordered;

    // Step 5 in parallel: per-thread marked matrices, merged by union.
    let reduce_span = tracer.span_cat("transitive_reduction", "miner");
    let wall = WallStage::start::<S>(Stage::Reduce);
    let marked: AdjMatrix = std::thread::scope(|scope| {
        let g_ref = &g;
        let handles: Vec<_> = vlog
            .execs
            .chunks(chunk.max(1))
            .map(|execs| {
                scope.spawn(move || -> Result<(AdjMatrix, MinerMetrics), MineError> {
                    let buf = tracer.worker();
                    let _span = buf.span_cat("transitive_reduction.worker", "miner");
                    let started = stage_start::<S>();
                    let mut local = AdjMatrix::new(n);
                    let mut scratch = MarkScratch::new();
                    for exec in execs {
                        deadline.check()?;
                        mark_one_execution(g_ref, exec, &mut local, &mut scratch);
                    }
                    let mut lm = MinerMetrics::new();
                    if S::ENABLED {
                        stage_end(&mut lm, Stage::Reduce, started);
                    }
                    Ok((local, lm))
                })
            })
            .collect();
        let mut total = AdjMatrix::new(n);
        let mut first_err = None;
        for h in handles {
            let (local, lm) = match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                    continue;
                }
                Ok(Ok(parts)) => parts,
            };
            for (u, v) in local.edges() {
                total.add_edge(u, v);
            }
            if S::ENABLED {
                sink.record(|m| m.merge(&lm));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    })?;
    wall.finish(sink);
    drop(reduce_span);

    // Step 6: drop edges no execution needed.
    let unmarked: Vec<(usize, usize)> =
        g.edges().filter(|&(u, v)| !marked.has_edge(u, v)).collect();
    if S::ENABLED {
        let dropped = unmarked.len() as u64;
        sink.record(|m| m.edges_dropped_by_reduction += dropped);
    }
    for (u, v) in unmarked {
        g.remove_edge(u, v);
    }
    if S::ENABLED {
        let final_edges = g.edge_count() as u64;
        sink.record(|m| m.edges_final += final_edges);
    }

    let _span = tracer.span_cat("assemble", "miner");
    let started = stage_start::<S>();
    let mut graph = graph_skeleton(log.activities());
    let mut support = Vec::with_capacity(g.edge_count());
    for (u, v) in g.edges() {
        graph.add_edge(NodeId::new(u), NodeId::new(v));
        support.push((u, v, counts[u * n + v]));
    }
    stage_end(sink, Stage::Assemble, started);
    Ok(MinedModel::new(graph, support))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_general_dag;

    fn assert_matches_serial(strings: &[&str], threads: usize) {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), threads).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b, "threads={threads}");
        // Edge support must match too (counts merged correctly).
        let mut sa = serial.edge_support().to_vec();
        let mut sb = parallel.edge_support().to_vec();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn matches_serial_at_various_thread_counts() {
        let strings = ["ABCF", "ACDF", "ADEF", "AECF", "ABCF", "ACDF"];
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_matches_serial(&strings, threads);
        }
    }

    #[test]
    fn matches_serial_on_larger_random_workload() {
        use procmine_sim::{randdag, walk};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let model = randdag::random_dag(
            &randdag::RandomDagConfig {
                vertices: 20,
                edge_prob: 0.4,
            },
            &mut rng,
        )
        .unwrap();
        let log = walk::random_walk_log(&model, 500, &mut rng).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), 4).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs_like_serial() {
        assert!(matches!(
            mine_general_dag_parallel(&WorkflowLog::new(), &MinerOptions::default(), 4),
            Err(MineError::EmptyLog)
        ));
        let cyclic = WorkflowLog::from_strings(["ABAB"]).unwrap();
        assert!(matches!(
            mine_general_dag_parallel(&cyclic, &MinerOptions::default(), 4),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
    }

    #[test]
    fn merged_counters_equal_serial() {
        use crate::general_dag::mine_general_dag_instrumented;
        use crate::telemetry::MinerMetrics;
        let strings = ["ABCF", "ACDF", "ADEF", "AECF", "ABCF", "ACDF"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let mut serial = MinerMetrics::new();
        mine_general_dag_instrumented(
            &log,
            &MinerOptions::default(),
            &mut serial,
            &Tracer::disabled(),
        )
        .unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let mut parallel = MinerMetrics::new();
            mine_general_dag_parallel_instrumented(
                &log,
                &MinerOptions::default(),
                threads,
                &mut parallel,
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(
                serial.counters(),
                parallel.counters(),
                "threads={threads}: per-thread metrics must merge to the serial totals"
            );
        }
    }

    #[test]
    fn wall_timers_cover_only_the_barrier_stages() {
        use procmine_sim::{randdag, walk};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let model = randdag::random_dag(
            &randdag::RandomDagConfig {
                vertices: 15,
                edge_prob: 0.4,
            },
            &mut rng,
        )
        .unwrap();
        let log = walk::random_walk_log(&model, 400, &mut rng).unwrap();
        let mut m = MinerMetrics::new();
        mine_general_dag_parallel_instrumented(
            &log,
            &MinerOptions::default(),
            2,
            &mut m,
            &Tracer::disabled(),
        )
        .unwrap();
        // The two fan-out/join barriers record wall time; serial stages
        // have no barrier and stay at zero wall.
        assert!(m.wall_nanos(Stage::CountPairs) > 0);
        assert!(m.wall_nanos(Stage::Reduce) > 0);
        assert_eq!(m.wall_nanos(Stage::Lower), 0);
        assert_eq!(m.wall_nanos(Stage::Prune), 0);
        assert_eq!(m.wall_nanos(Stage::Assemble), 0);
    }

    #[test]
    fn respects_threshold() {
        let mut strings = vec!["ABC"; 10];
        strings.push("ACB");
        let log = WorkflowLog::from_strings(strings).unwrap();
        let serial = mine_general_dag(&log, &MinerOptions::with_threshold(2)).unwrap();
        let parallel =
            mine_general_dag_parallel(&log, &MinerOptions::with_threshold(2), 3).unwrap();
        let mut a = serial.edges_named();
        let mut b = parallel.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
