//! A from-scratch CART-style decision tree over integer features.
//!
//! The paper delegates to "a classifier [WK91] … in particular, the use
//! of a decision tree classifier will give a set of simple rules". This
//! is a standard recursive-partitioning implementation: axis-parallel
//! splits of the form `x[f] <= t`, chosen to minimize weighted Gini
//! impurity, grown until purity, depth, or minimum-sample limits.

use crate::telemetry::ClassifyMetrics;
use crate::Dataset;
use procmine_core::{MetricsSink, NullSink};
use serde::{Deserialize, Serialize};

/// Tree-growing limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum Gini-impurity decrease required to accept a split.
    pub min_gain: f64,
    /// Minimum number of samples each side of a split must keep — a
    /// regularizer against memorizing individual noisy points.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
            min_gain: 1e-9,
            min_leaf: 1,
        }
    }
}

/// A node of the fitted tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `label`; `counts` is `(negatives,
    /// positives)` of the training rows that reached it.
    Leaf {
        /// Predicted class.
        label: bool,
        /// Training `(negative, positive)` counts at this leaf.
        counts: (usize, usize),
    },
    /// Internal split: rows with `x[feature] <= threshold` go left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (inclusive on the left).
        threshold: i64,
        /// Subtree for `x[feature] <= threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] > threshold`.
        right: Box<Node>,
    },
}

/// A fitted binary decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    dim: usize,
}

impl DecisionTree {
    /// Fits a tree to the dataset.
    pub fn fit(ds: &Dataset, cfg: &TreeConfig) -> Self {
        Self::fit_with(ds, cfg, &mut NullSink)
    }

    /// [`fit`](Self::fit) with telemetry: counts the tree, the
    /// candidate splits evaluated while growing it, and its final depth
    /// into `sink` (see [`ClassifyMetrics`]).
    pub fn fit_with<S: MetricsSink<ClassifyMetrics>>(
        ds: &Dataset,
        cfg: &TreeConfig,
        sink: &mut S,
    ) -> Self {
        let indices: Vec<usize> = (0..ds.len()).collect();
        let root = grow(ds, indices, cfg, 0, sink);
        let tree = DecisionTree {
            root,
            dim: ds.dim(),
        };
        if S::ENABLED {
            let depth = tree.depth() as u64;
            sink.record(|m| {
                m.trees_fitted += 1;
                m.max_tree_depth = m.max_tree_depth.max(depth);
            });
        }
        tree
    }

    /// Predicts the class of a feature vector. Missing trailing
    /// components read as 0 (the null output vector).
    pub fn predict(&self, x: &[i64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x.get(*feature).copied().unwrap_or(0);
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Fraction of dataset rows the tree classifies correctly.
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 1.0;
        }
        let correct = ds
            .iter()
            .filter(|(x, label)| self.predict(x) == *label)
            .count();
        correct as f64 / ds.len() as f64
    }

    /// The root node (for rule extraction and inspection).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Feature dimension the tree was trained on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn class_counts(ds: &Dataset, idx: &[usize]) -> (usize, usize) {
    let pos = idx.iter().filter(|&&i| ds.row(i).1).count();
    (idx.len() - pos, pos)
}

fn gini(neg: usize, pos: usize) -> f64 {
    let total = (neg + pos) as f64;
    if total == 0.0 {
        return 0.0;
    }
    let (pn, pp) = (neg as f64 / total, pos as f64 / total);
    1.0 - pn * pn - pp * pp
}

fn leaf(ds: &Dataset, idx: &[usize]) -> Node {
    let (neg, pos) = class_counts(ds, idx);
    Node::Leaf {
        label: pos >= neg && pos > 0 || neg == 0,
        counts: (neg, pos),
    }
}

fn grow<S: MetricsSink<ClassifyMetrics>>(
    ds: &Dataset,
    idx: Vec<usize>,
    cfg: &TreeConfig,
    depth: usize,
    sink: &mut S,
) -> Node {
    let (neg, pos) = class_counts(ds, &idx);
    if neg == 0 || pos == 0 || depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        return leaf(ds, &idx);
    }

    // Best split search: for each feature, sort row values and consider
    // thresholds between distinct consecutive values.
    let parent_gini = gini(neg, pos);
    let mut best: Option<(usize, i64, f64)> = None; // (feature, threshold, gain)
    let mut evaluated = 0u64;
    for f in 0..ds.dim() {
        let mut vals: Vec<(i64, bool)> = idx
            .iter()
            .map(|&i| {
                let (x, l) = ds.row(i);
                (x[f], l)
            })
            .collect();
        vals.sort_unstable_by_key(|&(v, _)| v);

        let total_pos = pos;
        let total = idx.len();
        let mut left_pos = 0usize;
        let mut left_n = 0usize;
        for w in 0..vals.len() - 1 {
            left_pos += vals[w].1 as usize;
            left_n += 1;
            if vals[w].0 == vals[w + 1].0 {
                continue; // can't split between equal values
            }
            let right_n = total - left_n;
            if left_n < cfg.min_leaf || right_n < cfg.min_leaf {
                continue; // split would strand too few samples
            }
            let right_pos = total_pos - left_pos;
            let child = (left_n as f64 * gini(left_n - left_pos, left_pos)
                + right_n as f64 * gini(right_n - right_pos, right_pos))
                / total as f64;
            let gain = parent_gini - child;
            if S::ENABLED {
                evaluated += 1;
            }
            if best.map_or(gain > cfg.min_gain, |(_, _, g)| gain > g) {
                best = Some((f, vals[w].0, gain));
            }
        }
    }
    if S::ENABLED {
        sink.record(|m| m.splits_evaluated += evaluated);
    }

    match best {
        None => leaf(ds, &idx),
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                .into_iter()
                .partition(|&i| ds.row(i).0[feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(ds, left_idx, cfg, depth + 1, sink)),
                right: Box::new(grow(ds, right_idx, cfg, depth + 1, sink)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(rows: Vec<(Vec<i64>, bool)>) -> Dataset {
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn single_threshold_recovered() {
        let data = ds((0..100).map(|i| (vec![i], i > 50)).collect());
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.accuracy(&data), 1.0);
        assert_eq!(tree.depth(), 1, "one split suffices");
        assert!(tree.predict(&[51]) && !tree.predict(&[50]));
        match tree.root() {
            Node::Split {
                feature: 0,
                threshold: 50,
                ..
            } => {}
            other => panic!("expected split at 50, got {other:?}"),
        }
    }

    #[test]
    fn conjunction_recovered() {
        // label = x0 > 5 && x1 <= 2.
        let mut rows = Vec::new();
        for x0 in 0..12 {
            for x1 in 0..6 {
                rows.push((vec![x0, x1], x0 > 5 && x1 <= 2));
            }
        }
        let data = ds(rows);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.accuracy(&data), 1.0);
        assert!(tree.predict(&[8, 1]));
        assert!(!tree.predict(&[8, 4]));
        assert!(!tree.predict(&[2, 1]));
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let data = ds(vec![(vec![1], true), (vec![2], true), (vec![9], true)]);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.predict(&[1000]));
    }

    #[test]
    fn inseparable_data_predicts_majority() {
        // Identical features, conflicting labels 2:1 negative.
        let data = ds(vec![(vec![5], false), (vec![5], false), (vec![5], true)]);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert!(!tree.predict(&[5]));
        assert!((tree.accuracy(&data) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_depth_limits_growth() {
        let data = ds((0..64).map(|i| (vec![i], i % 2 == 0)).collect());
        let cfg = TreeConfig {
            max_depth: 3,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&data, &cfg);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_leaf_suppresses_noise_splits() {
        // 50 clean points with one mislabelled outlier at x=25: without
        // regularization the tree carves a sliver around it; with
        // min_leaf=5 the outlier cannot justify a split of its own.
        let mut rows: Vec<(Vec<i64>, bool)> = (0..50).map(|i| (vec![i], i > 25)).collect();
        rows[10] = (vec![10], true); // noise
        let data = ds(rows);

        let overfit = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(overfit.accuracy(&data), 1.0, "memorizes the outlier");
        assert!(
            overfit.predict(&[10]),
            "unregularized tree reproduces the noise"
        );

        let cfg = TreeConfig {
            min_leaf: 5,
            ..Default::default()
        };
        let regular = DecisionTree::fit(&data, &cfg);
        assert!(
            !regular.predict(&[10]),
            "outlier voted down by its neighbourhood"
        );
        assert!(regular.predict(&[40]) && !regular.predict(&[5]));
        assert!(regular.accuracy(&data) < 1.0, "no longer memorizes");
    }

    #[test]
    fn min_leaf_larger_than_data_yields_single_leaf() {
        let data = ds((0..10).map(|i| (vec![i], i > 5)).collect());
        let cfg = TreeConfig {
            min_leaf: 20,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&data, &cfg);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn missing_features_read_zero_in_predict() {
        let data = ds(vec![(vec![0, 10], true), (vec![0, -10], false)]);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        // x[1] missing → 0 → which side depends on the split; just must
        // not panic.
        let _ = tree.predict(&[]);
        let _ = tree.predict(&[0]);
    }

    #[test]
    fn xor_collapses_to_majority_leaf() {
        // Greedy axis-parallel trees cannot make progress on balanced
        // XOR: every first split has zero Gini gain, so the tree stays a
        // single (majority) leaf. This is a known limitation of the
        // paper's chosen classifier family, not a bug.
        let mut rows = Vec::new();
        for x0 in 0..2i64 {
            for x1 in 0..2i64 {
                for _ in 0..10 {
                    rows.push((vec![x0, x1], (x0 ^ x1) == 1));
                }
            }
        }
        let data = ds(rows);
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.accuracy(&data) - 0.5).abs() < 1e-12);
    }
}
