//! Conditions mining (§7 of the paper): learning the Boolean edge
//! functions of a mined process model from activity outputs.
//!
//! Under the paper's simplifying assumption, the condition on edge
//! `(u, v)` is a Boolean function of `o(u)` alone. Every execution in
//! which `u` ran therefore yields a training example for `f_(u,v)`:
//! positive if `v` also ran, negative otherwise. A decision-tree
//! classifier over those examples "gives a set of simple rules that
//! classify when a given activity is taken or not".
//!
//! * [`Dataset`] / [`edge_training_set`] — §7's training-set
//!   construction;
//! * [`DecisionTree`] — a from-scratch CART-style classifier (Gini
//!   impurity, axis-parallel integer splits);
//! * [`Rule`] / [`rules_of`] — readable rules extracted from the tree;
//! * [`learn_edge_conditions`] — the end-to-end pass: one learned
//!   condition per edge of a mined model.
//!
//! # Example
//!
//! ```
//! use procmine_classify::{Dataset, DecisionTree, TreeConfig};
//!
//! // Orders above 500 need approval.
//! let ds = Dataset::from_rows(vec![
//!     (vec![700], true), (vec![650], true), (vec![900], true),
//!     (vec![100], false), (vec![499], false), (vec![300], false),
//! ]).unwrap();
//! let tree = DecisionTree::fit(&ds, &TreeConfig::default());
//! assert!(tree.predict(&[800]));
//! assert!(!tree.predict(&[42]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod decisions;
mod learn;
mod rules;
mod tree;

pub mod telemetry;

pub use dataset::{edge_training_set, Dataset, DatasetError};
pub use decisions::{analyze_decision_points, DecisionPoint};
pub use learn::{learn_edge_conditions, learn_edge_conditions_in, LearnedCondition};
pub use rules::{rules_of, Atom, Rule};
pub use telemetry::ClassifyMetrics;
pub use tree::{DecisionTree, TreeConfig};
