//! CLI surface for the metrics registry (`core::obs`): `--metrics`
//! export plumbing shared by `mine`/`check`/`conditions`, the cadenced
//! atomic rewrite behind `mine --follow --metrics-every`, and the
//! `procmine report` subcommand that renders a snapshot back into a
//! human-readable summary — doubling as the in-repo exposition checker
//! the CI metrics lane runs (`--validate`, `--prev`).
//!
//! Export format is chosen by file extension: `.prom` and `.txt` get
//! Prometheus text exposition, everything else the versioned JSON
//! snapshot (`procmine-metrics/v1`).

use crate::args::{parse, ArgError, Parsed};
use crate::output::{errln, outln};
use procmine_core::Registry;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;

type CliResult = Result<(), Box<dyn Error>>;

/// The registry implied by `--metrics FILE`: enabled when the flag is
/// present, the inert default otherwise (recording through it is a
/// single branch and never reads the clock).
pub fn registry_from_args(p: &Parsed) -> Registry {
    if p.get("metrics").is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    }
}

/// Whether `path` selects the Prometheus text exposition (by
/// extension); everything else gets the JSON snapshot.
fn is_prometheus_path(path: &str) -> bool {
    matches!(
        std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .map(str::to_ascii_lowercase)
            .as_deref(),
        Some("prom") | Some("txt")
    )
}

/// Renders the registry in the format `path`'s extension selects.
fn render_for_path(reg: &Registry, path: &str) -> String {
    if is_prometheus_path(path) {
        reg.render_prometheus()
    } else {
        let mut json = reg.to_json();
        json.push('\n');
        json
    }
}

/// Writes the final `--metrics FILE` export at command exit. No-op
/// without the flag.
pub fn write_metrics(reg: &Registry, p: &Parsed) -> CliResult {
    if let Some(path) = p.get("metrics") {
        std::fs::write(path, render_for_path(reg, path))?;
        errln!("wrote {path}");
    }
    Ok(())
}

/// Rewrites the metrics file atomically (tmp + rename, same primitive
/// as checkpoint saves) — the mid-stream cadence of
/// `--follow --metrics-every N`, safe to scrape at any moment.
pub fn write_metrics_atomic(reg: &Registry, path: &str) -> CliResult {
    // Raw atomic replace: a scraper reading mid-follow must see the
    // bare exposition/JSON, not a checkpoint envelope around it.
    procmine_log::stream::checkpoint::write_atomic_raw(
        std::path::Path::new(path),
        render_for_path(reg, path).as_bytes(),
    )?;
    Ok(())
}

/// Records one ingest pass into the per-format codec counters. The
/// deltas are the codec-stat increments this decode contributed (the
/// caller's stat structs are cumulative across sources).
pub fn record_ingest(reg: &Registry, format: &str, bytes: u64, events: u64) {
    if !reg.is_enabled() {
        return;
    }
    let labels = [("format", format)];
    reg.counter(
        "procmine_ingest_bytes_total",
        "Bytes decoded per input log format.",
        &labels,
    )
    .add(bytes);
    reg.counter(
        "procmine_ingest_events_total",
        "Events decoded per input log format.",
        &labels,
    )
    .add(events);
}

/// `procmine report SNAPSHOT [--prev FILE] [--trace FILE] [--validate]`:
/// renders a metrics export (JSON snapshot or Prometheus exposition,
/// by extension) as a human-readable summary; with `--validate` it
/// instead checks the file — exposition: HELP/TYPE present for every
/// family, no duplicate series, counters monotone vs `--prev`; JSON:
/// schema id, per-kind field shape, bucket/count consistency.
pub fn report(argv: &[String]) -> CliResult {
    let p = parse(argv, &["prev", "trace"], &["validate"])?;
    let [path] = p.positional() else {
        return Err(ArgError::Required("metrics snapshot file").into());
    };
    let text = std::fs::read_to_string(path)?;
    let prev = p
        .get("prev")
        .map(std::fs::read_to_string)
        .transpose()?
        .map(|t| (p.get("prev").unwrap_or_default().to_string(), t));

    if is_prometheus_path(path) {
        let scrape = ExpositionScrape::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if p.has("validate") {
            scrape.validate().map_err(|e| format!("{path}: {e}"))?;
            if let Some((prev_path, prev_text)) = &prev {
                let earlier =
                    ExpositionScrape::parse(prev_text).map_err(|e| format!("{prev_path}: {e}"))?;
                scrape
                    .check_monotone_counters(&earlier)
                    .map_err(|e| format!("{path} vs {prev_path}: {e}"))?;
            }
            outln!(
                "{path}: valid exposition ({} families, {} series)",
                scrape.types.len(),
                scrape.samples.len()
            );
            return Ok(());
        }
        render_exposition(&scrape);
    } else {
        let snap = Snapshot::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if p.has("validate") {
            snap.validate().map_err(|e| format!("{path}: {e}"))?;
            if let Some((prev_path, prev_text)) = &prev {
                let earlier =
                    Snapshot::parse(prev_text).map_err(|e| format!("{prev_path}: {e}"))?;
                snap.check_monotone_counters(&earlier)
                    .map_err(|e| format!("{path} vs {prev_path}: {e}"))?;
            }
            outln!(
                "{path}: valid {} snapshot ({} metric families)",
                procmine_core::obs::SNAPSHOT_SCHEMA,
                snap.metrics.len()
            );
            return Ok(());
        }
        render_snapshot(&snap);
    }

    if let Some(trace_path) = p.get("trace") {
        render_trace_summary(trace_path)?;
    }
    Ok(())
}

/// One decoded series from a JSON snapshot.
struct SnapSeries {
    labels: String,
    /// Counter/gauge value.
    value: Option<f64>,
    /// Histogram tallies.
    count: Option<u64>,
    sum: Option<u64>,
    min: Option<u64>,
    max: Option<u64>,
    bucket_total: u64,
}

struct SnapMetric {
    name: String,
    kind: String,
    series: Vec<SnapSeries>,
}

/// A parsed `procmine-metrics/v1` JSON snapshot.
struct Snapshot {
    schema: String,
    metrics: Vec<SnapMetric>,
}

impl Snapshot {
    fn parse(text: &str) -> Result<Snapshot, String> {
        use serde_json::Value;
        let value: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
        let schema = match value.get("schema") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("missing `schema` field".to_string()),
        };
        let Some(Value::Seq(raw)) = value.get("metrics") else {
            return Err("missing `metrics` array".to_string());
        };
        let mut metrics = Vec::with_capacity(raw.len());
        for (i, m) in raw.iter().enumerate() {
            let name = match m.get("name") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(format!("metric {i}: missing `name`")),
            };
            let kind = match m.get("type") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err(format!("metric `{name}`: missing `type`")),
            };
            if !matches!(m.get("help"), Some(Value::Str(_))) {
                return Err(format!("metric `{name}`: missing `help`"));
            }
            let Some(Value::Seq(raw_series)) = m.get("series") else {
                return Err(format!("metric `{name}`: missing `series` array"));
            };
            let mut series = Vec::with_capacity(raw_series.len());
            for s in raw_series {
                let labels = match s.get("labels") {
                    Some(Value::Map(pairs)) => {
                        let mut rendered: Vec<String> = pairs
                            .iter()
                            .map(|(k, v)| match (k, v) {
                                (Value::Str(k), Value::Str(v)) => Ok(format!("{k}=\"{v}\"")),
                                _ => Err(format!("metric `{name}`: non-string label")),
                            })
                            .collect::<Result<_, _>>()?;
                        rendered.sort();
                        rendered.join(",")
                    }
                    _ => return Err(format!("metric `{name}`: series missing `labels`")),
                };
                let num = |key: &str| -> Option<f64> {
                    match s.get(key) {
                        Some(Value::U64(v)) => Some(*v as f64),
                        Some(Value::I64(v)) => Some(*v as f64),
                        Some(Value::F64(v)) => Some(*v),
                        _ => None,
                    }
                };
                let bucket_total = match s.get("buckets") {
                    Some(Value::Seq(buckets)) => buckets
                        .iter()
                        .map(|b| b.get("count").and_then(Value::as_u64).unwrap_or(0))
                        .sum(),
                    _ => 0,
                };
                series.push(SnapSeries {
                    labels,
                    value: num("value"),
                    count: s.get("count").and_then(Value::as_u64),
                    sum: s.get("sum").and_then(Value::as_u64),
                    min: s.get("min").and_then(Value::as_u64),
                    max: s.get("max").and_then(Value::as_u64),
                    bucket_total,
                });
            }
            metrics.push(SnapMetric { name, kind, series });
        }
        Ok(Snapshot { schema, metrics })
    }

    fn validate(&self) -> Result<(), String> {
        if self.schema != procmine_core::obs::SNAPSHOT_SCHEMA {
            return Err(format!(
                "schema mismatch: `{}` (want `{}`)",
                self.schema,
                procmine_core::obs::SNAPSHOT_SCHEMA
            ));
        }
        let mut seen = BTreeSet::new();
        for m in &self.metrics {
            if !matches!(m.kind.as_str(), "counter" | "gauge" | "histogram") {
                return Err(format!("metric `{}`: unknown type `{}`", m.name, m.kind));
            }
            for s in &m.series {
                if !seen.insert((m.name.clone(), s.labels.clone())) {
                    return Err(format!("duplicate series `{}{{{}}}`", m.name, s.labels));
                }
                match m.kind.as_str() {
                    "histogram" => {
                        let count = s.count.ok_or_else(|| {
                            format!("histogram `{}`: series missing `count`", m.name)
                        })?;
                        if s.sum.is_none() {
                            return Err(format!("histogram `{}`: series missing `sum`", m.name));
                        }
                        if s.bucket_total != count {
                            return Err(format!(
                                "histogram `{}{{{}}}`: bucket counts sum to {} but count is \
                                 {count}",
                                m.name, s.labels, s.bucket_total
                            ));
                        }
                    }
                    _ => {
                        if s.value.is_none() {
                            return Err(format!("{} `{}`: series missing `value`", m.kind, m.name));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Every counter series present in `earlier` must not have
    /// decreased (scrape-over-scrape monotonicity).
    fn check_monotone_counters(&self, earlier: &Snapshot) -> Result<(), String> {
        let now: BTreeMap<(String, String), f64> = self
            .metrics
            .iter()
            .filter(|m| m.kind == "counter")
            .flat_map(|m| {
                m.series
                    .iter()
                    .filter_map(|s| s.value.map(|v| ((m.name.clone(), s.labels.clone()), v)))
            })
            .collect();
        for m in earlier.metrics.iter().filter(|m| m.kind == "counter") {
            for s in &m.series {
                let (Some(old), Some(&new)) =
                    (s.value, now.get(&(m.name.clone(), s.labels.clone())))
                else {
                    continue;
                };
                if new < old {
                    return Err(format!(
                        "counter `{}{{{}}}` went backwards: {old} -> {new}",
                        m.name, s.labels
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A parsed Prometheus text exposition: declared types per family and
/// one value per full series line.
struct ExpositionScrape {
    /// family → declared TYPE.
    types: BTreeMap<String, String>,
    /// Families with a HELP line.
    helps: BTreeSet<String>,
    /// `(sample name, labels)` → value, in file order.
    samples: Vec<(String, String, f64)>,
}

impl ExpositionScrape {
    fn parse(text: &str) -> Result<ExpositionScrape, String> {
        let mut types = BTreeMap::new();
        let mut helps = BTreeSet::new();
        let mut samples = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let ln = ln + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap_or_default();
                helps.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return Err(format!("line {ln}: malformed TYPE line"));
                };
                types.insert(name.to_string(), kind.to_string());
            } else if line.starts_with('#') {
                continue; // comment
            } else {
                let (series, value) = line
                    .rsplit_once(' ')
                    .ok_or(format!("line {ln}: malformed sample line"))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| format!("line {ln}: `{value}` is not a number"))?;
                let (name, labels) = match series.split_once('{') {
                    Some((name, rest)) => {
                        let labels = rest
                            .strip_suffix('}')
                            .ok_or(format!("line {ln}: unterminated label set"))?;
                        (name.to_string(), labels.to_string())
                    }
                    None => (series.to_string(), String::new()),
                };
                samples.push((name, labels, value));
            }
        }
        Ok(ExpositionScrape {
            types,
            helps,
            samples,
        })
    }

    /// The declaring family of one sample name: histogram samples are
    /// rendered as `<family>_bucket` / `_sum` / `_count`.
    fn family_of(&self, sample: &str) -> Option<&str> {
        if self.types.contains_key(sample) {
            return self.types.get_key_value(sample).map(|(k, _)| k.as_str());
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = sample.strip_suffix(suffix) {
                if self.types.get(base).map(String::as_str) == Some("histogram") {
                    return self.types.get_key_value(base).map(|(k, _)| k.as_str());
                }
            }
        }
        None
    }

    fn validate(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        for (name, labels, _) in &self.samples {
            let family = self
                .family_of(name)
                .ok_or_else(|| format!("sample `{name}` has no TYPE declaration"))?;
            if !self.helps.contains(family) {
                return Err(format!("family `{family}` has no HELP line"));
            }
            if !seen.insert((name.clone(), labels.clone())) {
                return Err(format!("duplicate series `{name}{{{labels}}}`"));
            }
        }
        for family in self.types.keys() {
            if !self.helps.contains(family) {
                return Err(format!("family `{family}` has no HELP line"));
            }
        }
        Ok(())
    }

    /// Counter families (and histograms' cumulative `_bucket`/`_count`
    /// samples) present in `earlier` must not have decreased.
    fn check_monotone_counters(&self, earlier: &ExpositionScrape) -> Result<(), String> {
        let monotone = |scrape: &ExpositionScrape, name: &str| -> bool {
            match scrape
                .family_of(name)
                .and_then(|f| scrape.types.get(f))
                .map(String::as_str)
            {
                Some("counter") => true,
                Some("histogram") => name.ends_with("_bucket") || name.ends_with("_count"),
                _ => false,
            }
        };
        let now: BTreeMap<(&str, &str), f64> = self
            .samples
            .iter()
            .map(|(n, l, v)| ((n.as_str(), l.as_str()), *v))
            .collect();
        for (name, labels, old) in &earlier.samples {
            if !monotone(earlier, name) {
                continue;
            }
            let Some(&new) = now.get(&(name.as_str(), labels.as_str())) else {
                continue;
            };
            if new < *old {
                return Err(format!(
                    "counter `{name}{{{labels}}}` went backwards: {old} -> {new}"
                ));
            }
        }
        Ok(())
    }
}

/// Humanizes a nanosecond quantity for the summary tables.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn series_name(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

fn render_snapshot(snap: &Snapshot) {
    outln!(
        "metrics snapshot ({}): {} families",
        snap.schema,
        snap.metrics.len()
    );
    for m in &snap.metrics {
        for s in &m.series {
            let id = series_name(&m.name, &s.labels);
            match m.kind.as_str() {
                "histogram" => {
                    let count = s.count.unwrap_or(0);
                    let is_ns = m.name.ends_with("_ns");
                    let stat = |v: Option<u64>| match v {
                        Some(v) if is_ns => fmt_ns(v as f64),
                        Some(v) => v.to_string(),
                        None => "-".to_string(),
                    };
                    let mean = match count {
                        0 => "-".to_string(),
                        n => {
                            let mean = s.sum.unwrap_or(0) as f64 / n as f64;
                            if is_ns {
                                fmt_ns(mean)
                            } else {
                                format!("{mean:.1}")
                            }
                        }
                    };
                    outln!(
                        "  {id:<56} {count:>8} samples  mean {mean:>10}  min {:>10}  max {:>10}",
                        stat(s.min),
                        stat(s.max)
                    );
                }
                _ => {
                    let v = s.value.unwrap_or(0.0);
                    let rendered = if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{}", v as i64)
                    } else {
                        format!("{v:.3}")
                    };
                    outln!("  {id:<56} {rendered:>8} ({})", m.kind);
                }
            }
        }
    }
}

fn render_exposition(scrape: &ExpositionScrape) {
    outln!(
        "prometheus exposition: {} families, {} series",
        scrape.types.len(),
        scrape.samples.len()
    );
    for (name, labels, value) in &scrape.samples {
        outln!("  {:<64} {value}", series_name(name, labels));
    }
}

/// Joins a Chrome Trace Event file into the report: spans aggregated
/// per name (count and total duration — `dur` is microseconds in that
/// format).
fn render_trace_summary(path: &str) -> CliResult {
    use serde_json::Value;
    let text = std::fs::read_to_string(path)?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(Value::Seq(events)) = value.get("traceEvents") else {
        return Err(format!("{path}: missing `traceEvents` array").into());
    };
    let mut by_name: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for e in events {
        let (Some(Value::Str(name)), Some(dur)) = (e.get("name"), e.get("dur")) else {
            continue;
        };
        let dur = dur.as_u64().unwrap_or(0);
        let entry = by_name.entry(name.clone()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += dur;
    }
    outln!("\ntrace spans ({path}):");
    for (name, (count, total_us)) in &by_name {
        outln!(
            "  {name:<32} {count:>6} span(s)  total {}",
            fmt_ns(*total_us as f64 * 1e3)
        );
    }
    if let Some(dropped) = value
        .get("metadata")
        .and_then(|m| m.get("dropped_spans"))
        .and_then(Value::as_u64)
    {
        if dropped > 0 {
            outln!("  ({dropped} span(s) dropped at capacity)");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_core::Stage;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("procmine_a_total", "Counts a.", &[("format", "xes")])
            .add(3);
        reg.stage_latency(Stage::Prune).observe(1500);
        reg.gauge("procmine_rate", "A rate.", &[]).set(2.5);
        reg
    }

    #[test]
    fn exposition_round_trips_through_the_checker() {
        let reg = sample_registry();
        let scrape = ExpositionScrape::parse(&reg.render_prometheus()).unwrap();
        scrape.validate().unwrap();
        assert_eq!(scrape.types.len(), 3);
        // A later scrape with larger counters is monotone.
        reg.counter("procmine_a_total", "Counts a.", &[("format", "xes")])
            .add(5);
        reg.stage_latency(Stage::Prune).observe(99);
        let later = ExpositionScrape::parse(&reg.render_prometheus()).unwrap();
        later.check_monotone_counters(&scrape).unwrap();
        assert!(scrape.check_monotone_counters(&later).is_err());
    }

    #[test]
    fn exposition_checker_rejects_missing_type_and_duplicates() {
        let no_type = "procmine_x_total 4\n";
        let scrape = ExpositionScrape::parse(no_type).unwrap();
        assert!(scrape.validate().unwrap_err().contains("no TYPE"));

        let no_help = "# TYPE procmine_x_total counter\nprocmine_x_total 4\n";
        let scrape = ExpositionScrape::parse(no_help).unwrap();
        assert!(scrape.validate().unwrap_err().contains("no HELP"));

        let dup = "# HELP procmine_x_total X.\n# TYPE procmine_x_total counter\n\
                   procmine_x_total 4\nprocmine_x_total 5\n";
        let scrape = ExpositionScrape::parse(dup).unwrap();
        assert!(scrape.validate().unwrap_err().contains("duplicate series"));
    }

    #[test]
    fn json_snapshot_round_trips_through_the_checker() {
        let reg = sample_registry();
        let snap = Snapshot::parse(&reg.to_json()).unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.metrics.len(), 3);
        reg.counter("procmine_a_total", "Counts a.", &[("format", "xes")])
            .add(1);
        let later = Snapshot::parse(&reg.to_json()).unwrap();
        later.check_monotone_counters(&snap).unwrap();
        assert!(snap.check_monotone_counters(&later).is_err());
    }

    #[test]
    fn json_checker_rejects_schema_and_shape_violations() {
        let bad_schema = r#"{"schema":"procmine-metrics/v0","metrics":[]}"#;
        let snap = Snapshot::parse(bad_schema).unwrap();
        assert!(snap.validate().unwrap_err().contains("schema mismatch"));

        let bad_buckets = r#"{"schema":"procmine-metrics/v1","metrics":[
            {"name":"h_ns","type":"histogram","help":"H.","series":[
             {"labels":{},"count":3,"sum":9,"min":1,"max":5,
              "buckets":[{"le":7,"count":2}]}]}]}"#;
        let snap = Snapshot::parse(bad_buckets).unwrap();
        assert!(snap.validate().unwrap_err().contains("bucket counts"));
    }

    #[test]
    fn export_format_follows_the_extension() {
        assert!(is_prometheus_path("out/metrics.prom"));
        assert!(is_prometheus_path("m.TXT"));
        assert!(!is_prometheus_path("metrics.json"));
        assert!(!is_prometheus_path("metrics"));
    }
}
