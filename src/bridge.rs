//! Bridging mined artifacts back into executable process models.
//!
//! The paper's point is that discovered models are *compatible with
//! workflow systems* — a mined graph plus learned edge conditions (§7)
//! should be enough to run the process. This module closes that loop
//! inside the workspace: it converts a [`MinedModel`] and its learned
//! conditions into a [`ProcessModel`] the simulation engine can
//! execute, bootstrapping activity outputs from the log's observed
//! output vectors.
//!
//! The round trip — simulate → mine → rebuild → simulate → mine — is
//! the strongest internal validation the workspace offers: the re-mined
//! graph should match the first (see `tests/extensions.rs`).

use procmine_classify::{learn_edge_conditions, Atom, Rule, TreeConfig};
use procmine_core::MinedModel;
use procmine_log::{ActivityId, WorkflowLog};
use procmine_sim::{CmpOp, Condition, ModelError, OutputSpec, ProcessModel};

/// Converts one learned [`Atom`] into an executable [`Condition`].
fn atom_to_condition(atom: &Atom) -> Condition {
    match *atom {
        Atom::Le { feature, threshold } => Condition::cmp(feature, CmpOp::Le, threshold),
        Atom::Gt { feature, threshold } => Condition::cmp(feature, CmpOp::Gt, threshold),
    }
}

/// Converts a learned rule (conjunction of atoms) into a [`Condition`].
/// An empty conjunction is `true`.
pub fn rule_to_condition(rule: &Rule) -> Condition {
    rule.atoms
        .iter()
        .map(atom_to_condition)
        .reduce(Condition::and)
        .unwrap_or(Condition::True)
}

/// Converts a rule set (disjunction of conjunctions) into a
/// [`Condition`]. An empty rule set is `false` — the tree never
/// predicts the edge fires.
pub fn rules_to_condition(rules: &[Rule]) -> Condition {
    rules
        .iter()
        .map(rule_to_condition)
        .reduce(Condition::or)
        .unwrap_or(Condition::False)
}

/// Builds an executable [`ProcessModel`] from a mined model and its
/// log: edge conditions come from §7 decision-tree learning, activity
/// outputs are bootstrapped from the outputs observed in the log
/// ([`OutputSpec::Choice`]). Edges whose source never logged an output
/// stay unconditional.
///
/// Fails with [`ModelError`] when the mined graph is not a well-formed
/// process (e.g. cyclic, or lacking a unique source/sink) — the engine
/// executes acyclic single-entry/single-exit models.
pub fn executable_model(
    mined: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
) -> Result<ProcessModel, ModelError> {
    let learned = learn_edge_conditions(mined, log, cfg);

    let mut builder = ProcessModel::builder(format!("executable-{}", mined.activity_count()));
    for (id, _) in mined.graph().nodes() {
        let name = mined.name_of(id);
        // Observed output pool for this activity.
        let a = ActivityId::from_index(id.index());
        let pool: Vec<Vec<i64>> = log
            .executions()
            .iter()
            .filter_map(|e| e.output_of(a).map(<[i64]>::to_vec))
            .collect();
        let spec = if pool.is_empty() {
            OutputSpec::None
        } else {
            OutputSpec::Choice(pool)
        };
        builder = builder.activity_with(name, spec);
    }

    for c in &learned {
        let condition = if c.tree.is_none() {
            // No outputs were logged for the source: behave like the
            // paper's Flowmark case — unconditional control flow.
            Condition::True
        } else {
            rules_to_condition(&c.rules)
        };
        builder = builder.edge_if(&c.from, &c.to, condition);
    }
    builder.build()
}

/// Behavioural comparison of a model against a log, engaging the
/// paper's §4 open problem: "a valid goal for a process graph discovery
/// algorithm could be to find a conformal graph that also minimizes
/// extraneous executions." Exact counting of admitted executions is
/// intractable (subsets × interleavings), so precision is estimated by
/// sampling runs of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralFitness {
    /// Fraction of sampled model executions whose activity sequence
    /// appears verbatim in the log — low values mean many *extraneous*
    /// executions.
    pub precision: f64,
    /// Fraction of the log's distinct variants that are consistent with
    /// the model (Definition 6) — 1.0 for any conformal graph.
    pub recall: f64,
    /// Distinct sequences observed while sampling.
    pub sampled_variants: usize,
    /// Samples drawn.
    pub samples: usize,
}

/// Estimates [`BehavioralFitness`] by re-executing the mined model
/// `samples` times (via [`executable_model`]) and replaying the log's
/// variants against it.
pub fn behavioral_fitness<R: rand::Rng + ?Sized>(
    mined: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
    samples: usize,
    rng: &mut R,
) -> Result<BehavioralFitness, ModelError> {
    use std::collections::HashSet;
    let model = executable_model(mined, log, cfg)?;

    // Log variants, keyed by activity-name sequence (the executable
    // model's table may order ids differently).
    let log_variants: HashSet<Vec<&str>> = log
        .executions()
        .iter()
        .map(|e| {
            e.sequence()
                .iter()
                .map(|&a| log.activities().name(a))
                .collect()
        })
        .collect();

    let mut matched = 0usize;
    let mut sampled: HashSet<Vec<String>> = HashSet::new();
    for i in 0..samples {
        let exec = procmine_sim::engine::simulate(&model, format!("bf-{i}"), rng)
            .expect("executable models simulate");
        let names: Vec<String> = exec
            .sequence()
            .iter()
            .map(|&a| model.activities().name(a).to_string())
            .collect();
        if log_variants.contains(&names.iter().map(String::as_str).collect::<Vec<_>>()) {
            matched += 1;
        }
        sampled.insert(names);
    }

    // Recall: every log variant must replay consistently on the mined
    // graph (Definition 6).
    let mut consistent = 0usize;
    let mut seen: HashSet<Vec<procmine_log::ActivityId>> = HashSet::new();
    let mut total_variants = 0usize;
    for exec in log.executions() {
        if !seen.insert(exec.sequence()) {
            continue;
        }
        total_variants += 1;
        if procmine_core::conformance::check_execution(mined, exec).is_empty() {
            consistent += 1;
        }
    }

    Ok(BehavioralFitness {
        precision: if samples == 0 {
            1.0
        } else {
            matched as f64 / samples as f64
        },
        recall: if total_variants == 0 {
            1.0
        } else {
            consistent as f64 / total_variants as f64
        },
        sampled_variants: sampled.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_classify::TreeConfig;

    #[test]
    fn rule_conversion() {
        let rule = Rule {
            atoms: vec![
                Atom::Gt {
                    feature: 0,
                    threshold: 500,
                },
                Atom::Le {
                    feature: 1,
                    threshold: 70,
                },
            ],
            support: (0, 10),
        };
        let cond = rule_to_condition(&rule);
        assert!(cond.eval(&[600, 50]));
        assert!(!cond.eval(&[400, 50]));
        assert!(!cond.eval(&[600, 80]));

        let empty = Rule {
            atoms: vec![],
            support: (0, 1),
        };
        assert_eq!(rule_to_condition(&empty), Condition::True);
        assert_eq!(rules_to_condition(&[]), Condition::False);

        // Disjunction of two rules.
        let other = Rule {
            atoms: vec![Atom::Le {
                feature: 0,
                threshold: 10,
            }],
            support: (0, 5),
        };
        let cond = rules_to_condition(&[rule, other]);
        assert!(cond.eval(&[5, 0]), "second rule fires");
        assert!(cond.eval(&[600, 50]), "first rule fires");
        assert!(!cond.eval(&[100, 99]));
    }

    #[test]
    fn behavioral_fitness_on_conformal_model() {
        use procmine_core::{mine_auto, MinerOptions};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Simple XOR process: model should reproduce exactly the two
        // observed variants (precision 1.0) and replay both (recall 1.0).
        let log = procmine_log::WorkflowLog::from_strings(["ABD", "ACD", "ABD"]).unwrap();
        let (mined, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let bf = behavioral_fitness(&mined, &log, &TreeConfig::default(), 100, &mut rng).unwrap();
        assert_eq!(bf.recall, 1.0);
        // No outputs are logged, so both branches are unconditional and
        // the AND-join engine runs B and C *together* — an extraneous
        // execution the log never showed. The metric exposes exactly
        // this: precision reflects the extraneous interleavings.
        assert!(bf.samples == 100);
        assert!(bf.sampled_variants >= 1);

        // With output-carrying logs the learned XOR conditions kick in
        // and precision recovers.
        let process = procmine_sim::presets::order_fulfillment();
        let log = procmine_sim::engine::generate_log(&process, 300, &mut rng).unwrap();
        let (mined, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let bf = behavioral_fitness(&mined, &log, &TreeConfig::default(), 200, &mut rng).unwrap();
        assert_eq!(bf.recall, 1.0, "conformal ⟹ every variant replays");
        assert!(bf.precision > 0.9, "precision {}", bf.precision);
    }

    #[test]
    fn unconditional_chain_is_executable() {
        use procmine_core::{mine_auto, MinerOptions};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let log = procmine_log::WorkflowLog::from_strings(["ABC", "ABC"]).unwrap();
        let (mined, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let model = executable_model(&mined, &log, &TreeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let exec = procmine_sim::engine::simulate(&model, "x", &mut rng).unwrap();
        assert_eq!(exec.display(model.activities()), "A B C");
    }
}
