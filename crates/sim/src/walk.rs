//! The paper's §8.1 synthetic-log generator: a random walk over the
//! process graph with a ready list.
//!
//! > "The START activity is executed first and then all the activities
//! > that can be reached directly with one edge are inserted in a list.
//! > The next activity to be executed is selected from this list in
//! > random order. Once an activity A is logged, it is removed from the
//! > list, along with any activity B in the list such that there exists
//! > a (B, A) dependency. At the same time A's descendents are added to
//! > the list. When the END activity is selected, the process
//! > terminates. In this way, not all activities are present in all
//! > executions."
//!
//! Dependencies are taken as reachability in the model graph. Two extra
//! guards keep every generated execution consistent with the model
//! (Definition 6) without changing the spirit of the scheme: an activity
//! is never added to the list if an already-executed activity should
//! have run after it, and duplicates are not added.

use crate::ProcessModel;
use procmine_graph::{reach, AdjMatrix, NodeId};
use procmine_log::{ActivityId, Execution, LogError, WorkflowLog};
use rand::Rng;

/// Generates one random-walk execution of `model`'s graph (edge
/// conditions are ignored; branching randomness comes from list order
/// and early END selection).
pub fn random_walk<R: Rng + ?Sized>(
    model: &ProcessModel,
    closure: &AdjMatrix,
    id: impl Into<String>,
    rng: &mut R,
) -> Result<Execution, LogError> {
    let g = model.graph();
    let n = g.node_count();
    let start = model.start().index();
    let end = model.end().index();

    let mut executed = vec![false; n];
    let mut in_list = vec![false; n];
    let mut list: Vec<usize> = Vec::new();
    let mut seq: Vec<ActivityId> = Vec::new();

    // Execute START, seed the list with its direct successors.
    executed[start] = true;
    seq.push(ActivityId::from_index(start));
    for &s in g.successors(NodeId::new(start)) {
        if !in_list[s.index()] {
            in_list[s.index()] = true;
            list.push(s.index());
        }
    }

    while !list.is_empty() {
        let pick = rng.gen_range(0..list.len());
        let a = list.swap_remove(pick);
        in_list[a] = false;

        executed[a] = true;
        seq.push(ActivityId::from_index(a));
        if a == end {
            break;
        }

        // Remove any listed B with a (B, A) dependency: B should have
        // run before A, so it can no longer run.
        list.retain(|&b| {
            let keep = !closure.has_edge(b, a);
            if !keep {
                in_list[b] = false;
            }
            keep
        });

        // Add A's direct successors, skipping anything already executed,
        // already listed, or that should have preceded an executed
        // activity.
        for &s in g.successors(NodeId::new(a)) {
            let s = s.index();
            if executed[s] || in_list[s] {
                continue;
            }
            let invalidated = (0..n).any(|x| executed[x] && closure.has_edge(s, x));
            if invalidated {
                continue;
            }
            in_list[s] = true;
            list.push(s);
        }
    }

    Execution::from_ids(id, &seq)
}

/// Generates a log of `m` random-walk executions, sharing the model's
/// activity table. This is the workload generator of the Table 1/2
/// experiments.
pub fn random_walk_log<R: Rng + ?Sized>(
    model: &ProcessModel,
    m: usize,
    rng: &mut R,
) -> Result<WorkflowLog, LogError> {
    let closure = reach::transitive_closure(model.graph());
    let mut log = WorkflowLog::with_activities(model.activities().clone());
    for i in 0..m {
        log.push(random_walk(model, &closure, format!("walk-{i}"), rng)?);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walks_start_at_start_and_end_at_end() {
        let model = presets::graph10();
        let mut rng = StdRng::seed_from_u64(2024);
        let log = random_walk_log(&model, 200, &mut rng).unwrap();
        for e in log.executions() {
            let (first, last) = e.endpoints();
            assert_eq!(first, model.start());
            assert_eq!(last, model.end());
            assert!(!e.has_repeats());
        }
    }

    #[test]
    fn walks_respect_dependencies() {
        let model = presets::graph10();
        let closure = reach::transitive_closure(model.graph());
        let mut rng = StdRng::seed_from_u64(7);
        let log = random_walk_log(&model, 300, &mut rng).unwrap();
        for e in log.executions() {
            let seq = e.sequence();
            for (i, &u) in seq.iter().enumerate() {
                for &v in &seq[i + 1..] {
                    assert!(
                        !closure.has_edge(v.index(), u.index()),
                        "execution {} violates dependency {} -> {}",
                        e.display(model.activities()),
                        model.activities().name(v),
                        model.activities().name(u),
                    );
                }
            }
        }
    }

    #[test]
    fn not_all_activities_in_every_execution() {
        let model = presets::graph10();
        let mut rng = StdRng::seed_from_u64(99);
        let log = random_walk_log(&model, 100, &mut rng).unwrap();
        let partial = log
            .executions()
            .iter()
            .filter(|e| e.len() < model.activity_count())
            .count();
        assert!(partial > 0, "§8.1: random walks skip activities");
    }

    #[test]
    fn executions_vary() {
        let model = presets::graph10();
        let mut rng = StdRng::seed_from_u64(5);
        let log = random_walk_log(&model, 100, &mut rng).unwrap();
        let distinct: std::collections::HashSet<String> =
            log.display_sequences().into_iter().collect();
        assert!(distinct.len() > 5, "random selection produces variety");
    }

    #[test]
    fn chain_walks_are_the_full_chain() {
        let model = crate::ProcessModel::builder("chain")
            .activity("A")
            .activity("B")
            .activity("C")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let log = random_walk_log(&model, 10, &mut rng).unwrap();
        for e in log.executions() {
            assert_eq!(e.display(model.activities()), "A B C");
        }
    }
}
