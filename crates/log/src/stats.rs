//! Descriptive statistics over a workflow log.
//!
//! The paper's experimental section characterizes its inputs by number
//! of executions, number of activities, and log size; real deployments
//! additionally want per-activity frequencies and the directly-follows
//! counts before committing to a mining run. This module computes those
//! in one pass.

use crate::{ActivityId, WorkflowLog};

/// Per-activity occurrence statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityStats {
    /// The activity.
    pub activity: ActivityId,
    /// Executions containing the activity at least once.
    pub executions: usize,
    /// Total instances across the log (≥ `executions`).
    pub instances: usize,
    /// Executions where it was the first activity.
    pub starts: usize,
    /// Executions where it was the last activity.
    pub ends: usize,
}

/// Summary statistics of a log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogStats {
    /// Number of executions.
    pub executions: usize,
    /// Number of distinct activities.
    pub activities: usize,
    /// Total activity instances.
    pub total_instances: usize,
    /// Minimum execution length.
    pub min_len: usize,
    /// Mean execution length.
    pub mean_len: f64,
    /// Maximum execution length.
    pub max_len: usize,
    /// Number of distinct activity sequences.
    pub distinct_sequences: usize,
    /// Per-activity breakdown, in activity-id order.
    pub per_activity: Vec<ActivityStats>,
}

/// Computes [`LogStats`] in one pass over the log.
pub fn log_stats(log: &WorkflowLog) -> LogStats {
    let n = log.activities().len();
    let mut per_activity: Vec<ActivityStats> = (0..n)
        .map(|i| ActivityStats {
            activity: ActivityId::from_index(i),
            executions: 0,
            instances: 0,
            starts: 0,
            ends: 0,
        })
        .collect();

    let mut total_instances = 0usize;
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut distinct = std::collections::HashSet::new();
    let mut seen = vec![false; n];

    for exec in log.executions() {
        let seq = exec.sequence();
        total_instances += seq.len();
        min_len = min_len.min(seq.len());
        max_len = max_len.max(seq.len());
        distinct.insert(seq.clone());

        seen[..n].fill(false);
        for &a in &seq {
            per_activity[a.index()].instances += 1;
            if !seen[a.index()] {
                seen[a.index()] = true;
                per_activity[a.index()].executions += 1;
            }
        }
        let (first, last) = exec.endpoints();
        per_activity[first.index()].starts += 1;
        per_activity[last.index()].ends += 1;
    }

    let executions = log.len();
    LogStats {
        executions,
        activities: n,
        total_instances,
        min_len: if executions == 0 { 0 } else { min_len },
        mean_len: if executions == 0 {
            0.0
        } else {
            total_instances as f64 / executions as f64
        },
        max_len,
        distinct_sequences: distinct.len(),
        per_activity,
    }
}

/// One sequence *variant*: a distinct activity order with its frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// The activity sequence.
    pub sequence: Vec<ActivityId>,
    /// Executions following exactly this sequence.
    pub count: usize,
}

/// Groups the log's executions into variants, most frequent first (ties
/// broken by first appearance). The variant distribution is the
/// behavioural fingerprint of a process: a handful of variants covering
/// most cases indicates a disciplined process, a long tail indicates
/// ad-hoc work — and it determines how many executions the miners need
/// to observe every ordering.
pub fn variants(log: &WorkflowLog) -> Vec<Variant> {
    let mut order: Vec<Vec<ActivityId>> = Vec::new();
    let mut counts: std::collections::HashMap<Vec<ActivityId>, usize> =
        std::collections::HashMap::new();
    for exec in log.executions() {
        let seq = exec.sequence();
        if !counts.contains_key(&seq) {
            order.push(seq.clone());
        }
        *counts.entry(seq).or_insert(0) += 1;
    }
    let mut result: Vec<Variant> = order
        .into_iter()
        .map(|sequence| {
            let count = counts[&sequence];
            Variant { sequence, count }
        })
        .collect();
    result.sort_by_key(|v| std::cmp::Reverse(v.count));
    result
}

/// Fraction of executions covered by the `k` most frequent variants
/// (1.0 for an empty log).
pub fn variant_coverage(log: &WorkflowLog, k: usize) -> f64 {
    if log.is_empty() {
        return 1.0;
    }
    let vs = variants(log);
    let covered: usize = vs.iter().take(k).map(|v| v.count).sum();
    covered as f64 / log.len() as f64
}

/// Service-time statistics of one activity (END − START per instance),
/// in the log's clock ticks. All zeros for instantaneous logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationStats {
    /// The activity.
    pub activity: ActivityId,
    /// Instances measured.
    pub instances: usize,
    /// Shortest observed service time.
    pub min: u64,
    /// Total service time (mean = `total / instances`).
    pub total: u64,
    /// Longest observed service time.
    pub max: u64,
}

impl DurationStats {
    /// Mean service time (0 when no instances).
    pub fn mean(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.total as f64 / self.instances as f64
        }
    }
}

/// Per-activity service-time statistics — the performance dimension of
/// a START/END log (interesting only for non-instantaneous logs, e.g.
/// from the multi-agent engine or real Flowmark audit trails).
pub fn duration_stats(log: &WorkflowLog) -> Vec<DurationStats> {
    let n = log.activities().len();
    let mut stats: Vec<DurationStats> = (0..n)
        .map(|i| DurationStats {
            activity: ActivityId::from_index(i),
            instances: 0,
            min: u64::MAX,
            total: 0,
            max: 0,
        })
        .collect();
    for exec in log.executions() {
        for inst in exec.instances() {
            let s = &mut stats[inst.activity.index()];
            let d = inst.end - inst.start;
            s.instances += 1;
            s.min = s.min.min(d);
            s.max = s.max.max(d);
            s.total += d;
        }
    }
    for s in &mut stats {
        if s.instances == 0 {
            s.min = 0;
        }
    }
    stats
}

impl LogStats {
    /// Activities that start at least one execution — candidates for the
    /// process' initiating activity. A well-formed log has exactly one.
    pub fn start_candidates(&self) -> Vec<ActivityId> {
        self.per_activity
            .iter()
            .filter(|s| s.starts > 0)
            .map(|s| s.activity)
            .collect()
    }

    /// Activities that end at least one execution.
    pub fn end_candidates(&self) -> Vec<ActivityId> {
        self.per_activity
            .iter()
            .filter(|s| s.ends > 0)
            .map(|s| s.activity)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_log() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ABCE"]).unwrap();
        let s = log_stats(&log);
        assert_eq!(s.executions, 3);
        assert_eq!(s.activities, 5);
        assert_eq!(s.total_instances, 12);
        assert_eq!(s.min_len, 4);
        assert_eq!(s.max_len, 4);
        assert!((s.mean_len - 4.0).abs() < 1e-12);
        assert_eq!(s.distinct_sequences, 2);

        let a = log.activities().id("A").unwrap();
        let b = log.activities().id("B").unwrap();
        let e = log.activities().id("E").unwrap();
        assert_eq!(s.per_activity[a.index()].executions, 3);
        assert_eq!(s.per_activity[a.index()].starts, 3);
        assert_eq!(s.per_activity[b.index()].executions, 2);
        assert_eq!(s.per_activity[e.index()].ends, 3);
        assert_eq!(s.start_candidates(), vec![a]);
        assert_eq!(s.end_candidates(), vec![e]);
    }

    #[test]
    fn repeats_counted_as_instances() {
        let log = WorkflowLog::from_strings(["ABAB"]).unwrap();
        let s = log_stats(&log);
        let a = log.activities().id("A").unwrap();
        assert_eq!(s.per_activity[a.index()].executions, 1);
        assert_eq!(s.per_activity[a.index()].instances, 2);
    }

    #[test]
    fn variants_sorted_by_frequency() {
        let log = WorkflowLog::from_strings(["ABC", "ACB", "ABC", "ABC", "ACB", "AC"]).unwrap();
        let vs = variants(&log);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0].count, 3, "ABC most frequent");
        assert_eq!(vs[1].count, 2);
        assert_eq!(vs[2].count, 1);
        let names: Vec<&str> = vs[0]
            .sequence
            .iter()
            .map(|&a| log.activities().name(a))
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);

        assert!((variant_coverage(&log, 1) - 0.5).abs() < 1e-12);
        assert!((variant_coverage(&log, 2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(variant_coverage(&log, 10), 1.0);
        assert_eq!(variant_coverage(&WorkflowLog::new(), 3), 1.0);
    }

    #[test]
    fn duration_stats_from_intervals() {
        use crate::{ActivityInstance, ActivityTable};
        let mut table = ActivityTable::new();
        let a = table.intern("A");
        let b = table.intern("B");
        let mut log = WorkflowLog::with_activities(table);
        log.push(
            crate::Execution::new(
                "e0",
                vec![
                    ActivityInstance {
                        activity: a,
                        start: 0,
                        end: 10,
                        output: None,
                    },
                    ActivityInstance {
                        activity: a,
                        start: 20,
                        end: 24,
                        output: None,
                    },
                    ActivityInstance {
                        activity: b,
                        start: 30,
                        end: 30,
                        output: None,
                    },
                ],
            )
            .unwrap(),
        );
        let stats = duration_stats(&log);
        let sa = &stats[a.index()];
        assert_eq!((sa.instances, sa.min, sa.max, sa.total), (2, 4, 10, 14));
        assert!((sa.mean() - 7.0).abs() < 1e-12);
        let sb = &stats[b.index()];
        assert_eq!((sb.instances, sb.min, sb.max), (1, 0, 0));
    }

    #[test]
    fn duration_stats_instantaneous_log_all_zero() {
        let log = WorkflowLog::from_strings(["ABC"]).unwrap();
        for s in duration_stats(&log) {
            assert_eq!((s.min, s.max, s.total), (0, 0, 0));
            assert_eq!(s.mean(), 0.0);
        }
    }

    #[test]
    fn empty_log_stats() {
        let s = log_stats(&WorkflowLog::new());
        assert_eq!(s.executions, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.mean_len, 0.0);
        assert!(s.start_candidates().is_empty());
    }
}
