//! Activity-name interning.
//!
//! The miners' inner loops are O(n²) per execution over activity pairs;
//! interning activity names to dense `u32` ids up front keeps those loops
//! on integers and lets graphs and logs share one id space.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an activity name, valid within one
/// [`ActivityTable`] (and any log or mined graph built over it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(pub(crate) u32);

impl ActivityId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index (use only with indices obtained
    /// from the same table).
    // Documented caller contract: indices come from a table, and tables
    // cap out long before u32::MAX names.
    #[allow(clippy::expect_used)]
    pub fn from_index(index: usize) -> Self {
        ActivityId(u32::try_from(index).expect("activity index exceeds u32::MAX"))
    }
}

impl fmt::Debug for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An interning table mapping activity names to dense [`ActivityId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActivityTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, ActivityId>,
}

impl ActivityTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table pre-populated with `names`, in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Self::new();
        for n in names {
            t.intern(n.as_ref());
        }
        t
    }

    /// Returns the id for `name`, inserting it if unseen.
    pub fn intern(&mut self, name: &str) -> ActivityId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = ActivityId::from_index(self.names.len());
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing name without inserting.
    pub fn id(&self, name: &str) -> Option<ActivityId> {
        self.index.get(name).copied()
    }

    /// The name of `id`. Panics if `id` is not from this table.
    pub fn name(&self, id: ActivityId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct activities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no activity has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ActivityId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ActivityId::from_index(i), n.as_str()))
    }

    /// All names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuilds the name→id index (needed after deserializing, since the
    /// index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ActivityId::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = ActivityTable::new();
        let a = t.intern("Approve");
        let b = t.intern("Bill");
        let a2 = t.intern("Approve");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "Approve");
        assert_eq!(t.id("Bill"), Some(b));
        assert_eq!(t.id("Ship"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let t = ActivityTable::from_names(["A", "B", "C"]);
        let ids: Vec<usize> = t.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(t.names(), &["A", "B", "C"]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let t = ActivityTable::from_names(["X", "Y"]);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: ActivityTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id("X"), None, "index is skipped in serde");
        back.rebuild_index();
        assert_eq!(back.id("X"), Some(ActivityId::from_index(0)));
        assert_eq!(back.id("Y"), Some(ActivityId::from_index(1)));
    }
}
