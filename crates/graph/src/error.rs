//! Error type for graph algorithms.

use std::fmt;

/// Errors produced by graph algorithms in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An algorithm requiring a DAG was given a graph containing a cycle.
    /// Carries one node known to lie on a cycle.
    CycleDetected {
        /// A node on some cycle.
        node: usize,
    },
    /// Node index out of range.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A budgeted algorithm exceeded its wall-clock budget (see
    /// [`crate::budget::Budget`]).
    BudgetExhausted,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected { node } => {
                write!(f, "graph contains a cycle (through node {node})")
            }
            GraphError::NodeOutOfRange { index, node_count } => {
                write!(
                    f,
                    "node index {index} out of range (graph has {node_count} nodes)"
                )
            }
            GraphError::BudgetExhausted => {
                write!(f, "wall-clock budget exhausted during graph algorithm")
            }
        }
    }
}

impl std::error::Error for GraphError {}
