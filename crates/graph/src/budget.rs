//! Wall-clock budgets for the graph algorithms.
//!
//! The miners bound their per-execution loops with a deadline, but the
//! post-processing passes — transitive reduction and SCC dissolution —
//! are loops over *vertices and edges* of a potentially dense graph, so
//! a pathological input can overstay its welcome inside a single graph
//! call. [`Budget`] threads the same deadline into those passes:
//! budgeted algorithm variants ([`crate::reduction::transitive_reduction_matrix_budgeted`],
//! [`crate::scc::tarjan_scc_budgeted`]) check it periodically and bail
//! out with [`GraphError::BudgetExhausted`].

use crate::GraphError;
use std::time::Instant;

/// A wall-clock budget: either unlimited or a deadline instant.
/// Checking an unlimited budget never reads the clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget that never expires.
    pub fn unlimited() -> Budget {
        Budget { deadline: None }
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
        }
    }

    /// Errors with [`GraphError::BudgetExhausted`] once the deadline has
    /// passed. Free when unlimited.
    #[inline]
    pub fn check(&self) -> Result<(), GraphError> {
        match self.deadline {
            None => Ok(()),
            Some(t) => {
                if Instant::now() <= t {
                    Ok(())
                } else {
                    Err(GraphError::BudgetExhausted)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_fires() {
        assert!(Budget::unlimited().check().is_ok());
        assert!(Budget::default().check().is_ok());
    }

    #[test]
    fn expired_deadline_fires() {
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(budget.check(), Err(GraphError::BudgetExhausted));
    }

    #[test]
    fn future_deadline_passes() {
        let budget = Budget::with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(budget.check().is_ok());
    }
}
