//! The mining session: one place to carry *how* a pipeline run should
//! execute — metrics sink, tracer, resource limits, and thread count —
//! so the miners themselves only describe *what* each stage computes.
//!
//! A [`MineSession`] is the single way to configure instrumentation
//! (the retired twin entry points hand-threaded `(sink, tracer)`
//! through every call instead). The convenience miners
//! (`mine_general_dag(log, &options)` etc.) build a default session
//! internally; instrumented callers build one explicitly:
//!
//! ```
//! use procmine_core::{mine_general_dag_in, MineSession, MinerMetrics, MinerOptions, Tracer};
//! use procmine_log::WorkflowLog;
//!
//! let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
//! let mut metrics = MinerMetrics::new();
//! let tracer = Tracer::new();
//! let mut session = MineSession::new()
//!     .with_tracer(tracer.clone())
//!     .with_sink(&mut metrics);
//! let model = mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
//! assert_eq!(metrics.edges_final, model.edge_count() as u64);
//! assert!(!tracer.records().is_empty());
//! ```
//!
//! Sessions also carry the execution strategy: [`with_threads`]
//! (MineSession::with_threads) turns the heavy stages (pair counting,
//! the marking pass, SCC dissolution, global transitive reduction) into
//! fan-out/join barriers over scoped threads, while the cheap stages
//! keep their serial bodies — the parallel miner is a per-stage
//! strategy, not a fork of the pipeline.
//!
//! Deadlines compose: a session-level deadline (started when
//! [`with_limits`](MineSession::with_limits) is called) and the
//! per-run clock started from `options.limits.deadline` at miner entry
//! are combined with [`Deadline::earliest`] — whichever fires first
//! aborts the run.

use crate::limits::Deadline;
use crate::obs::Registry;
use crate::telemetry::{stage_end, stage_start, MetricsSink, NullSink, Stage};
use crate::trace::Tracer;
use crate::{Limits, MineError};

/// A configured pipeline run: metrics sink, tracer, limits with a
/// started deadline, and thread count. See the [module docs](self) for
/// the builder idiom; `S` defaults to [`NullSink`], so
/// `MineSession::new()` is the fully disabled (zero-cost) session.
///
/// The sink is held by value. To record into caller-owned metrics,
/// pass a mutable reference — `&mut M` is itself a
/// [`MetricsSink`] — and read the metrics after the run.
#[derive(Debug)]
pub struct MineSession<S = NullSink> {
    pub(crate) sink: S,
    pub(crate) tracer: Tracer,
    pub(crate) obs: Registry,
    pub(crate) limits: Limits,
    pub(crate) deadline: Deadline,
    pub(crate) threads: usize,
}

impl MineSession<NullSink> {
    /// A fully disabled session: no metrics, no tracing, no limits,
    /// serial execution. The convenience miners use this internally.
    pub fn new() -> Self {
        MineSession {
            sink: NullSink,
            tracer: Tracer::disabled(),
            obs: Registry::disabled(),
            limits: Limits::default(),
            deadline: Limits::default().start_clock(),
            threads: 1,
        }
    }
}

impl Default for MineSession<NullSink> {
    fn default() -> Self {
        MineSession::new()
    }
}

impl<S> MineSession<S> {
    /// Replaces the metrics sink, changing the session's sink type.
    /// Pass `&mut metrics` to keep ownership of the metrics value.
    pub fn with_sink<S2>(self, sink: S2) -> MineSession<S2> {
        MineSession {
            sink,
            tracer: self.tracer,
            obs: self.obs,
            limits: self.limits,
            deadline: self.deadline,
            threads: self.threads,
        }
    }

    /// Replaces the tracer. [`Tracer`] clones share their span store,
    /// so the caller can keep a handle for export.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replaces the metrics registry. [`Registry`] clones share their
    /// store, so the caller can keep a handle for export; every stage
    /// run in this session samples its wall latency into
    /// `procmine_stage_latency_ns{stage=…}`.
    pub fn with_obs(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the resource limits and (re)starts the session
    /// deadline from `limits.deadline`, measured from this call. Runs
    /// additionally honor `options.limits` per miner call — the sooner
    /// of the two deadlines wins.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.deadline = limits.start_clock();
        self.limits = limits;
        self
    }

    /// Sets the thread count for the parallelizable stages. `0` and
    /// `1` both mean serial; with `threads > 1` the heavy stages fan
    /// out over scoped threads and merge at join barriers, producing
    /// output identical to the serial strategy.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The session's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The session's metrics registry.
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// The session's resource limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The configured thread count (at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The sink and tracer as a borrowed pair — the handles
    /// instrumented code records into. Splitting the borrow lets stage
    /// bodies hold the sink mutably while spans are open on the tracer.
    pub fn handles(&mut self) -> (&mut S, &Tracer) {
        (&mut self.sink, &self.tracer)
    }

    /// The deadline governing a run started now: the sooner of the
    /// session deadline and a fresh clock from `options_limits`.
    pub(crate) fn run_deadline(&self, options_limits: &Limits) -> Deadline {
        self.deadline.earliest(options_limits.start_clock())
    }
}

/// Runs one pipeline stage as a named, traced, metered, budgeted unit:
/// opens a `miner`-category span named [`Stage::span_name`], checks the
/// deadline once at entry, credits the body's elapsed CPU time to the
/// stage's [`MinerMetrics`](crate::MinerMetrics) timer, and samples
/// the wall latency into the registry's per-stage histogram. Stage
/// bodies that loop over executions re-check the deadline themselves,
/// once per execution.
pub(crate) fn run_stage<S: MetricsSink, T>(
    stage: Stage,
    deadline: Deadline,
    sink: &mut S,
    tracer: &Tracer,
    obs: &Registry,
    body: impl FnOnce(&mut S, &Tracer) -> Result<T, MineError>,
) -> Result<T, MineError> {
    let _span = tracer.span_cat(stage.span_name(), "miner");
    deadline.check()?;
    let started = stage_start::<S>();
    let obs_started = obs.start();
    let out = body(sink, tracer)?;
    stage_end(sink, stage, started);
    if obs_started.is_some() {
        obs.stage_latency(stage).observe_since(obs_started);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MinerMetrics;
    use std::time::Duration;

    #[test]
    fn default_session_is_disabled_and_serial() {
        let session = MineSession::new();
        assert!(!session.tracer().is_enabled());
        assert_eq!(session.threads(), 1);
        assert_eq!(session.limits(), &Limits::default());
        assert!(session.run_deadline(&Limits::default()).check().is_ok());
    }

    #[test]
    fn builders_compose_and_preserve_configuration() {
        let mut metrics = MinerMetrics::new();
        let tracer = Tracer::new();
        let mut session = MineSession::new()
            .with_threads(4)
            .with_tracer(tracer.clone())
            .with_limits(Limits {
                max_events: Some(10),
                ..Limits::default()
            })
            .with_sink(&mut metrics);
        assert_eq!(session.threads(), 4);
        assert_eq!(session.limits().max_events, Some(10));
        let (sink, tracer_ref) = session.handles();
        assert!(tracer_ref.is_enabled());
        sink.record(|m| m.edges_final += 1);
        drop(session);
        assert_eq!(metrics.edges_final, 1);
    }

    #[test]
    fn zero_threads_means_serial() {
        assert_eq!(MineSession::new().with_threads(0).threads(), 1);
    }

    #[test]
    fn session_deadline_combines_with_run_limits() {
        let session = MineSession::new().with_limits(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        // The expired session deadline dominates unlimited run limits.
        assert!(session.run_deadline(&Limits::default()).check().is_err());

        let roomy = MineSession::new();
        let tight = Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        };
        let deadline = roomy.run_deadline(&tight);
        std::thread::sleep(Duration::from_millis(2));
        assert!(deadline.check().is_err());
    }

    #[test]
    fn run_stage_times_and_traces_the_body() {
        let mut metrics = MinerMetrics::new();
        let tracer = Tracer::new();
        let out = run_stage(
            Stage::Prune,
            Deadline::unlimited(),
            &mut metrics,
            &tracer,
            &Registry::disabled(),
            |sink, _| {
                sink.record(|m| m.edges_final += 7);
                Ok(7u32)
            },
        )
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(metrics.edges_final, 7);
        let records = tracer.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "prune");
        assert_eq!(records[0].cat, "miner");
    }

    #[test]
    fn run_stage_samples_the_registry_histogram() {
        let obs = Registry::new();
        run_stage(
            Stage::Reduce,
            Deadline::unlimited(),
            &mut NullSink,
            &Tracer::disabled(),
            &obs,
            |_, _| Ok(()),
        )
        .unwrap();
        let snap = obs.stage_latency(Stage::Reduce).snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(obs.stage_latency(Stage::Prune).snapshot().count, 0);
    }

    #[test]
    fn with_obs_is_carried_across_with_sink() {
        let obs = Registry::new();
        let session = MineSession::new().with_obs(obs.clone()).with_sink(NullSink);
        assert!(session.obs().is_enabled());
        drop(session);
        assert!(
            !MineSession::new().obs().is_enabled(),
            "default session has the disabled registry"
        );
    }

    #[test]
    fn run_stage_aborts_on_expired_deadline() {
        let deadline = Deadline::already_expired();
        std::thread::sleep(Duration::from_millis(2));
        let err = run_stage(
            Stage::CountPairs,
            deadline,
            &mut NullSink,
            &Tracer::disabled(),
            &Registry::disabled(),
            |_, _| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MineError::LimitExceeded {
                kind: crate::LimitKind::Deadline,
                ..
            }
        ));
    }
}
