//! Algorithm 2 (General DAG): acyclic processes where executions may
//! skip activities.
//!
//! Two complications over the special case (§4 of the paper):
//!
//! * *spurious followings* — with partial executions, a path of
//!   followings can exist in both directions between two activities even
//!   though no single execution reverses them. Such activities are
//!   independent, and step 4 dissolves them by removing every edge
//!   inside a strongly connected component of the followings graph;
//! * *execution completeness* — a dependency graph may forbid a logged
//!   execution (Example 5), so instead of one global transitive
//!   reduction, steps 5–6 keep exactly the edges that some execution's
//!   induced subgraph needs: per execution, the transitive reduction of
//!   the induced subgraph is computed and its edges marked; unmarked
//!   edges are dropped.
//!
//! The pipeline is expressed as [`Stage`]s run inside a
//! [`MineSession`]: lower → count_pairs → prune → scc_removal →
//! transitive_reduction → assemble. The session's thread count selects
//! the execution strategy per stage — with `threads > 1` the counting
//! and marking passes fan out over scoped threads (see
//! [`crate::parallel`]) while reusing the serial per-execution bodies
//! defined here. The same pipeline, run over *instance vertices*,
//! powers Algorithm 3 (see [`crate::mine_cyclic`]);
//! [`VertexLog`]/[`mine_vertex_log`] are the shared implementation.

use crate::limits::Deadline;
use crate::model::graph_skeleton;
use crate::obs::Registry;
use crate::session::{run_stage, MineSession};
use crate::telemetry::{MetricsSink, Stage};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::{scc, words, AdjMatrix, Arena, ArenaStats, NodeId};
use procmine_log::{EventColumns, ExecColumns, WorkflowLog};

/// A log lowered to dense vertex ids, in columnar form: each
/// execution's start-time-sorted `(vertex, start, end)` triples live in
/// the shared [`EventColumns`] buffers, delimited by the CSR offsets.
/// For Algorithm 2 the vertices are activities; for Algorithm 3 they
/// are activity *instances*. Each vertex occurs at most once per
/// execution.
///
/// Borrows the lowered columns so long-lived owners (the incremental
/// miner retains them across batches) can run the finishing steps
/// without cloning the whole log per snapshot.
#[derive(Clone, Copy)]
pub(crate) struct VertexLog<'a> {
    pub n: usize,
    pub cols: &'a EventColumns,
}

/// Output of the shared pipeline: the final edge matrix plus the step-2
/// observation counts (row-major `n × n`).
pub(crate) struct VertexMineResult {
    pub graph: AdjMatrix,
    pub counts: Vec<u32>,
}

/// Steps 2–7 of Algorithm 2 over an arbitrary vertex log. The
/// `deadline` is re-checked once per execution in both heavy passes;
/// `threads > 1` selects the parallel strategy for them.
pub(crate) fn mine_vertex_log<S: MetricsSink>(
    vlog: &VertexLog<'_>,
    threshold: u32,
    deadline: Deadline,
    threads: usize,
    sink: &mut S,
    tracer: &Tracer,
    reg: &Registry,
) -> Result<VertexMineResult, MineError> {
    let obs = if threads > 1 {
        crate::parallel::parallel_count(vlog, threads, deadline, sink, tracer, reg)?
    } else {
        run_stage(Stage::CountPairs, deadline, sink, tracer, reg, |sink, _| {
            count_ordered_pairs(vlog, deadline, sink)
        })?
    };
    finish_from_counts(vlog, obs, threshold, deadline, threads, sink, tracer, reg)
}

/// Step-2 observation counts: `ordered[u*n+v]` executions where `u`
/// terminates before `v` starts, and `overlap[u*n+v]` (symmetric)
/// executions where their intervals overlap. §2 of the paper justifies
/// the list-form simplification with "if there are two activities in
/// the log that overlap in time, then they must be independent
/// activities" — so observed overlap is direct independence evidence,
/// treated like a two-cycle during pruning.
#[derive(Debug, Clone)]
pub(crate) struct OrderObservations {
    pub ordered: Vec<u32>,
    pub overlap: Vec<u32>,
}

impl OrderObservations {
    pub fn new(n: usize) -> Self {
        OrderObservations {
            ordered: vec![0u32; n * n],
            overlap: vec![0u32; n * n],
        }
    }
}

/// The serial [`Stage::CountPairs`] body: one pass over the executions,
/// re-checking the deadline per execution. Counter recording only — the
/// stage runner (or the parallel strategy's workers) owns the span and
/// stage timer.
pub(crate) fn count_ordered_pairs<S: MetricsSink>(
    vlog: &VertexLog<'_>,
    deadline: Deadline,
    sink: &mut S,
) -> Result<OrderObservations, MineError> {
    let n = vlog.n;
    let mut obs = OrderObservations::new(n);
    for i in 0..vlog.cols.exec_count() {
        deadline.check()?;
        count_one_execution(n, vlog.cols.exec(i), &mut obs);
    }
    if S::ENABLED {
        let scanned = vlog.cols.exec_count() as u64;
        let pairs = pair_observations(vlog.cols);
        sink.record(|m| {
            m.executions_scanned += scanned;
            m.pairs_counted += pairs;
        });
    }
    Ok(obs)
}

/// Pair observations step 2 makes over the whole columnar log:
/// `k·(k−1)/2` per execution of length `k`.
pub(crate) fn pair_observations(cols: &EventColumns) -> u64 {
    pair_observations_range(cols, 0, cols.exec_count())
}

/// [`pair_observations`] restricted to executions `lo..hi` — the
/// parallel counting workers report their own chunk's total.
pub(crate) fn pair_observations_range(cols: &EventColumns, lo: usize, hi: usize) -> u64 {
    cols.offsets()[lo..=hi]
        .windows(2)
        .map(|w| {
            let k = (w[1] - w[0]) as u64;
            k * k.saturating_sub(1) / 2
        })
        .sum()
}

/// Adds one execution's ordered and overlapping pairs into `obs`.
pub(crate) fn count_one_execution(n: usize, exec: ExecColumns<'_>, obs: &mut OrderObservations) {
    let k = exec.len();
    for i in 0..k {
        let u = exec.activities[i] as usize;
        let end_u = exec.ends[i];
        for j in i + 1..k {
            let v = exec.activities[j] as usize;
            // Instances are start-sorted: the later entry can only
            // follow or overlap, never wholly precede.
            if end_u < exec.starts[j] {
                obs.ordered[u * n + v] += 1;
            } else {
                obs.overlap[u * n + v] += 1;
                obs.overlap[v * n + u] += 1;
            }
        }
    }
}

/// Reusable scratch for the per-execution marking pass. The pass needs
/// two k×k bit-matrix workspaces per execution; a bump [`Arena`] hands
/// both out as one zeroed word block that is recycled (not freed)
/// between executions, so the whole marking pass performs a handful of
/// allocations total and the arena's statistics become the
/// `procmine_arena_*` telemetry.
pub(crate) struct MarkScratch {
    arena: Arena,
    redundant: Vec<usize>,
}

impl MarkScratch {
    pub fn new() -> Self {
        MarkScratch {
            arena: Arena::new(),
            redundant: Vec::new(),
        }
    }

    /// Cumulative allocation telemetry for this scratch's arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }
}

/// Step 5 for one execution: build the induced subgraph (only edges of
/// `g` whose endpoints are ordered in this execution), take its
/// transitive reduction (Appendix A, over positions — start order is a
/// topological order), and mark the surviving edges.
///
/// The induced subgraph `sub` and descendant DP table `desc` are packed
/// bit rows of `wpr = ceil(k/64)` words, carved from one arena block.
pub(crate) fn mark_one_execution(
    g: &AdjMatrix,
    exec: ExecColumns<'_>,
    marked: &mut AdjMatrix,
    scratch: &mut MarkScratch,
) {
    let k = exec.len();
    let wpr = k.div_ceil(u64::BITS as usize);
    scratch.arena.reset();
    let (sub, desc) = scratch.arena.alloc(2 * k * wpr).split_at_mut(k * wpr);

    // Induced subgraph over positions 0..k: edge i→j iff the activity
    // pair is an edge of g AND instance i terminates before instance j
    // starts in this execution.
    for i in 0..k {
        let u = exec.activities[i] as usize;
        let end_u = exec.ends[i];
        let row = &mut sub[i * wpr..(i + 1) * wpr];
        for j in i + 1..k {
            if end_u < exec.starts[j] && g.has_edge(u, exec.activities[j] as usize) {
                words::insert(row, j);
            }
        }
    }
    // Transitive reduction in reverse position order (Appendix A).
    for i in (0..k).rev() {
        // desc row i := union of descendants of i's successors.
        let (before, after) = desc.split_at_mut((i + 1) * wpr);
        let di = &mut before[i * wpr..];
        let sub_i = &sub[i * wpr..(i + 1) * wpr];
        for s in words::ones(sub_i) {
            // Successors have s > i, so their desc rows sit in `after`.
            words::union(di, &after[(s - i - 1) * wpr..(s - i) * wpr]);
        }
        scratch.redundant.clear();
        scratch
            .redundant
            .extend(words::ones(sub_i).filter(|&s| words::contains(di, s)));
        let sub_i = &mut sub[i * wpr..(i + 1) * wpr];
        for &s in &scratch.redundant {
            words::remove(sub_i, s);
        }
        for s in words::ones(&sub[i * wpr..(i + 1) * wpr]) {
            words::insert(di, s);
        }
    }
    // Mark surviving edges at the vertex level.
    for i in 0..k {
        for j in words::ones(&sub[i * wpr..(i + 1) * wpr]) {
            marked.add_edge(exec.activities[i] as usize, exec.activities[j] as usize);
        }
    }
}

impl Default for MarkScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Folds one marking pass's arena statistics into the session's sink
/// and the registry's `procmine_arena_bytes` / `procmine_arena_resets`
/// counters (satellite telemetry for the arena-backed scratch).
pub(crate) fn record_arena_telemetry<S: MetricsSink>(
    stats: &ArenaStats,
    sink: &mut S,
    reg: &Registry,
) {
    if S::ENABLED {
        let st = *stats;
        sink.record(|m| {
            m.arena_bytes += st.bytes_allocated;
            m.arena_resets += st.resets;
            m.arena_high_water_bytes = m.arena_high_water_bytes.max(st.high_water_bytes);
        });
    }
    reg.counter(
        "procmine_arena_bytes",
        "Bytes handed out by mining scratch arenas",
        &[],
    )
    .add(stats.bytes_allocated);
    reg.counter(
        "procmine_arena_resets",
        "Mining scratch arena recycle events",
        &[],
    )
    .add(stats.resets);
}

/// Steps 3–4 of Algorithm 2 as two stages: [`Stage::Prune`] thresholds
/// the counts into an edge matrix and removes two-cycles (including
/// pairs observed overlapping — §2's independence evidence);
/// [`Stage::SccRemoval`] dissolves strongly connected components. The
/// SCC pass runs under the deadline's wall-clock budget, so even a
/// pathological followings graph cannot hide from `--deadline-ms`; with
/// `threads > 1` and a large vertex count it fans out per weakly
/// connected component.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prune_graph<S: MetricsSink>(
    n: usize,
    obs: &OrderObservations,
    threshold: u32,
    deadline: Deadline,
    threads: usize,
    sink: &mut S,
    tracer: &Tracer,
    reg: &Registry,
) -> Result<AdjMatrix, MineError> {
    let mut g = run_stage(Stage::Prune, deadline, sink, tracer, reg, |sink, _| {
        if S::ENABLED {
            let before = (0..n * n)
                .filter(|&i| i / n != i % n && obs.ordered[i] > 0)
                .count() as u64;
            sink.record(|m| m.edges_before_threshold += before);
        }
        let mut g = AdjMatrix::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v
                    && obs.ordered[u * n + v] >= threshold
                    && obs.overlap[u * n + v] < threshold
                {
                    g.add_edge(u, v);
                }
            }
        }
        let thresholded = g.edge_count();
        g.remove_two_cycles();
        if S::ENABLED {
            let dissolved = ((thresholded - g.edge_count()) / 2) as u64;
            sink.record(|m| {
                m.edges_after_threshold += thresholded as u64;
                m.two_cycles_dissolved += dissolved;
            });
        }
        Ok(g)
    })?;

    run_stage(Stage::SccRemoval, deadline, sink, tracer, reg, |sink, _| {
        let digraph = g.to_digraph(|_| ());
        let budget = deadline.budget();
        // The budgeted Tarjan's only failure mode is budget exhaustion.
        let sccs = if threads > 1 && n >= crate::parallel::parallel_graph_min_vertices() {
            scc::tarjan_scc_parallel_budgeted(&digraph, threads, &budget)
        } else {
            scc::tarjan_scc_budgeted(&digraph, &budget)
        }
        .map_err(|_| Deadline::exceeded_in("SCC removal"))?;
        let mut nontrivial = 0u64;
        for comp in sccs.nontrivial() {
            nontrivial += 1;
            for &u in comp {
                for &v in comp {
                    if u != v {
                        g.remove_edge(u.index(), v.index());
                    }
                }
            }
        }
        if S::ENABLED {
            sink.record(|m| m.scc_count += nontrivial);
        }
        Ok(())
    })?;
    Ok(g)
}

/// Steps 3–7 of Algorithm 2, given precomputed step-2 counts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_from_counts<S: MetricsSink>(
    vlog: &VertexLog<'_>,
    obs: OrderObservations,
    threshold: u32,
    deadline: Deadline,
    threads: usize,
    sink: &mut S,
    tracer: &Tracer,
    reg: &Registry,
) -> Result<VertexMineResult, MineError> {
    let n = vlog.n;
    let mut g = prune_graph(n, &obs, threshold, deadline, threads, sink, tracer, reg)?;
    let counts = obs.ordered;

    // Steps 5–6: per-execution induced-subgraph transitive reduction;
    // keep only edges some reduction needs.
    let marked = if threads > 1 {
        crate::parallel::parallel_mark(vlog, &g, threads, deadline, sink, tracer, reg)?
    } else {
        run_stage(Stage::Reduce, deadline, sink, tracer, reg, |sink, _| {
            let mut marked = AdjMatrix::new(n);
            let mut scratch = MarkScratch::new();
            for i in 0..vlog.cols.exec_count() {
                deadline.check()?;
                mark_one_execution(&g, vlog.cols.exec(i), &mut marked, &mut scratch);
            }
            record_arena_telemetry(&scratch.arena_stats(), sink, reg);
            Ok(marked)
        })?
    };

    // Step 6: drop edges no execution needed.
    let unmarked: Vec<(usize, usize)> =
        g.edges().filter(|&(u, v)| !marked.has_edge(u, v)).collect();
    if S::ENABLED {
        let dropped = unmarked.len() as u64;
        sink.record(|m| m.edges_dropped_by_reduction += dropped);
    }
    for (u, v) in unmarked {
        g.remove_edge(u, v);
    }
    if S::ENABLED {
        let final_edges = g.edge_count() as u64;
        sink.record(|m| m.edges_final += final_edges);
    }

    Ok(VertexMineResult { graph: g, counts })
}

/// Mines a conformal graph for an acyclic process whose executions may
/// skip activities (Algorithm 2). Runs in O(n³m).
///
/// Errors: [`MineError::EmptyLog`] for an empty log,
/// [`MineError::RepeatsRequireCyclicMiner`] if any execution repeats an
/// activity (use [`crate::mine_cyclic`]), and
/// [`MineError::LimitExceeded`] when `options.limits` sets a bound the
/// log or the run exceeds.
pub fn mine_general_dag(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<MinedModel, MineError> {
    mine_general_dag_in(&mut MineSession::new(), log, options)
}

/// [`mine_general_dag`] inside a [`MineSession`]: stage timings and
/// counters are recorded into the session's sink, hierarchical spans
/// into its tracer, and the session's thread count selects the
/// execution strategy (`threads > 1` fans the counting and marking
/// passes out over scoped threads, with output identical to the serial
/// strategy). With the default session this compiles to exactly the
/// uninstrumented serial miner.
pub fn mine_general_dag_in<S: MetricsSink>(
    session: &mut MineSession<S>,
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<MinedModel, MineError> {
    let deadline = session.run_deadline(&options.limits);
    let threads = session.threads;
    let MineSession {
        sink,
        tracer,
        obs: reg,
        limits,
        ..
    } = session;
    let tracer: &Tracer = tracer;
    let reg: &Registry = reg;
    let _root = tracer.span_cat(
        if threads > 1 {
            "mine.parallel"
        } else {
            "mine.general"
        },
        "miner",
    );
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    limits.check_log(log)?;
    options.limits.check_log(log)?;
    for exec in log.executions() {
        deadline.check()?;
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
    }

    let n = log.activities().len();
    let cols = run_stage(Stage::Lower, deadline, sink, tracer, reg, |_, _| {
        let events = log.executions().iter().map(|e| e.len()).sum();
        let mut cols = EventColumns::with_capacity(log.len(), events);
        for e in log.executions() {
            deadline.check()?;
            cols.push_exec(
                e.instances()
                    .iter()
                    .map(|i| (i.activity.index() as u32, i.start, i.end)),
            );
        }
        Ok(cols)
    })?;

    let vlog = VertexLog { n, cols: &cols };
    let result = mine_vertex_log(
        &vlog,
        options.noise_threshold,
        deadline,
        threads,
        sink,
        tracer,
        reg,
    )?;

    run_stage(Stage::Assemble, deadline, sink, tracer, reg, |_, _| {
        let mut graph = graph_skeleton(log.activities());
        let mut support = Vec::with_capacity(result.graph.edge_count());
        for (u, v) in result.graph.edges() {
            graph.add_edge(NodeId::new(u), NodeId::new(v));
            support.push((u, v, result.counts[u * n + v]));
        }
        Ok(MinedModel::new(graph, support))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::NullSink;

    fn mine(strings: &[&str]) -> MinedModel {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        mine_general_dag(&log, &MinerOptions::default()).unwrap()
    }

    #[test]
    fn expired_deadline_aborts_prune_pipeline() {
        // A single directed cycle of 2000 activities: one giant SCC with
        // no two-cycles to dissolve first. With the deadline already
        // expired the stage runner (or the budgeted Tarjan inside the
        // SCC stage) must abort with a deadline error.
        let n = 2_000;
        let mut obs = OrderObservations {
            ordered: vec![0; n * n],
            overlap: vec![0; n * n],
        };
        for i in 0..n {
            obs.ordered[i * n + (i + 1) % n] = 1;
        }
        let deadline = Deadline::already_expired();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = prune_graph(
            n,
            &obs,
            1,
            deadline,
            1,
            &mut NullSink,
            &Tracer::disabled(),
            &Registry::disabled(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                MineError::LimitExceeded {
                    kind: crate::LimitKind::Deadline,
                    ..
                }
            ),
            "expected a deadline error, got {err:?}"
        );
    }

    #[test]
    fn paper_example_7() {
        // Log {ABCF, ACDF, ADEF, AECF}: C, D, E form a strongly
        // connected component of followings (C→D, D→E, E→C), so all
        // edges among them vanish (step 4). Steps 5–6 then keep only the
        // edges some execution's reduction needs: ABCF needs B→C, so
        // B→C survives while the never-needed A→F and B→F are dropped.
        let model = mine(&["ABCF", "ACDF", "ADEF", "AECF"]);
        let mut edges = model.edges_named();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("A", "B"),
                ("A", "C"),
                ("A", "D"),
                ("A", "E"),
                ("B", "C"),
                ("C", "F"),
                ("D", "F"),
                ("E", "F"),
            ]
        );
    }

    #[test]
    fn paper_example_5_execution_completeness() {
        // Log {ADCE, ABCDE}: a pure dependency graph could chain
        // D after C's other predecessors and forbid ADCE (Figure 2,
        // right). The mined graph must allow both executions.
        let model = mine(&["ADCE", "ABCDE"]);
        // ADCE requires D before C with B absent, so the edge D→C must
        // be kept even though ABCDE routes C before D … wait: ABCDE has
        // C before D, ADCE has D before C — C,D are independent (two-
        // cycle) — so neither edge exists. The graph must still allow
        // both executions through other paths.
        assert!(!model.has_edge("C", "D") && !model.has_edge("D", "C"));
        assert!(model.has_edge("A", "B") || model.has_edge("A", "D") || model.has_edge("A", "C"));
        // Execution completeness is verified via conformance in
        // integration tests; here we sanity-check edge directions.
        for (u, v) in model.edges_named() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn open_problem_log_mines_a_conformal_graph() {
        // {ACF, ADCF, ABCF, ADECF} — the paper's "open problem" log with
        // two equally-sized conformal graphs (Figure 5). Check we get
        // one of them: 6 edges, A→C path preserved, B/D/E branch.
        let model = mine(&["ACF", "ADCF", "ABCF", "ADECF"]);
        assert!(model.has_edge("A", "B"));
        assert!(model.has_edge("C", "F"));
        assert!(model.has_edge("D", "E"));
        assert!(model.has_edge("B", "C") || model.has_edge("A", "C"));
    }

    #[test]
    fn skipped_activities_keep_direct_edges() {
        // B optional between A and C: A→B→C with shortcut A→C used when
        // B is skipped. The mined graph needs A→C for the ACD execution
        // (induced subgraph of ACD has no B) — this is exactly why
        // Algorithm 2 marks per-execution TR edges instead of taking a
        // global TR.
        let model = mine(&["ABCD", "ACD"]);
        assert!(model.has_edge("A", "B") && model.has_edge("B", "C"));
        assert!(model.has_edge("A", "C"), "shortcut edge required by ACD");
        assert!(model.has_edge("C", "D"));
    }

    #[test]
    fn global_tr_edges_not_needed_are_dropped() {
        // Every execution contains all of A,B,C in the same order: the
        // shortcut A→C is never needed.
        let model = mine(&["ABC", "ABC"]);
        assert_eq!(model.edges_named(), vec![("A", "B"), ("B", "C")]);
    }

    #[test]
    fn repeats_rejected() {
        let log = WorkflowLog::from_strings(["ABCB"]).unwrap();
        assert!(matches!(
            mine_general_dag(&log, &MinerOptions::default()),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
    }

    #[test]
    fn empty_log_rejected() {
        assert_eq!(
            mine_general_dag(&WorkflowLog::new(), &MinerOptions::default()).unwrap_err(),
            MineError::EmptyLog
        );
    }

    #[test]
    fn agrees_with_special_miner_on_complete_logs() {
        let strings = ["ABCDE", "ACDBE", "ACBDE"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let special = crate::mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let general = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut a = special.edges_named();
        let mut b = general.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn session_counters_match_model() {
        use crate::telemetry::MinerMetrics;
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let mut metrics = MinerMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let model = mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
        drop(session);
        assert_eq!(metrics.executions_scanned, 4);
        assert_eq!(metrics.pairs_counted, 4 * 6, "four executions of length 4");
        assert_eq!(metrics.edges_final, model.edge_count() as u64);
        assert_eq!(metrics.scc_count, 1, "Example 7: C,D,E form one SCC");
        assert!(metrics.edges_before_threshold >= metrics.edges_after_threshold);
        // The session run mines the same model as the plain one.
        let plain = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        assert_eq!(plain.edges_named(), model.edges_named());
    }

    #[test]
    fn session_limits_apply_alongside_option_limits() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF"]).unwrap();
        let mut session = MineSession::new().with_limits(crate::Limits {
            max_events: Some(3),
            ..crate::Limits::default()
        });
        assert!(matches!(
            mine_general_dag_in(&mut session, &log, &MinerOptions::default()),
            Err(MineError::LimitExceeded {
                kind: crate::LimitKind::Events,
                ..
            })
        ));
    }

    #[test]
    fn noise_threshold_filters_in_general_miner() {
        let mut strings = vec!["ABC"; 10];
        strings.push("ACB");
        let log = WorkflowLog::from_strings(strings).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::with_threshold(2)).unwrap();
        // T=2 drops the single C→B observation, so B→C survives as a
        // dependency. The noisy execution ACB itself stays in the log,
        // and step 5 keeps A→C because that execution's induced
        // subgraph needs it to reach C — thresholding filters the
        // *ordering counts*, not the executions (§6).
        assert_eq!(
            model.edges_named(),
            vec![("A", "B"), ("A", "C"), ("B", "C")]
        );

        // Without the threshold, the reversal makes B, C independent.
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        assert!(!model.has_edge("B", "C") && !model.has_edge("C", "B"));
    }
}
