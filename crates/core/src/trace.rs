//! Hierarchical span tracing with Chrome Trace Event export.
//!
//! The telemetry layer ([`crate::telemetry`]) answers *how much* work
//! each pipeline stage did; this module answers *when* and *in what
//! nesting*. A [`Tracer`] collects [`SpanRecord`]s — named wall-clock
//! intervals tagged with a thread id — and exports them in the Chrome
//! Trace Event Format, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! Design points, mirroring the zero-cost sink idiom:
//!
//! * **No-op default** — [`Tracer::disabled`] carries no state; opening
//!   a span against it never reads the clock, so untraced runs pay one
//!   branch per span site.
//! * **RAII spans** — [`Tracer::span`] / [`TraceBuffer::span`] return a
//!   [`SpanGuard`] that records the interval when dropped; nesting in
//!   the exported trace follows lexical scope.
//! * **Cheap per-thread buffers** — the parallel miner's workers each
//!   take a [`TraceBuffer`] via [`Tracer::worker`]: a plain `Vec`
//!   behind a `RefCell`, flushed into the shared tracer exactly once
//!   (when the buffer drops at the join barrier). Worker spans carry
//!   their own thread id, so the exported trace shows one lane per
//!   worker.
//!
//! Timestamps are nanoseconds since the tracer's construction; the
//! exporter converts to the microsecond `ts`/`dur` fields the Chrome
//! format specifies.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named interval on one thread lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (stable, machine-readable; e.g. `count_pairs`).
    pub name: &'static str,
    /// Category, used as the Chrome `cat` field (e.g. `miner`, `codec`).
    pub cat: &'static str,
    /// Trace lane: 0 is the main thread, workers count up from 1.
    pub tid: u32,
    /// Start, in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// State shared by a tracer and its thread buffers.
#[derive(Debug)]
struct Shared {
    epoch: Instant,
    spans: Mutex<SpanStore>,
    next_tid: AtomicU32,
    /// Maximum retained spans ([`Tracer::with_capacity`]); `None` grows
    /// without bound.
    capacity: Option<usize>,
    /// Spans evicted (or refused) because the ring was full.
    dropped: AtomicU64,
}

/// The retained spans, as a ring once `capacity` is reached: `next` is
/// the slot the oldest span occupies (and the next overwrite target).
#[derive(Debug, Default)]
struct SpanStore {
    spans: Vec<SpanRecord>,
    next: usize,
}

impl SpanStore {
    fn insert(&mut self, record: SpanRecord, capacity: Option<usize>, dropped: &AtomicU64) {
        match capacity {
            Some(0) => {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(cap) if self.spans.len() >= cap => {
                self.spans[self.next] = record;
                self.next = (self.next + 1) % cap;
                dropped.fetch_add(1, Ordering::Relaxed);
            }
            _ => self.spans.push(record),
        }
    }

    /// The retained spans in insertion order (oldest first).
    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.next..]);
        out.extend_from_slice(&self.spans[..self.next]);
        out
    }
}

impl Shared {
    fn push(&self, record: SpanRecord) {
        // A poisoned mutex means another thread panicked mid-push;
        // dropping this span beats propagating the panic.
        if let Ok(mut store) = self.spans.lock() {
            store.insert(record, self.capacity, &self.dropped);
        }
    }

    /// Bulk insert under one lock acquisition (the [`TraceBuffer`]
    /// flush path).
    fn extend(&self, records: impl IntoIterator<Item = SpanRecord>) {
        if let Ok(mut store) = self.spans.lock() {
            for record in records {
                store.insert(record, self.capacity, &self.dropped);
            }
        }
    }
}

/// A span collector with Chrome Trace Event export. Cloning is cheap
/// and shares the underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// An enabled tracer; the construction instant is timestamp zero.
    pub fn new() -> Tracer {
        Tracer::with_store(None)
    }

    /// An enabled tracer retaining at most `capacity` spans: once full
    /// it behaves as a ring buffer, evicting the oldest span for each
    /// new one, so very long traced runs cannot grow memory without
    /// bound. The evicted-span count is reported by
    /// [`dropped_spans`](Self::dropped_spans) and recorded in the
    /// Chrome export metadata.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer::with_store(Some(capacity))
    }

    fn with_store(capacity: Option<usize>) -> Tracer {
        Tracer {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                spans: Mutex::new(SpanStore::default()),
                next_tid: AtomicU32::new(1),
                capacity,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Spans evicted (or refused) by the ring buffer of
    /// [`with_capacity`](Self::with_capacity); always zero for an
    /// unbounded or disabled tracer.
    pub fn dropped_spans(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// The no-op tracer: spans opened against it are never timed or
    /// recorded. This is what the plain (un-traced) entry points pass.
    pub fn disabled() -> Tracer {
        Tracer { shared: None }
    }

    /// `true` when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span on the main lane (tid 0) with category `procmine`.
    /// The span is recorded when the returned guard drops.
    #[must_use = "the span ends when the guard is dropped"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_cat(name, "procmine")
    }

    /// Opens a span on the main lane (tid 0) with an explicit category.
    #[must_use = "the span ends when the guard is dropped"]
    pub fn span_cat(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            target: match &self.shared {
                Some(shared) => Target::Shared(shared),
                None => Target::Disabled,
            },
            name,
            cat,
            start: self.shared.as_ref().map(|_| Instant::now()),
        }
    }

    /// Allocates a thread-local span buffer with a fresh lane id
    /// (tid ≥ 1). Spans recorded into it are flushed into this tracer
    /// when the buffer drops — one lock acquisition per buffer, not per
    /// span. Disabled tracers hand out inert buffers.
    pub fn worker(&self) -> TraceBuffer {
        match &self.shared {
            Some(shared) => TraceBuffer {
                shared: Some(Arc::clone(shared)),
                tid: shared.next_tid.fetch_add(1, Ordering::Relaxed),
                spans: RefCell::new(Vec::new()),
            },
            None => TraceBuffer {
                shared: None,
                tid: 0,
                spans: RefCell::new(Vec::new()),
            },
        }
    }

    /// Snapshot of every retained span recorded so far (flushed buffers
    /// only), oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.shared {
            Some(shared) => shared
                .spans
                .lock()
                .map(|store| store.snapshot())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Renders the recorded spans as a Chrome Trace Event JSON string.
    pub fn to_chrome_json(&self) -> String {
        let mut out = Vec::new();
        // Infallible: Vec<u8> as a Write sink never errors.
        let _ = self.write_chrome_json(&mut out);
        String::from_utf8(out).unwrap_or_default()
    }

    /// Writes the recorded spans in Chrome Trace Event Format: one
    /// complete (`"ph":"X"`) event per span, `ts`/`dur` in microseconds,
    /// plus process/thread-name metadata events so Perfetto labels the
    /// lanes. Load the file in <https://ui.perfetto.dev> or
    /// `chrome://tracing`.
    pub fn write_chrome_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let records = self.records();
        writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        write!(
            w,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"procmine\"}}}}"
        )?;
        let mut tids: Vec<u32> = records.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let label = if tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            };
            write!(
                w,
                ",\n{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            )?;
        }
        for r in &records {
            write!(
                w,
                ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                escape(r.name),
                escape(r.cat),
                r.tid,
                r.start_ns as f64 / 1000.0,
                r.dur_ns as f64 / 1000.0,
            )?;
        }
        writeln!(
            w,
            "\n],\"metadata\":{{\"dropped_spans\":{}}}}}",
            self.dropped_spans()
        )
    }
}

/// Minimal JSON string escaping. Span names and categories are static
/// identifiers, so this is belt-and-braces for the exported file; the
/// conformance JSON report reuses it for arbitrary activity names.
pub(crate) fn escape(s: &str) -> String {
    if s.chars().all(|c| c != '"' && c != '\\' && c >= ' ') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c < ' ' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A per-thread span buffer handed out by [`Tracer::worker`]. Spans
/// recorded into it stay thread-local (no locking) until the buffer is
/// dropped, which flushes them into the owning tracer in one step.
#[derive(Debug)]
pub struct TraceBuffer {
    shared: Option<Arc<Shared>>,
    tid: u32,
    spans: RefCell<Vec<SpanRecord>>,
}

impl TraceBuffer {
    /// This buffer's trace lane id (0 when the tracer is disabled).
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Opens a span on this buffer's lane with category `procmine`.
    #[must_use = "the span ends when the guard is dropped"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_cat(name, "procmine")
    }

    /// Opens a span on this buffer's lane with an explicit category.
    #[must_use = "the span ends when the guard is dropped"]
    pub fn span_cat(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            target: match self.shared {
                Some(_) => Target::Buffer(self),
                None => Target::Disabled,
            },
            name,
            cat,
            start: self.shared.as_ref().map(|_| Instant::now()),
        }
    }
}

impl Drop for TraceBuffer {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            let spans = std::mem::take(&mut *self.spans.borrow_mut());
            if !spans.is_empty() {
                shared.extend(spans);
            }
        }
    }
}

enum Target<'a> {
    Disabled,
    Shared(&'a Shared),
    Buffer(&'a TraceBuffer),
}

/// RAII guard for one open span: created by [`Tracer::span`] or
/// [`TraceBuffer::span`], records the elapsed interval when dropped.
/// Against a disabled tracer the guard holds no timestamp and its drop
/// is a no-op.
#[must_use = "the span ends when the guard is dropped"]
pub struct SpanGuard<'a> {
    target: Target<'a>,
    name: &'static str,
    cat: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        match self.target {
            Target::Disabled => {}
            Target::Shared(shared) => {
                let record = SpanRecord {
                    name: self.name,
                    cat: self.cat,
                    tid: 0,
                    start_ns: start.duration_since(shared.epoch).as_nanos() as u64,
                    dur_ns: start.elapsed().as_nanos() as u64,
                };
                shared.push(record);
            }
            Target::Buffer(buffer) => {
                let Some(shared) = &buffer.shared else { return };
                let record = SpanRecord {
                    name: self.name,
                    cat: self.cat,
                    tid: buffer.tid,
                    start_ns: start.duration_since(shared.epoch).as_nanos() as u64,
                    dur_ns: start.elapsed().as_nanos() as u64,
                };
                buffer.spans.borrow_mut().push(record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let _root = tracer.span("root");
            let _inner = tracer.span("inner");
            let buf = tracer.worker();
            let _w = buf.span("worker");
        }
        assert!(!tracer.is_enabled());
        assert!(tracer.records().is_empty());
    }

    #[test]
    fn spans_nest_and_pair() {
        let tracer = Tracer::new();
        {
            let _root = tracer.span("root");
            let _inner = tracer.span_cat("inner", "test");
        }
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        // Inner drops first, so it is recorded first.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].cat, "test");
        assert_eq!(records[1].name, "root");
        // The root span contains the inner span.
        let (root, inner) = (&records[1], &records[0]);
        assert!(root.start_ns <= inner.start_ns);
        assert!(root.start_ns + root.dur_ns >= inner.start_ns + inner.dur_ns);
        assert_eq!(root.tid, 0);
    }

    #[test]
    fn worker_buffers_get_distinct_tids_and_flush_on_drop() {
        let tracer = Tracer::new();
        let b1 = tracer.worker();
        let b2 = tracer.worker();
        assert_ne!(b1.tid(), b2.tid());
        assert!(b1.tid() >= 1 && b2.tid() >= 1);
        {
            let _s = b1.span("one");
        }
        assert!(
            tracer.records().is_empty(),
            "worker spans stay local until the buffer drops"
        );
        drop(b1);
        drop(b2);
        let records = tracer.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "one");
        assert!(records[0].tid >= 1);
    }

    #[test]
    fn chrome_export_contains_events_and_thread_names() {
        let tracer = Tracer::new();
        {
            let _root = tracer.span("root");
            let buf = tracer.worker();
            let _w = buf.span("chunk");
        }
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"name\":\"chunk\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker-1"));
    }

    #[test]
    fn bounded_tracer_keeps_most_recent_spans() {
        let tracer = Tracer::with_capacity(3);
        for name in ["s1", "s2", "s3", "s4", "s5"] {
            let _s = tracer.span(name);
        }
        let names: Vec<&str> = tracer.records().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s3", "s4", "s5"], "oldest spans evicted first");
        assert_eq!(tracer.dropped_spans(), 2);
        // Before the ring fills, nothing is dropped.
        let fresh = Tracer::with_capacity(8);
        {
            let _s = fresh.span("only");
        }
        assert_eq!(fresh.dropped_spans(), 0);
        assert_eq!(fresh.records().len(), 1);
    }

    #[test]
    fn bounded_tracer_applies_to_worker_flushes() {
        let tracer = Tracer::with_capacity(2);
        let buf = tracer.worker();
        for name in ["w1", "w2", "w3"] {
            let _s = buf.span(name);
        }
        drop(buf);
        let names: Vec<&str> = tracer.records().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["w2", "w3"]);
        assert_eq!(tracer.dropped_spans(), 1);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let tracer = Tracer::with_capacity(0);
        {
            let _s = tracer.span("gone");
        }
        assert!(tracer.records().is_empty());
        assert_eq!(tracer.dropped_spans(), 1);
    }

    #[test]
    fn chrome_metadata_reports_dropped_spans() {
        let tracer = Tracer::with_capacity(1);
        for name in ["a", "b", "c"] {
            let _s = tracer.span(name);
        }
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"dropped_spans\":2"), "{json}");
        // Unbounded tracers report zero, and the field is always there.
        let unbounded = Tracer::new();
        assert!(unbounded.to_chrome_json().contains("\"dropped_spans\":0"));
        assert_eq!(unbounded.dropped_spans(), 0);
        assert_eq!(Tracer::disabled().dropped_spans(), 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\u000ab");
    }
}
