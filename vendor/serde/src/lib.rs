//! A minimal, std-only stand-in for [`serde`](https://crates.io/crates/serde),
//! vendored because this build environment has no registry access.
//!
//! Instead of serde's zero-copy visitor architecture, this stand-in
//! converts through an owned [`Value`] tree: `Serialize` renders a type
//! *to* a `Value`, `Deserialize` rebuilds it *from* one. The vendored
//! `serde_json` then maps `Value` to and from JSON text. Semantics
//! relevant to this workspace match real serde:
//!
//! - struct fields serialize in declaration order;
//! - `Option` fields accept a missing key as `None`;
//! - unknown fields are ignored;
//! - enums use the externally-tagged representation;
//! - newtype structs are transparent;
//! - `#[serde(skip)]` and `#[serde(skip_serializing_if = "..")]` are
//!   honoured by the derive.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree both traits convert through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive ones parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Value>),
    /// A map (JSON object), preserving insertion order. Keys are
    /// `Value` so that maps with non-string keys still serialize; JSON
    /// text itself only supports string keys.
    Map(Vec<(Value, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Looks up a string key in a [`Value::Map`]; `None` for other
    /// variants or absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }
}

// `Value` round-trips through itself, so generic code (and tests) can
// deserialize into `Value` to inspect arbitrary documents.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: Value) -> Result<Self, DeError> {
        Ok(value)
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y" for a mismatched `Value` shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {what}, found {}", got.type_name()),
        }
    }

    /// A required struct field was absent.
    pub fn missing_field(field: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}`"),
        }
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type renderable to a [`Value`].
pub trait Serialize {
    /// Converts `self` to the intermediate tree.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate tree.
    fn from_value(v: Value) -> Result<Self, DeError>;

    /// Called when a struct field of this type is absent from the
    /// input. `Option` overrides this to produce `None`; everything
    /// else errors, like real serde.
    fn absent(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

/// Derive-internal helper: pops a named field out of a struct map,
/// falling back to [`Deserialize::absent`] when missing. Leftover keys
/// are ignored, matching serde's default.
#[doc(hidden)]
pub fn __field<T: Deserialize>(map: &mut Vec<(Value, Value)>, name: &str) -> Result<T, DeError> {
    if let Some(pos) = map
        .iter()
        .position(|(k, _)| matches!(k, Value::Str(s) if s == name))
    {
        let (_, v) = map.remove(pos);
        T::from_value(v)
    } else {
        T::absent(name)
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn de_u64(v: Value) -> Result<u64, DeError> {
    match v {
        Value::U64(n) => Ok(n),
        Value::I64(n) if n >= 0 => Ok(n as u64),
        other => Err(DeError::expected("unsigned integer", &other)),
    }
}

fn de_i64(v: Value) -> Result<i64, DeError> {
    match v {
        Value::I64(n) => Ok(n),
        Value::U64(n) => {
            i64::try_from(n).map_err(|_| DeError::custom(format!("integer {n} overflows i64")))
        }
        other => Err(DeError::expected("integer", &other)),
    }
}

macro_rules! de_unsigned {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(v: Value) -> Result<Self, DeError> {
                let n = de_u64(v)?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(v: Value) -> Result<Self, DeError> {
                let n = de_i64(v)?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(DeError::expected("number", &other)),
        }
    }
}
impl Deserialize for f32 {
    fn from_value(v: Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}
impl Deserialize for bool {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(DeError::expected("bool", &other)),
        }
    }
}
impl Deserialize for String {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s),
            other => Err(DeError::expected("string", &other)),
        }
    }
}
impl Deserialize for char {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", &other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
    fn absent(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .into_iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", &other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($name:ident),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($($name::from_value(it.next().unwrap())?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("sequence of length ", $len), &other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_is_none() {
        let r: Result<Option<u32>, _> = Deserialize::absent("x");
        assert_eq!(r, Ok(None));
        let r: Result<u32, _> = Deserialize::absent("x");
        assert!(r.is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(i64::from_value(Value::U64(5)), Ok(5));
        assert_eq!(u64::from_value(Value::I64(5)), Ok(5));
        assert!(u64::from_value(Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(Value::U64(2)), Ok(2.0));
    }

    #[test]
    fn field_removal_ignores_unknown_keys() {
        let mut map = vec![
            (Value::Str("a".into()), Value::U64(1)),
            (Value::Str("zz".into()), Value::Null),
        ];
        let a: u32 = __field(&mut map, "a").unwrap();
        assert_eq!(a, 1);
        let b: Option<u32> = __field(&mut map, "b").unwrap();
        assert_eq!(b, None);
    }
}
