//! Resource guards: adversarially large logs must produce
//! `MineError::LimitExceeded` — promptly for deadlines — instead of
//! hanging or exhausting memory.

use procmine::log::WorkflowLog;
use procmine::mine::{
    mine_auto, mine_cyclic, mine_general_dag, mine_general_dag_parallel, mine_special_dag,
    IncrementalMiner, LimitKind, Limits, MineError, MinerOptions,
};
use std::time::{Duration, Instant};

/// A log big enough that mining it outlives any sub-second deadline:
/// `execs` identical executions over `n` distinct activities.
fn adversarial_log(n: usize, execs: usize) -> WorkflowLog {
    let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let mut log = WorkflowLog::new();
    for _ in 0..execs {
        log.push_sequence(&names).unwrap();
    }
    log
}

fn deadline_options(deadline: Duration) -> MinerOptions {
    MinerOptions::default().with_limits(Limits {
        deadline: Some(deadline),
        ..Limits::default()
    })
}

#[test]
fn deadline_fires_within_twice_the_budget() {
    let log = adversarial_log(100, 10_000);
    let deadline = Duration::from_millis(250);
    let started = Instant::now();
    let result = mine_general_dag(&log, &deadline_options(deadline));
    let elapsed = started.elapsed();
    match result {
        Err(MineError::LimitExceeded {
            kind: LimitKind::Deadline,
            ..
        }) => {}
        other => panic!("expected a deadline error, got {other:?} after {elapsed:?}"),
    }
    assert!(
        elapsed < deadline * 2,
        "deadline overshot: {elapsed:?} vs budget {deadline:?}"
    );
}

#[test]
fn deadline_bounds_reduction_dominated_special_mining() {
    // Two identical executions over many activities: pair counting is
    // O(execs·n²) and cheap, but the followings graph is a transitive
    // tournament whose O(n³/64) matrix reduction dominates. Before the
    // reduction ran under the deadline's budget, this workload blew
    // straight through `--deadline-ms`; now the error must surface
    // promptly whichever phase the clock runs out in.
    let log = adversarial_log(3_500, 2);
    let deadline = Duration::from_millis(200);
    let started = Instant::now();
    let result = mine_special_dag(&log, &deadline_options(deadline));
    let elapsed = started.elapsed();
    match result {
        Err(MineError::LimitExceeded {
            kind: LimitKind::Deadline,
            ..
        }) => {}
        other => panic!("expected a deadline error, got {other:?} after {elapsed:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(1_500),
        "deadline overshot: {elapsed:?} vs budget {deadline:?}"
    );
}

#[test]
fn deadline_fires_in_parallel_miner() {
    let log = adversarial_log(100, 10_000);
    let result = mine_general_dag_parallel(&log, &deadline_options(Duration::from_millis(100)), 4);
    assert!(matches!(
        result,
        Err(MineError::LimitExceeded {
            kind: LimitKind::Deadline,
            ..
        })
    ));
}

#[test]
fn deadline_fires_in_cyclic_miner() {
    // A repeated activity routes the log to Algorithm 3.
    let names: Vec<String> = (0..60).map(|i| format!("a{}", i % 30)).collect();
    let mut log = WorkflowLog::new();
    for _ in 0..10_000 {
        log.push_sequence(&names).unwrap();
    }
    let result = mine_cyclic(&log, &deadline_options(Duration::from_millis(100)));
    assert!(matches!(
        result,
        Err(MineError::LimitExceeded {
            kind: LimitKind::Deadline,
            ..
        })
    ));
}

#[test]
fn entry_size_limits_reject_before_mining() {
    let log = WorkflowLog::from_strings(["ABC", "AC"]).unwrap();

    let too_many_activities = MinerOptions::default().with_limits(Limits {
        max_activities: Some(2),
        ..Limits::default()
    });
    assert!(matches!(
        mine_auto(&log, &too_many_activities),
        Err(MineError::LimitExceeded {
            kind: LimitKind::Activities,
            ..
        })
    ));

    let too_many_events = MinerOptions::default().with_limits(Limits {
        max_events: Some(4),
        ..Limits::default()
    });
    assert!(matches!(
        mine_auto(&log, &too_many_events),
        Err(MineError::LimitExceeded {
            kind: LimitKind::Events,
            ..
        })
    ));

    let too_long = MinerOptions::default().with_limits(Limits {
        max_execution_len: Some(2),
        ..Limits::default()
    });
    assert!(matches!(
        mine_auto(&log, &too_long),
        Err(MineError::LimitExceeded {
            kind: LimitKind::ExecutionLength,
            ..
        })
    ));
}

#[test]
fn generous_limits_do_not_change_the_model() {
    let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
    let unguarded = mine_general_dag(&log, &MinerOptions::default()).unwrap();
    let guarded = mine_general_dag(
        &log,
        &MinerOptions::default().with_limits(Limits {
            max_events: Some(1_000),
            max_activities: Some(100),
            max_execution_len: Some(100),
            deadline: Some(Duration::from_secs(60)),
        }),
    )
    .unwrap();
    assert_eq!(unguarded.edges_named(), guarded.edges_named());
}

#[test]
fn incremental_miner_enforces_limits_at_absorb_time() {
    let mut inc = IncrementalMiner::new(MinerOptions::default().with_limits(Limits {
        max_events: Some(5),
        max_activities: Some(3),
        ..Limits::default()
    }));
    inc.absorb_sequence(&["A", "B", "C"]).unwrap();

    // A fourth distinct activity would exceed max_activities — and must
    // not pollute the table on rejection.
    assert!(matches!(
        inc.absorb_sequence(&["A", "D"]),
        Err(MineError::LimitExceeded {
            kind: LimitKind::Activities,
            ..
        })
    ));
    assert_eq!(inc.activities().len(), 3, "rejected absorb left no trace");

    // Three more events would blow the 5-event budget.
    assert!(matches!(
        inc.absorb_sequence(&["A", "B", "C"]),
        Err(MineError::LimitExceeded {
            kind: LimitKind::Events,
            ..
        })
    ));
    // A two-event execution still fits, and the miner remains usable.
    inc.absorb_sequence(&["A", "B"]).unwrap();
    assert!(inc.model().is_ok());
}
