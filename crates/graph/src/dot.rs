//! Graphviz DOT export.
//!
//! The paper presents its outputs as drawn process graphs (Figures 3–12);
//! this module renders mined [`DiGraph`]s to DOT so they can be rendered
//! with `dot -Tpng` and compared to the paper's figures.

use crate::{DiGraph, NodeId};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// The `digraph` name.
    pub name: String,
    /// Rank direction: `"LR"` (paper-style, left to right) or `"TB"`.
    pub rankdir: String,
    /// Extra attributes applied to every node (e.g. `shape=box`).
    pub node_attrs: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "process".to_string(),
            rankdir: "LR".to_string(),
            node_attrs: "shape=ellipse".to_string(),
        }
    }
}

/// Renders `g` as DOT, labelling each node with `label(id, payload)`.
pub fn to_dot_with<N>(
    g: &DiGraph<N>,
    opts: &DotOptions,
    mut label: impl FnMut(NodeId, &N) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_id(&opts.name));
    let _ = writeln!(out, "  rankdir={};", opts.rankdir);
    let _ = writeln!(out, "  node [{}];", opts.node_attrs);
    for (id, payload) in g.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            id.index(),
            escape(&label(id, payload))
        );
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  n{} -> n{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Renders `g` as DOT using the payload's `Display` as the node label.
pub fn to_dot<N: std::fmt::Display>(g: &DiGraph<N>, opts: &DotOptions) -> String {
    to_dot_with(g, opts, |_, p| p.to_string())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize_id(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let g = DiGraph::from_edges(vec!["A", "B", "C"], [(0, 1), (1, 2)]);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph process {"));
        assert!(dot.contains("n0 [label=\"A\"];"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        let g = DiGraph::from_edges(vec!["say \"hi\"", "back\\slash"], [(0, 1)]);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("say \\\"hi\\\""));
        assert!(dot.contains("back\\\\slash"));
    }

    #[test]
    fn sanitizes_graph_name() {
        let g: DiGraph<&str> = DiGraph::new();
        let opts = DotOptions {
            name: "Upload and Notify".into(),
            ..Default::default()
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.starts_with("digraph Upload_and_Notify {"));
        let opts = DotOptions {
            name: "7graph".into(),
            ..Default::default()
        };
        assert!(to_dot(&g, &opts).starts_with("digraph g_7graph {"));
    }

    #[test]
    fn custom_labels() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 1)]);
        let dot = to_dot_with(&g, &DotOptions::default(), |id, _| {
            format!("act{}", id.index())
        });
        assert!(dot.contains("label=\"act0\""));
        assert!(dot.contains("label=\"act1\""));
    }
}
