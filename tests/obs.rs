//! Integration coverage for the metrics registry (`core::obs`) wired
//! through the mining sessions: every miner samples its stage wall
//! latencies into a shared [`Registry`], and both export renderings
//! (Prometheus text exposition, versioned JSON snapshot) carry them.

use procmine::log::WorkflowLog;
use procmine::mine::{
    mine_auto_in, mine_cyclic_in, mine_general_dag_in, mine_general_dag_parallel,
    mine_special_dag_in, IncrementalMiner, MineSession, MinerOptions, Registry, Stage,
};

/// The paper's Example 6 log — accepted by every miner, including the
/// special DAG miner's preconditions.
fn example_log() -> WorkflowLog {
    WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap()
}

/// A log with repeated activities, which only the cyclic miner takes.
fn cyclic_log() -> WorkflowLog {
    WorkflowLog::from_strings(["ABAB", "AB"]).unwrap()
}

const ALL_STAGES: [Stage; 6] = [
    Stage::Lower,
    Stage::CountPairs,
    Stage::Prune,
    Stage::SccRemoval,
    Stage::Reduce,
    Stage::Assemble,
];

/// Total stage-latency samples recorded in `reg`, across all stages.
fn stage_samples(reg: &Registry) -> u64 {
    ALL_STAGES
        .into_iter()
        .map(|s| reg.stage_latency(s).snapshot().count)
        .sum()
}

#[test]
fn every_miner_populates_stage_latency_histograms() {
    let log = example_log();
    let options = MinerOptions::default();

    // Each miner gets its own registry so the assertion isolates it.
    let run = |name: &str, f: &dyn Fn(&mut MineSession<procmine::mine::NullSink>)| {
        let reg = Registry::new();
        let mut session = MineSession::new().with_obs(reg.clone());
        f(&mut session);
        let total = stage_samples(&reg);
        assert!(total > 0, "{name}: no stage-latency samples recorded");
        // Every miner assembles a model as its final stage.
        assert!(
            reg.stage_latency(Stage::Assemble).snapshot().count > 0,
            "{name}: Assemble stage not sampled"
        );
    };

    run("special", &|s| {
        mine_special_dag_in(s, &log, &options).unwrap();
    });
    run("general", &|s| {
        mine_general_dag_in(s, &log, &options).unwrap();
    });
    run("cyclic", &|s| {
        mine_cyclic_in(s, &cyclic_log(), &options).unwrap();
    });
    run("auto", &|s| {
        mine_auto_in(s, &log, &options).unwrap();
    });
    run("parallel", &|s| {
        // The parallel strategy routes through the same session
        // pipeline when the session carries a thread count.
        mine_general_dag_in(s, &log, &options).unwrap();
    });
    run("incremental", &|s| {
        let mut inc = IncrementalMiner::new(options.clone());
        inc.absorb_log(&log).unwrap();
        inc.model_in(s).unwrap();
    });
}

#[test]
fn parallel_entry_point_samples_through_shared_registry() {
    // The convenience parallel entry point builds its own session; the
    // session form with threads + obs is the instrumented path and must
    // agree with it while sampling.
    let log = example_log();
    let options = MinerOptions::default();
    let reg = Registry::new();
    let mut session = MineSession::new().with_obs(reg.clone()).with_threads(4);
    let metered = mine_general_dag_in(&mut session, &log, &options).unwrap();
    let plain = mine_general_dag_parallel(&log, &options, 4).unwrap();
    assert_eq!(metered.edges_named(), plain.edges_named());
    assert!(stage_samples(&reg) > 0);
}

#[test]
fn prometheus_exposition_carries_stage_histograms() {
    let log = example_log();
    let reg = Registry::new();
    let mut session = MineSession::new().with_obs(reg.clone());
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();

    let text = reg.render_prometheus();
    assert!(
        text.contains("# TYPE procmine_stage_latency_ns histogram"),
        "missing TYPE header:\n{text}"
    );
    assert!(text.contains("# HELP procmine_stage_latency_ns"));
    assert!(text.contains("procmine_stage_latency_ns_bucket{"));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.contains("stage=\"count_pairs\"") || text.contains("stage=\"CountPairs\""));
    assert!(text.contains("procmine_stage_latency_ns_count{"));
    assert!(text.contains("procmine_stage_latency_ns_sum{"));
}

#[test]
fn json_snapshot_is_versioned_and_lists_stage_latency() {
    let log = example_log();
    let reg = Registry::new();
    let mut session = MineSession::new().with_obs(reg.clone());
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();

    let json = reg.to_json();
    assert!(
        json.contains("\"schema\": \"procmine-metrics/v1\"")
            || json.contains("\"schema\":\"procmine-metrics/v1\""),
        "snapshot not versioned:\n{json}"
    );
    assert!(json.contains("procmine_stage_latency_ns"));
    assert!(json.contains("\"histogram\""));
}

#[test]
fn disabled_session_registry_records_nothing() {
    // MineSession::new() carries the disabled registry: mining through
    // it must leave no samples anywhere (and the handle reports it).
    let log = example_log();
    let mut session = MineSession::new();
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
    assert!(!session.obs().is_enabled());
    assert_eq!(stage_samples(session.obs()), 0);
}
