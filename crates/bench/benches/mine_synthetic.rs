//! Criterion counterpart of Table 1: mining time on synthetic
//! workloads, sweeping graph size and log size. The measured claim is
//! the paper's scaling shape — linear in the number of executions,
//! modest growth in the number of vertices. (The `table1` binary prints
//! the paper-style table; this bench gives statistically robust
//! per-configuration timings.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use procmine_bench::synthetic_workload;
use procmine_core::{mine_general_dag, MinerOptions};

fn bench_mine(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_general_dag");
    for &(n, edges) in &[(10usize, 24usize), (25, 224), (50, 1058), (100, 4569)] {
        for &m in &[100usize, 1000] {
            let (_, log) = synthetic_workload(n, edges, m, 9000 + n as u64);
            group.throughput(Throughput::Elements(m as u64));
            group.bench_with_input(BenchmarkId::new(format!("n{n}"), m), &log, |b, log| {
                b.iter(|| mine_general_dag(log, &MinerOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_scaling_in_m(c: &mut Criterion) {
    // Fixed 25-vertex graph, log size sweep — the per-execution cost
    // should stay flat (linear total).
    let mut group = c.benchmark_group("scaling_in_m_n25");
    group.sample_size(10);
    for &m in &[250usize, 500, 1000, 2000, 4000] {
        let (_, log) = synthetic_workload(25, 224, m, 9100);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &log, |b, log| {
            b.iter(|| mine_general_dag(log, &MinerOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mine, bench_scaling_in_m);
criterion_main!(benches);
