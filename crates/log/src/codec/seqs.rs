//! Sequence format: one execution per line, whitespace-separated names.
//!
//! ```text
//! # optional comment
//! A B C E
//! A C D E
//! ```
//!
//! This is the paper's compact execution notation (`ABCE`), generalized
//! to multi-character activity names. Interval and output information is
//! not representable — executions are read back as instantaneous.

use super::{ByteLines, CodecStats, IngestReport, RecoveryPolicy};
use crate::{LogError, WorkflowLog};
use std::io::{BufRead, Write};

/// Reads a sequence-format log.
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_with_stats(reader, &mut CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, activity names parsed,
/// and executions assembled accumulate into `stats`.
pub fn read_log_with_stats<R: BufRead>(
    reader: R,
    stats: &mut CodecStats,
) -> Result<WorkflowLog, LogError> {
    read_log_with(
        reader,
        RecoveryPolicy::Strict,
        stats,
        &mut IngestReport::default(),
    )
}

/// [`read_log_with_stats`] with a [`RecoveryPolicy`]: bad lines abort
/// (`Strict`) or are counted and skipped. Note that truncation is mostly
/// *undetectable* in this format — any prefix of a line is itself a
/// valid sequence — so a cut-off tail silently drops activities; only an
/// unparsable unterminated tail (e.g. split multi-byte UTF-8) surfaces
/// as [`LogError::UnexpectedEof`].
pub fn read_log_with<R: BufRead>(
    reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut lines = ByteLines::new(reader);
    let mut log = WorkflowLog::new();
    let result = read_impl(&mut lines, policy, stats, report, &mut log);
    stats.bytes_read += lines.bytes();
    result?;
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

fn read_impl<R: BufRead>(
    lines: &mut ByteLines<R>,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
    log: &mut WorkflowLog,
) -> Result<(), LogError> {
    while let Some((offset, lineno, had_newline)) = lines.read_next()? {
        let pushed = match std::str::from_utf8(lines.line()) {
            Ok(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let names: Vec<&str> = trimmed.split_whitespace().collect();
                let count = names.len() as u64;
                log.push_sequence(&names)
                    .map(|_| count)
                    .map_err(|e| match e {
                        LogError::EmptyExecution { .. } => LogError::Parse {
                            line: lineno,
                            message: "empty execution".to_string(),
                        },
                        other => other,
                    })
            }
            Err(_) => Err(LogError::Parse {
                line: lineno,
                message: "line is not valid UTF-8".to_string(),
            }),
        };
        match pushed {
            Ok(count) => {
                stats.events_parsed += count;
                report.records_parsed += 1;
            }
            Err(e) => {
                let err = if had_newline {
                    e
                } else {
                    LogError::UnexpectedEof {
                        byte_offset: offset,
                        message: format!("input ends mid-record ({e})"),
                    }
                };
                report.record_error(offset, lineno, err.to_string());
                if policy.is_strict() {
                    return Err(err);
                }
                report.records_skipped += 1;
                report.over_budget(policy)?;
            }
        }
    }
    Ok(())
}

/// Writes a log in sequence format (activity names in start-time order,
/// one execution per line). Interval overlap and outputs are lost.
pub fn write_log<W: Write>(log: &WorkflowLog, mut writer: W) -> Result<(), LogError> {
    for exec in log.executions() {
        let line = exec.display(log.activities());
        if line.split_whitespace().count() != exec.len() {
            return Err(LogError::Parse {
                line: 0,
                message:
                    "activity names containing whitespace cannot be written in sequence format"
                        .to_string(),
            });
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes() {
        let text = "# log\nA B C E\nA C D E\n\nA D B E\n";
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.display_sequences(),
            vec!["A B C E", "A C D E", "A D B E"]
        );
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
    }

    #[test]
    fn multi_character_names() {
        let log = read_log("Receive Approve Ship\nReceive Reject\n".as_bytes()).unwrap();
        assert_eq!(log.activities().len(), 4);
        assert!(log.activities().id("Approve").is_some());
    }

    #[test]
    fn whitespace_names_unwritable() {
        let mut log = WorkflowLog::new();
        log.push_sequence(&["bad name", "B"]).unwrap();
        assert!(write_log(&log, &mut Vec::new()).is_err());
    }
}
