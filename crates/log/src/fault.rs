//! Deterministic fault injection for robustness testing.
//!
//! Production logs arrive truncated, bit-rotted, interleaved with
//! garbage, or on flaky transports. [`FaultReader`] wraps any [`Read`]
//! and injects those failure modes deterministically from a seed, so
//! the corruption fuzz suite (`tests/corruption.rs`) and the
//! `ingest_robustness` bench binary exercise exactly reproducible
//! corpora. The faults modelled:
//!
//! * **truncation** — the stream ends early, possibly mid-record;
//! * **bit flips** — each byte delivered has a seeded chance of one
//!   flipped bit (storage rot, bad RAM);
//! * **garbage interleaving** — bursts of random bytes appear between
//!   reads (log multiplexing gone wrong, partial overwrites);
//! * **short reads** — `read` returns fewer bytes than asked, shaking
//!   out buffering assumptions;
//! * **mid-stream I/O errors** — a one-shot [`std::io::Error`] at a
//!   chosen offset (network drop, disk fault).
//!
//! The module is dependency-free: randomness comes from an internal
//! SplitMix64 generator so the log crate stays free of a `rand`
//! dependency.

use std::io::Read;

/// Which faults to inject and where. `Default` injects nothing — each
/// field opts into one failure mode.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injection PRNG; equal seeds replay equal faults.
    pub seed: u64,
    /// End the stream (clean EOF) after this many delivered bytes.
    pub truncate_at: Option<u64>,
    /// Per-byte probability of flipping one random bit, in `[0, 1]`.
    pub bit_flip_rate: f64,
    /// Per-read probability of injecting a burst of 1–16 random bytes
    /// instead of real data, in `[0, 1]`.
    pub garbage_rate: f64,
    /// Cap on bytes returned per `read` call (short reads). `None`
    /// leaves read sizes alone.
    pub max_read: Option<usize>,
    /// Return a one-shot `io::Error` once this many bytes were
    /// delivered; subsequent reads resume normally.
    pub io_error_at: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            truncate_at: None,
            bit_flip_rate: 0.0,
            garbage_rate: 0.0,
            max_read: None,
            io_error_at: None,
        }
    }
}

impl FaultConfig {
    /// A config that only truncates the stream after `at` bytes.
    pub fn truncated(at: u64) -> Self {
        FaultConfig {
            truncate_at: Some(at),
            ..FaultConfig::default()
        }
    }

    /// A config that only flips bits at `rate`, seeded.
    pub fn bit_flips(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flip_rate: rate,
            ..FaultConfig::default()
        }
    }
}

/// SplitMix64 — small, fast, and good enough for fault placement.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A [`Read`] adapter that injects the faults described by a
/// [`FaultConfig`] into the wrapped stream. See the module docs for the
/// fault taxonomy. Wrap in a [`std::io::BufReader`] to feed the codecs.
#[derive(Debug)]
pub struct FaultReader<R> {
    inner: R,
    cfg: FaultConfig,
    rng: SplitMix64,
    /// Bytes delivered to the consumer so far (including garbage).
    delivered: u64,
    io_error_fired: bool,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: R, cfg: FaultConfig) -> Self {
        let rng = SplitMix64(cfg.seed ^ 0xa076_1d64_78bd_642f);
        FaultReader {
            inner,
            cfg,
            rng,
            delivered: 0,
            io_error_fired: false,
        }
    }

    /// Bytes delivered to the consumer so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // Truncation: clean EOF once the budget is spent.
        let remaining = match self.cfg.truncate_at {
            Some(limit) if self.delivered >= limit => return Ok(0),
            Some(limit) => (limit - self.delivered) as usize,
            None => usize::MAX,
        };
        // One-shot mid-stream I/O error.
        if let Some(at) = self.cfg.io_error_at {
            if !self.io_error_fired && self.delivered >= at {
                self.io_error_fired = true;
                return Err(std::io::Error::other(format!(
                    "injected I/O fault at offset {}",
                    self.delivered
                )));
            }
        }
        let cap = buf
            .len()
            .min(remaining)
            .min(self.cfg.max_read.unwrap_or(usize::MAX))
            .max(1);
        // Garbage interleaving: a burst of random bytes instead of data.
        if self.cfg.garbage_rate > 0.0 && self.rng.next_f64() < self.cfg.garbage_rate {
            let burst = 1 + (self.rng.next_u64() as usize) % 16.min(cap);
            for slot in buf.iter_mut().take(burst) {
                *slot = (self.rng.next_u64() & 0xff) as u8;
            }
            self.delivered += burst as u64;
            return Ok(burst);
        }
        let n = self.inner.read(&mut buf[..cap])?;
        // Bit flips on the delivered bytes.
        if self.cfg.bit_flip_rate > 0.0 {
            for slot in buf.iter_mut().take(n) {
                if self.rng.next_f64() < self.cfg.bit_flip_rate {
                    *slot ^= 1u8 << (self.rng.next_u64() % 8);
                }
            }
        }
        self.delivered += n as u64;
        Ok(n)
    }
}

/// Runs `data` through a [`FaultReader`] to completion and returns the
/// corrupted bytes — for benchmarks and tests that want a corrupted
/// buffer up front rather than a streaming fault source. Mid-stream
/// I/O errors cannot be captured in a buffer and are ignored here.
pub fn corrupt_bytes(data: &[u8], cfg: &FaultConfig) -> Vec<u8> {
    let cfg = FaultConfig {
        io_error_at: None,
        ..cfg.clone()
    };
    let mut reader = FaultReader::new(data, cfg);
    let mut out = Vec::with_capacity(data.len());
    let mut buf = [0u8; 4096];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    out
}

/// Replaces `k` distinct whole lines of `data` (chosen by `seed`) with
/// garbage of the same length, preserving newlines — for tests that
/// need an exact corrupted-record count. Lines shorter than 4 bytes are
/// left alone (a 1–3 byte line may corrupt into a comment or blank).
/// Returns the corrupted buffer and the byte offsets of the corrupted
/// lines, in ascending order.
pub fn corrupt_whole_lines(data: &[u8], k: usize, seed: u64) -> (Vec<u8>, Vec<u64>) {
    let mut out = data.to_vec();
    // Collect (offset, len) of corruptible lines.
    let mut lines: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            if i - start >= 4 {
                lines.push((start, i - start));
            }
            start = i + 1;
        }
    }
    let mut rng = SplitMix64(seed ^ 0x2545_f491_4f6c_dd1d);
    let mut chosen: Vec<usize> = Vec::new();
    while chosen.len() < k && chosen.len() < lines.len() {
        let idx = (rng.next_u64() as usize) % lines.len();
        if !chosen.contains(&idx) {
            chosen.push(idx);
        }
    }
    let mut offsets: Vec<u64> = Vec::with_capacity(chosen.len());
    for idx in &chosen {
        let (off, len) = lines[*idx];
        offsets.push(off as u64);
        for slot in &mut out[off..off + len] {
            // Printable garbage that parses in no *structured* codec:
            // '|' is not a field separator, digit, or XML/JSON
            // structural byte. (seqs accepts any token as an activity
            // name, so whole-line corruption is undetectable there.)
            *slot = b'|';
        }
    }
    offsets.sort_unstable();
    (out, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &[u8] = b"p1,A,START,0\np1,A,END,1\np2,B,START,0\np2,B,END,3\n";

    #[test]
    fn no_faults_is_identity() {
        let out = corrupt_bytes(DATA, &FaultConfig::default());
        assert_eq!(out, DATA);
    }

    #[test]
    fn truncation_cuts_at_offset() {
        let out = corrupt_bytes(DATA, &FaultConfig::truncated(17));
        assert_eq!(out, &DATA[..17]);
    }

    #[test]
    fn same_seed_same_corruption() {
        let cfg = FaultConfig::bit_flips(0.1, 7);
        assert_eq!(corrupt_bytes(DATA, &cfg), corrupt_bytes(DATA, &cfg));
        let other = FaultConfig::bit_flips(0.1, 8);
        assert_ne!(corrupt_bytes(DATA, &cfg), corrupt_bytes(DATA, &other));
    }

    #[test]
    fn bit_flip_rate_one_changes_every_byte() {
        let out = corrupt_bytes(DATA, &FaultConfig::bit_flips(1.0, 3));
        assert_eq!(out.len(), DATA.len());
        assert!(out.iter().zip(DATA).all(|(a, b)| a != b));
    }

    #[test]
    fn short_reads_deliver_everything() {
        let cfg = FaultConfig {
            max_read: Some(3),
            ..FaultConfig::default()
        };
        let mut reader = FaultReader::new(DATA, cfg);
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 3);
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, DATA);
    }

    #[test]
    fn io_error_fires_once_at_offset() {
        let cfg = FaultConfig {
            io_error_at: Some(13),
            max_read: Some(13),
            ..FaultConfig::default()
        };
        let mut reader = FaultReader::new(DATA, cfg);
        let mut buf = [0u8; 64];
        assert_eq!(reader.read(&mut buf).unwrap(), 13);
        assert!(reader.read(&mut buf).is_err(), "one-shot error at 13");
        assert!(reader.read(&mut buf).unwrap() > 0, "stream resumes");
    }

    #[test]
    fn garbage_rate_one_never_reads_inner() {
        let cfg = FaultConfig {
            garbage_rate: 1.0,
            truncate_at: Some(64),
            seed: 5,
            ..FaultConfig::default()
        };
        let mut reader = FaultReader::new(DATA, cfg);
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out.len(), 64, "truncation caps garbage volume");
    }

    #[test]
    fn corrupt_whole_lines_reports_offsets() {
        let (out, offsets) = corrupt_whole_lines(DATA, 2, 42);
        assert_eq!(offsets.len(), 2);
        assert_eq!(out.len(), DATA.len());
        for &off in &offsets {
            assert_eq!(out[off as usize], b'|');
        }
        // Newlines preserved.
        assert_eq!(
            out.iter().filter(|&&b| b == b'\n').count(),
            DATA.iter().filter(|&&b| b == b'\n').count()
        );
    }
}
