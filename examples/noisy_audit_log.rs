//! Noise-tolerant mining (§6): recovering a process from a corrupted
//! audit trail using the derived threshold `T`.
//!
//! Reproduces the Example 9 scenario: a strictly sequential process
//! whose log contains out-of-order records. Without thresholding a
//! single swapped pair destroys the chain; with
//! `T = m·ln2/(ln2 − ln ε)` the chain survives.
//!
//! ```sh
//! cargo run --example noisy_audit_log
//! ```

use procmine::mine::metrics::compare_models;
use procmine::mine::noise::optimal_threshold;
use procmine::mine::{mine_general_dag, MinedModel, MinerOptions};
use procmine::sim::noise::{corrupt_log, NoiseConfig};
use procmine::sim::{walk, ProcessModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 6-step invoice-settlement pipeline — strictly sequential.
    let steps = ["Receive", "Validate", "Approve", "Book", "Pay", "Archive"];
    let mut builder = ProcessModel::builder("invoice_settlement");
    for s in steps {
        builder = builder.activity(s);
    }
    for w in steps.windows(2) {
        builder = builder.edge(w[0], w[1]);
    }
    let process = builder.build().expect("valid chain");

    // 1000 clean executions, then corrupt 5% with swapped neighbours —
    // the paper's out-of-order reporting error model.
    let m = 1000;
    let eps = 0.05;
    let mut rng = StdRng::seed_from_u64(99);
    let clean = walk::random_walk_log(&process, m, &mut rng).expect("log");
    let noisy = corrupt_log(&clean, &NoiseConfig::swap_only(eps), &mut rng);
    let corrupted = noisy
        .display_sequences()
        .iter()
        .zip(clean.display_sequences())
        .filter(|(a, b)| *a != b)
        .count();
    println!("log: {m} executions, {corrupted} corrupted by adjacent swaps (ε = {eps})");

    let reference = MinedModel::from_graph(process.graph_clone());

    // Naive mining: T = 1.
    let naive = mine_general_dag(&noisy, &MinerOptions::default()).expect("mine");
    let r = compare_models(&reference, &naive).expect("same activities");
    println!(
        "\nwithout threshold (T=1):  {} edges, precision {:.2}, recall {:.2}",
        naive.edge_count(),
        r.diff.precision(),
        r.diff.recall()
    );
    println!("  (each swapped pair appears in both orders and is wrongly declared independent)");

    // §6 threshold: no true dependency is lost any more (recall 1.0).
    // A few spurious edges can remain because the erroneous executions
    // are still in the log and the execution-completeness pass (step 5)
    // keeps the edges they need.
    let t = u32::try_from(optimal_threshold(m as u64, eps)).expect("threshold fits u32 at this m");
    let robust = mine_general_dag(&noisy, &MinerOptions::with_threshold(t)).expect("mine");
    let r = compare_models(&reference, &robust).expect("same activities");
    println!(
        "\nwith derived T = {t}:      {} edges, precision {:.2}, recall {:.2}",
        robust.edge_count(),
        r.diff.precision(),
        r.diff.recall()
    );

    // Going further than the paper: executions that are inconsistent
    // with the robust model (Definition 6) are exactly the corrupted
    // ones — drop them and re-mine for an exact recovery.
    let mut cleaned = procmine::log::WorkflowLog::with_activities(noisy.activities().clone());
    for exec in noisy.executions() {
        if procmine::mine::conformance::check_execution(&robust, exec).is_empty() {
            cleaned.push(exec.clone());
        }
    }
    println!(
        "\ncleaning pass: {} of {} executions consistent with the robust model",
        cleaned.len(),
        noisy.len()
    );
    let final_model = mine_general_dag(&cleaned, &MinerOptions::default()).expect("mine");
    let r = compare_models(&reference, &final_model).expect("same activities");
    println!(
        "re-mined on cleaned log:  {} edges, precision {:.2}, recall {:.2}, exact = {}",
        final_model.edge_count(),
        r.diff.precision(),
        r.diff.recall(),
        r.exact
    );
    for (u, v) in final_model.edges_named() {
        println!("  {u} -> {v}");
    }
}
