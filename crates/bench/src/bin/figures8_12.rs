//! Figures 8–12 — the mined process model graphs of the five Flowmark
//! processes, rendered as Graphviz DOT.
//!
//! The paper shows the mined graphs for `Upload_and_Notify` (Fig. 8),
//! `UWI_Pilot` (Fig. 9), `StressSleep` (Fig. 10), `Pend_Block` (Fig. 11)
//! and `Local_Swap` (Fig. 12). This binary mines each stand-in process'
//! generated log and emits the mined graph as DOT (render with
//! `dot -Tpng`), plus a diff against the generating model.

use procmine_bench::timed_mine;
use procmine_core::metrics::compare_models;
use procmine_core::MinedModel;
use procmine_sim::{presets, walk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let figures = [
        ("Figure 8", 0usize), // Upload_and_Notify
        ("Figure 10", 1),     // StressSleep
        ("Figure 11", 2),     // Pend_Block
        ("Figure 12", 3),     // Local_Swap
        ("Figure 9", 4),      // UWI_Pilot
    ];
    let models = presets::flowmark_models();
    let mut rng = StdRng::seed_from_u64(812);

    let mut ordered: Vec<(&str, usize)> = figures.to_vec();
    ordered.sort_by_key(|&(name, _)| name.trim_start_matches("Figure ").parse::<u32>().unwrap());

    for (figure, idx) in ordered {
        let (model, m) = &models[idx];
        let log = walk::random_walk_log(model, *m, &mut rng).expect("log generation");
        let (mined, _) = timed_mine(&log);
        let reference = MinedModel::from_graph(model.graph_clone());
        let recovery = compare_models(&reference, &mined).expect("same activities");
        println!(
            "// {figure}: process model graph for {} ({} executions; exact recovery: {})",
            model.name(),
            m,
            recovery.exact
        );
        if !recovery.exact {
            println!(
                "//   missing edges: {:?}, spurious edges: {:?}",
                recovery.diff.missing, recovery.diff.spurious
            );
        }
        print!("{}", mined.to_dot(model.name()));
        println!();
    }
}
