//! Failure injection: malformed inputs, corrupted event streams, and
//! boundary conditions must produce typed errors or diagnostics — never
//! panics or silently wrong models.

use procmine::log::codec::{flowmark, jsonl, seqs};
use procmine::log::validate::{assemble_executions_with, AssemblyPolicy, Diagnostic};
use procmine::log::{ActivityTable, EventRecord, LogError, WorkflowLog};
use procmine::mine::{mine_auto, mine_general_dag, mine_special_dag, MineError, MinerOptions};

#[test]
fn truncated_flowmark_lines_are_rejected_with_line_numbers() {
    let cases = [
        ("p1,A,START", 1usize),
        ("p1,A,START,0\np1,A,END,1\np2,B,WAT,0", 3),
        ("p1,A,START,0\np1,A,END,notatime", 2),
        ("p1,A,END,1,xx;2", 2_usize.saturating_sub(1)), // line 2... output vector bad
    ];
    for (text, _line) in cases {
        match flowmark::read_events(text.as_bytes()) {
            Err(LogError::Parse { line, message }) => {
                assert!(line >= 1, "line numbers are 1-based: {message}");
            }
            other => panic!("expected parse error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn clock_skew_is_reordered_not_fatal() {
    // END arrives before START in file order but timestamps are sane.
    let text = "p1,A,END,5\np1,A,START,1\n";
    let log = flowmark::read_log(text.as_bytes()).unwrap();
    assert_eq!(log.executions()[0].instances()[0].start, 1);
    assert_eq!(log.executions()[0].instances()[0].end, 5);
}

#[test]
fn end_before_start_in_time_is_unmatched() {
    // END at t=0, START at t=1: after time-sorting the END has no open
    // START, so strict assembly fails and lenient drops it.
    let records = vec![
        EventRecord::end("p1", "A", 0, None),
        EventRecord::start("p1", "A", 1),
    ];
    let mut table = ActivityTable::new();
    let err = WorkflowLog::from_events(&records).unwrap_err();
    assert!(matches!(err, LogError::UnmatchedEnd { .. }));

    let report = assemble_executions_with(&records, &mut table, AssemblyPolicy::Lenient).unwrap();
    assert_eq!(
        report.diagnostics.len(),
        2,
        "dangling END and dangling START"
    );
    assert!(report
        .diagnostics
        .iter()
        .any(|d| matches!(d, Diagnostic::DanglingEnd { .. })));
    assert!(report.executions.is_empty(), "nothing usable remains");
}

#[test]
fn duplicate_end_events_are_diagnosed() {
    let records = vec![
        EventRecord::start("p1", "A", 0),
        EventRecord::end("p1", "A", 1, None),
        EventRecord::end("p1", "A", 2, None), // duplicate END
        EventRecord::start("p1", "B", 3),
        EventRecord::end("p1", "B", 4, None),
    ];
    let mut table = ActivityTable::new();
    let report = assemble_executions_with(&records, &mut table, AssemblyPolicy::Lenient).unwrap();
    assert_eq!(report.executions.len(), 1);
    assert_eq!(report.executions[0].len(), 2);
    assert_eq!(report.diagnostics.len(), 1);
}

#[test]
fn empty_and_whitespace_logs() {
    assert_eq!(flowmark::read_log("".as_bytes()).unwrap().len(), 0);
    assert_eq!(
        seqs::read_log("\n\n# nothing\n".as_bytes()).unwrap().len(),
        0
    );
    assert_eq!(jsonl::read_log("\n\n".as_bytes()).unwrap().len(), 0);

    // Mining an empty log is a typed error for every algorithm.
    let empty = WorkflowLog::new();
    assert!(matches!(
        mine_auto(&empty, &MinerOptions::default()),
        Err(MineError::EmptyLog)
    ));
    assert!(matches!(
        mine_special_dag(&empty, &MinerOptions::default()),
        Err(MineError::EmptyLog)
    ));
}

#[test]
fn wrong_algorithm_for_log_shape_is_rejected() {
    let cyclic = WorkflowLog::from_strings(["ABAB"]).unwrap();
    assert!(matches!(
        mine_general_dag(&cyclic, &MinerOptions::default()),
        Err(MineError::RepeatsRequireCyclicMiner { .. })
    ));
    let partial = WorkflowLog::from_strings(["ABC", "AC"]).unwrap();
    assert!(matches!(
        mine_special_dag(&partial, &MinerOptions::default()),
        Err(MineError::SpecialPreconditionViolated { .. })
    ));
}

#[test]
fn single_activity_and_single_execution_edge_cases() {
    // One activity, one execution: a 1-node, 0-edge model.
    let log = WorkflowLog::from_strings(["A"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert_eq!(model.activity_count(), 1);
    assert_eq!(model.edge_count(), 0);

    // Two activities, always together.
    let log = WorkflowLog::from_strings(["AB"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert_eq!(model.edges_named(), vec![("A", "B")]);
}

#[test]
fn threshold_larger_than_log_yields_edgeless_model() {
    let log = WorkflowLog::from_strings(["ABC", "ABC"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::with_threshold(1000)).unwrap();
    assert_eq!(model.edge_count(), 0, "no pair reaches the threshold");
}

#[test]
fn overlapping_intervals_never_create_dependencies() {
    // A and B overlap in every execution; C strictly follows both.
    let records = vec![
        EventRecord::start("p", "A", 0),
        EventRecord::start("p", "B", 1),
        EventRecord::end("p", "A", 3, None),
        EventRecord::end("p", "B", 4, None),
        EventRecord::start("p", "C", 5),
        EventRecord::end("p", "C", 6, None),
    ];
    let log = WorkflowLog::from_events(&records).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert!(!model.has_edge("A", "B") && !model.has_edge("B", "A"));
    assert!(model.has_edge("A", "C") && model.has_edge("B", "C"));
}

#[test]
fn unicode_activity_names_survive_the_pipeline() {
    let log = WorkflowLog::from_sequences([
        ["Start", "Prüfen", "支払い", "End"],
        ["Start", "支払い", "Prüfen", "End"],
    ])
    .unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    assert!(model.has_edge("Start", "Prüfen"));
    assert!(!model.has_edge("Prüfen", "支払い"));

    let mut buf = Vec::new();
    flowmark::write_log(&log, &mut buf).unwrap();
    let back = flowmark::read_log(buf.as_slice()).unwrap();
    assert_eq!(back.display_sequences(), log.display_sequences());
}
