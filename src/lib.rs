//! # procmine — Mining Process Models from Workflow Logs
//!
//! A Rust implementation of the process-mining system of **Agrawal,
//! Gunopulos and Leymann, "Mining Process Models from Workflow Logs"
//! (EDBT 1998)**: given a log of past, unstructured executions of a
//! business process, synthesize a *conformal* directed-graph model of the
//! process — one that preserves every dependency observed in the log,
//! introduces no spurious dependency, and admits every logged execution.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `procmine-graph` | directed-graph substrate (SCC, topo sort, transitive reduction, DOT) |
//! | [`log`] | `procmine-log` | event records, executions, workflow logs, codecs |
//! | [`sim`] | `procmine-sim` | process models, execution engine, synthetic-log generator, noise |
//! | [`mine`] | `procmine-core` | Algorithms 1–3, noise thresholding, conformance checking |
//! | [`classify`] | `procmine-classify` | decision-tree learning of Boolean edge conditions |
//! | [`bridge`] | (this crate) | mined model + learned conditions → executable process; behavioural fitness |
//!
//! # Quickstart
//!
//! ```
//! use procmine::log::WorkflowLog;
//! use procmine::mine::{mine_general_dag, MinerOptions};
//!
//! // Example 6 from the paper: three executions of a five-activity
//! // process, every activity present in every execution.
//! let log = WorkflowLog::from_sequences([
//!     ["A", "B", "C", "D", "E"],
//!     ["A", "C", "D", "B", "E"],
//!     ["A", "C", "B", "D", "E"],
//! ]).unwrap();
//!
//! let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
//!
//! // The paper's Figure 3 result: the chain A→C→D→E with B parallel
//! // between A and E.
//! assert!(mined.has_edge("A", "C") && mined.has_edge("C", "D"));
//! assert!(mined.has_edge("A", "B") && mined.has_edge("B", "E"));
//! assert!(mined.has_edge("D", "E"));
//! assert!(!mined.has_edge("A", "E"), "transitively reduced");
//! ```

pub mod bridge;

pub use procmine_classify as classify;
pub use procmine_core as mine;
pub use procmine_graph as graph;
pub use procmine_log as log;
pub use procmine_sim as sim;
