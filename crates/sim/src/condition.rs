//! Boolean edge conditions over activity output vectors.
//!
//! Each edge `(u, v)` of a process model carries a Boolean function
//! `f((u,v)) : N^k → {0, 1}` evaluated on the output `o(u)` of the
//! source activity (Definition 1 and the §7 simplifying assumption).
//! This module provides a small expression AST covering the forms the
//! paper illustrates, e.g. `f(C,D) = (o(C)[1] > 0) ∧ (o(C)[2] < o(C)[1])`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators for condition atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        })
    }
}

/// A Boolean condition over an output vector `o ∈ Z^k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Always true (the default edge condition).
    True,
    /// Always false.
    False,
    /// `o[index] op value`.
    Cmp {
        /// Output-vector component (0-based).
        index: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: i64,
    },
    /// `o[left] op o[right]` — comparing two components, as in the
    /// paper's `o(C)[2] < o(C)[1]` example.
    CmpVar {
        /// Left component.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right component.
        right: usize,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Evaluates the condition on an output vector. Components beyond
    /// `output.len()` read as 0 (a missing output is the null vector of
    /// Definition 2).
    pub fn eval(&self, output: &[i64]) -> bool {
        let get = |i: usize| output.get(i).copied().unwrap_or(0);
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Cmp { index, op, value } => op.apply(get(*index), *value),
            Condition::CmpVar { left, op, right } => op.apply(get(*left), get(*right)),
            Condition::And(a, b) => a.eval(output) && b.eval(output),
            Condition::Or(a, b) => a.eval(output) || b.eval(output),
            Condition::Not(a) => !a.eval(output),
        }
    }

    /// The smallest output arity that the condition references (0 for
    /// constants).
    pub fn min_arity(&self) -> usize {
        match self {
            Condition::True | Condition::False => 0,
            Condition::Cmp { index, .. } => index + 1,
            Condition::CmpVar { left, right, .. } => left.max(right) + 1,
            Condition::And(a, b) | Condition::Or(a, b) => a.min_arity().max(b.min_arity()),
            Condition::Not(a) => a.min_arity(),
        }
    }

    /// Convenience: `o[index] op value`.
    pub fn cmp(index: usize, op: CmpOp, value: i64) -> Self {
        Condition::Cmp { index, op, value }
    }

    /// Convenience: conjunction.
    pub fn and(self, other: Condition) -> Self {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// Convenience: disjunction.
    pub fn or(self, other: Condition) -> Self {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Condition::Not(Box::new(self))
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::Cmp { index, op, value } => write!(f, "o[{index}] {op} {value}"),
            Condition::CmpVar { left, op, right } => write!(f, "o[{left}] {op} o[{right}]"),
            Condition::And(a, b) => write!(f, "({a} && {b})"),
            Condition::Or(a, b) => write!(f, "({a} || {b})"),
            Condition::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_condition() {
        // f(C,D) = (o(C)[0] > 0) && (o(C)[1] < o(C)[0]) (0-based).
        let f = Condition::cmp(0, CmpOp::Gt, 0).and(Condition::CmpVar {
            left: 1,
            op: CmpOp::Lt,
            right: 0,
        });
        assert!(f.eval(&[5, 3]));
        assert!(!f.eval(&[0, -1]), "o[0] > 0 fails");
        assert!(!f.eval(&[5, 7]), "o[1] < o[0] fails");
        assert_eq!(f.min_arity(), 2);
    }

    #[test]
    fn missing_components_read_zero() {
        let f = Condition::cmp(3, CmpOp::Eq, 0);
        assert!(f.eval(&[]));
        assert!(f.eval(&[1, 2]));
        let g = Condition::cmp(3, CmpOp::Gt, 0);
        assert!(!g.eval(&[]));
    }

    #[test]
    fn boolean_combinators() {
        let t = Condition::True;
        let f = Condition::False;
        assert!(t.clone().or(f.clone()).eval(&[]));
        assert!(!t.clone().and(f.clone()).eval(&[]));
        assert!(f.not().eval(&[]));
    }

    #[test]
    fn all_operators() {
        assert!(CmpOp::Lt.apply(1, 2) && !CmpOp::Lt.apply(2, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Gt.apply(3, 2) && !CmpOp::Gt.apply(2, 2));
        assert!(CmpOp::Ge.apply(2, 2));
        assert!(CmpOp::Eq.apply(2, 2) && !CmpOp::Eq.apply(1, 2));
        assert!(CmpOp::Ne.apply(1, 2));
    }

    #[test]
    fn display_renders_readably() {
        let f = Condition::cmp(0, CmpOp::Gt, 10).and(Condition::cmp(1, CmpOp::Le, 5).not());
        assert_eq!(f.to_string(), "(o[0] > 10 && !(o[1] <= 5))");
    }
}
