//! Error type for log construction, parsing and validation.

use std::fmt;

/// Errors produced while building, parsing or validating workflow logs.
#[derive(Debug)]
pub enum LogError {
    /// An execution contained no activity instances.
    EmptyExecution {
        /// The execution (case) name.
        execution: String,
    },
    /// An activity instance ended before it started.
    NegativeInterval {
        /// The execution name.
        execution: String,
        /// Dense index of the offending activity.
        activity: usize,
        /// Recorded start time.
        start: u64,
        /// Recorded end time.
        end: u64,
    },
    /// An END event arrived for an activity with no open START.
    UnmatchedEnd {
        /// The execution name.
        execution: String,
        /// The activity name.
        activity: String,
        /// Timestamp of the END event.
        time: u64,
    },
    /// A START event was never closed by an END in the same execution.
    UnmatchedStart {
        /// The execution name.
        execution: String,
        /// The activity name.
        activity: String,
        /// Timestamp of the START event.
        time: u64,
    },
    /// A line of a text log could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The input ended in the middle of a record — a truncated file or
    /// stream. Distinct from [`LogError::Parse`] so callers can tell
    /// "the tail was cut off" from "this line is garbage".
    UnexpectedEof {
        /// Byte offset at which the truncated record starts.
        byte_offset: u64,
        /// Description of what was being parsed when input ran out.
        message: String,
    },
    /// A case id reappeared after its case was already closed — under
    /// the contiguous-cases assumption of the streaming reader this
    /// means the log is interleaved and the stream would silently split
    /// one execution into several, corrupting ordering counts. Route
    /// such logs through the interleaved assembler
    /// (`stream::CaseAssembler`) instead.
    ReopenedCase {
        /// The case (process-execution) name that reappeared.
        execution: String,
        /// 1-based line number of the reopening record.
        line: usize,
    },
    /// A recovering read hit more decode errors than its
    /// `RecoveryPolicy::Skip { max_errors }` budget allows.
    TooManyErrors {
        /// Errors seen when the read gave up (`max_errors + 1`).
        errors: u64,
        /// The configured budget.
        max_errors: u64,
    },
    /// An XML syntax error in the XES codec, with source position.
    Xml {
        /// 1-based line number.
        line: usize,
        /// 1-based column (in characters).
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error while reading or writing a log.
    Io(std::io::Error),
    /// A JSON (de)serialization error in the JSON-lines codec.
    Json(serde_json::Error),
    /// The log is empty (no executions) where at least one is required.
    EmptyLog,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::EmptyExecution { execution } => {
                write!(f, "execution `{execution}` contains no activities")
            }
            LogError::NegativeInterval { execution, activity, start, end } => write!(
                f,
                "execution `{execution}`: activity #{activity} ends at {end} before it starts at {start}"
            ),
            LogError::UnmatchedEnd { execution, activity, time } => write!(
                f,
                "execution `{execution}`: END for `{activity}` at t={time} without a matching START"
            ),
            LogError::UnmatchedStart { execution, activity, time } => write!(
                f,
                "execution `{execution}`: START for `{activity}` at t={time} never followed by an END"
            ),
            LogError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            LogError::UnexpectedEof {
                byte_offset,
                message,
            } => write!(
                f,
                "unexpected end of input at byte {byte_offset}: {message}"
            ),
            LogError::ReopenedCase { execution, line } => write!(
                f,
                "case `{execution}` reappears at line {line} after being closed \
                 (interleaved log — use the interleaved case assembler)"
            ),
            LogError::TooManyErrors { errors, max_errors } => write!(
                f,
                "recovery gave up after {errors} decode errors (budget: {max_errors})"
            ),
            LogError::Xml {
                line,
                column,
                message,
            } => write!(f, "XML error at line {line}, column {column}: {message}"),
            LogError::Io(e) => write!(f, "I/O error: {e}"),
            LogError::Json(e) => write!(f, "JSON error: {e}"),
            LogError::EmptyLog => write!(f, "log contains no executions"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<serde_json::Error> for LogError {
    fn from(e: serde_json::Error) -> Self {
        LogError::Json(e)
    }
}
