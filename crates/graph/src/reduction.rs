//! Transitive reduction of directed acyclic graphs.
//!
//! The paper's Appendix A (Algorithm 4, "TR") computes the unique
//! transitive reduction of a DAG by visiting vertices in reverse
//! topological order and maintaining, per vertex, the bitset of its
//! descendants:
//!
//! 1. find a topological ordering;
//! 2. for each vertex `v` in reverse topological order:
//!    a. `desc(v) = ⋃ desc(s)` over the successors `s` of `v`;
//!    b. drop every successor of `v` that is already in `desc(v)`
//!    (Lemma 7: an edge is in the reduction iff there is no *other*
//!    path between its endpoints);
//!    c. add the surviving successors to `desc(v)`.
//!
//! This runs in O(|V||E|) time — with bitsets, O(|E|·|V|/64) words.
//! [`transitive_reduction_naive`] is the per-edge-DFS reference used to
//! cross-check it in tests and as the baseline of ablation A1.

use crate::arena::Arena;
use crate::budget::Budget;
use crate::topo::topological_sort;
use crate::{words, AdjMatrix, BitSet, DiGraph, GraphError, NodeId};
use std::collections::VecDeque;

/// Computes the transitive reduction of the DAG `g` (Appendix A,
/// Algorithm 4). Payloads are preserved. Returns
/// [`GraphError::CycleDetected`] if `g` is not acyclic — a DAG has a
/// unique reduction, a cyclic graph does not.
pub fn transitive_reduction_dag<N: Clone>(g: &DiGraph<N>) -> Result<DiGraph<N>, GraphError> {
    let order = topological_sort(g)?;
    let n = g.node_count();
    let mut desc: Vec<BitSet> = vec![BitSet::new(n); n];
    let mut reduced = g.map(|_, p| p.clone());

    for &v in order.iter().rev() {
        let vi = v.index();
        // (a) union the descendants of all current successors.
        let mut dv = BitSet::new(n);
        for &s in g.successors(v) {
            dv.union_with(&desc[s.index()]);
        }
        // (b) an edge (v, s) is redundant iff s is reachable through a
        // different successor.
        for &s in g.successors(v) {
            if dv.contains(s.index()) {
                reduced.remove_edge(v, s);
            }
        }
        // (c) surviving successors are also descendants.
        for &s in reduced.successors(v) {
            dv.insert(s.index());
        }
        desc[vi] = dv;
    }
    Ok(reduced)
}

/// Transitive reduction of a DAG given as an [`AdjMatrix`]. Same
/// algorithm as [`transitive_reduction_dag`], operating on bitset rows
/// directly; used in the miners' inner loops.
pub fn transitive_reduction_matrix(m: &AdjMatrix) -> Result<AdjMatrix, GraphError> {
    transitive_reduction_matrix_budgeted(m, &Budget::unlimited())
}

/// [`transitive_reduction_matrix`] under a wall-clock [`Budget`]: the
/// budget is re-checked once per vertex of the reverse-topological
/// descent — and periodically inside the topological-sort setup, which
/// is itself O(|E|) — so a run overstays its deadline by at most one
/// vertex's row work. Returns [`GraphError::BudgetExhausted`] when it
/// fires.
pub fn transitive_reduction_matrix_budgeted(
    m: &AdjMatrix,
    budget: &Budget,
) -> Result<AdjMatrix, GraphError> {
    let order = topo_order_matrix_budgeted(m, budget)?;
    let n = m.node_count();
    let wpr = m.words_per_row();
    // One arena block holds the whole descendant DP table (n rows) plus
    // the scratch row `dv` — a single allocation for the entire descent.
    let mut arena = Arena::new();
    let block = arena.alloc((n + 1) * wpr);
    let (desc, dv) = block.split_at_mut(n * wpr);
    let mut reduced = m.clone();

    for &vi in order.iter().rev() {
        budget.check()?;
        dv.fill(0);
        for s in m.successors(vi) {
            words::union(dv, &desc[s * wpr..(s + 1) * wpr]);
        }
        for s in m.successors(vi) {
            if words::contains(dv, s) {
                reduced.remove_edge(vi, s);
            }
        }
        for s in reduced.successors(vi) {
            words::insert(dv, s);
        }
        desc[vi * wpr..(vi + 1) * wpr].copy_from_slice(dv);
    }
    Ok(reduced)
}

/// [`transitive_reduction_matrix_budgeted`] fanned out over `threads`
/// scoped threads.
///
/// The serial algorithm's reverse-topological descent is a sequential
/// dependency chain, so the parallel strategy restructures the work
/// into two row-parallel passes with a barrier between them:
///
/// 1. **descendants** — each vertex's descendant bitset is computed by
///    an independent frontier BFS over the adjacency rows (no
///    cross-vertex data dependency, so rows split freely across
///    threads); every reached vertex contributes one word-parallel row
///    union, matching the serial DP's per-successor union cost;
/// 2. **redundancy** — per row `v`, an edge `(v, s)` is redundant iff
///    `s` lies in the union of the descendants of `v`'s successors
///    (Lemma 7 verbatim, now with fully-computed descendant sets).
///
/// A DAG's transitive reduction is unique, so the result equals the
/// serial algorithm's for any thread count. Cycle detection reuses the
/// budgeted Kahn pass up front; each worker re-checks `budget` once
/// per row. `threads <= 1` falls back to the serial algorithm.
pub fn transitive_reduction_matrix_parallel_budgeted(
    m: &AdjMatrix,
    threads: usize,
    budget: &Budget,
) -> Result<AdjMatrix, GraphError> {
    if threads <= 1 {
        return transitive_reduction_matrix_budgeted(m, budget);
    }
    // Cycle check (a cyclic graph has no unique reduction) and the
    // first budget gate.
    topo_order_matrix_budgeted(m, budget)?;
    let n = m.node_count();
    let wpr = m.words_per_row();
    let chunk = n.div_ceil(threads).max(1);

    // Pass 1: per-vertex descendant sets by independent BFS. Each
    // worker fills a flat word-row slab for its vertex range; the slabs
    // concatenate into one contiguous descendant matrix.
    let desc: Vec<u64> = {
        let parts: Vec<Result<Vec<u64>, GraphError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|lo| {
                    let hi = (lo + chunk).min(n);
                    scope.spawn(move || {
                        let mut rows = vec![0u64; (hi - lo) * wpr];
                        let mut arena = Arena::with_capacity(2 * wpr);
                        for v in lo..hi {
                            budget.check()?;
                            arena.reset();
                            let (mut frontier, mut next) = arena.alloc(2 * wpr).split_at_mut(wpr);
                            frontier.copy_from_slice(m.row_words(v));
                            let dv = &mut rows[(v - lo) * wpr..(v - lo + 1) * wpr];
                            // Wave-front reachability: each vertex joins
                            // the frontier at most once, paying one row
                            // union when it is expanded.
                            while words::any(frontier) {
                                words::union(dv, frontier);
                                next.fill(0);
                                for u in words::ones(frontier) {
                                    words::union(next, m.row_words(u));
                                }
                                words::difference(next, dv);
                                std::mem::swap(&mut frontier, &mut next);
                            }
                        }
                        Ok(rows)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut desc = Vec::with_capacity(n * wpr);
        for part in parts {
            desc.extend(part?);
        }
        desc
    };

    // Pass 2: row-parallel redundancy — drop (v, s) when another
    // successor of v already reaches s.
    let desc = &desc;
    let removals: Vec<Result<Vec<(usize, usize)>, GraphError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(n);
                scope.spawn(move || {
                    let mut redundant = Vec::new();
                    let mut dv = vec![0u64; wpr];
                    for v in lo..hi {
                        budget.check()?;
                        dv.fill(0);
                        for s in m.successors(v) {
                            words::union(&mut dv, &desc[s * wpr..(s + 1) * wpr]);
                        }
                        for s in m.successors(v) {
                            if words::contains(&dv, s) {
                                redundant.push((v, s));
                            }
                        }
                    }
                    Ok(redundant)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut reduced = m.clone();
    for part in removals {
        for (v, s) in part? {
            reduced.remove_edge(v, s);
        }
    }
    Ok(reduced)
}

/// Kahn's algorithm directly on an [`AdjMatrix`], under a [`Budget`]:
/// checked once per row while counting in-degrees and every 64 dequeued
/// vertices thereafter. Avoids materializing an intermediate
/// [`DiGraph`], whose O(|E|) construction would run ahead of the first
/// budget check. Ties break by vertex id, matching
/// [`topological_sort`].
fn topo_order_matrix_budgeted(m: &AdjMatrix, budget: &Budget) -> Result<Vec<usize>, GraphError> {
    let n = m.node_count();
    let mut in_deg = vec![0usize; n];
    for u in 0..n {
        budget.check()?;
        for v in m.successors(u) {
            in_deg[v] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut ticks = 0u32;
    while let Some(u) = queue.pop_front() {
        ticks = ticks.wrapping_add(1);
        if ticks & 0x3F == 0 {
            budget.check()?;
        }
        order.push(u);
        for v in m.successors(u) {
            in_deg[v] -= 1;
            if in_deg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let node = (0..n).find(|&i| in_deg[i] > 0).unwrap_or(0);
        Err(GraphError::CycleDetected { node })
    }
}

/// Naive O(|E|·(|V|+|E|)) transitive reduction: for each edge `(u, v)`,
/// run a DFS from `u` that avoids the direct edge and remove `(u, v)` if
/// `v` is still reachable. Reference implementation for tests and the
/// ablation benchmark.
pub fn transitive_reduction_naive<N: Clone>(g: &DiGraph<N>) -> Result<DiGraph<N>, GraphError> {
    topological_sort(g)?;
    let mut reduced = g.map(|_, p| p.clone());
    for (u, v) in g.edges() {
        if reachable_avoiding(g, u, v) {
            reduced.remove_edge(u, v);
        }
    }
    Ok(reduced)
}

/// DFS from `u` to `v` that may not take the direct edge `(u, v)` as its
/// first step.
fn reachable_avoiding<N>(g: &DiGraph<N>, u: NodeId, v: NodeId) -> bool {
    let mut seen = BitSet::new(g.node_count());
    let mut stack: Vec<NodeId> = g
        .successors(u)
        .iter()
        .copied()
        .filter(|&s| s != v)
        .collect();
    for s in &stack {
        seen.insert(s.index());
    }
    while let Some(w) = stack.pop() {
        if w == v {
            return true;
        }
        for &x in g.successors(w) {
            if seen.insert(x.index()) {
                if x == v {
                    return true;
                }
                stack.push(x);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::transitive_closure;

    #[test]
    fn removes_shortcut_edge() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let tr = transitive_reduction_dag(&g).unwrap();
        assert_eq!(tr.edge_count(), 2);
        assert!(!tr.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn preserves_closure() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 3),
                (2, 3),
                (1, 4),
                (3, 4),
                (0, 4),
                (4, 5),
                (0, 5),
            ],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        assert_eq!(transitive_closure(&g), transitive_closure(&tr));
        assert!(tr.edge_count() < g.edge_count());
    }

    #[test]
    fn paper_example_6() {
        // Log {ABCDE, ACDBE, ACBDE}: after two-cycle removal the
        // ordering graph has edges A→{B,C,D,E}, B→E, C→{D,E}, D→E
        // (B is independent of C and D). TR keeps A→B, A→C, B→E, C→D,
        // D→E — the process graph of Figure 3. A=0 B=1 C=2 D=3 E=4.
        let g = DiGraph::from_edges(
            vec![(); 5],
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        let edges: Vec<_> = tr.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 4), (2, 3), (3, 4)]);
    }

    #[test]
    fn matrix_and_digraph_agree() {
        let g = DiGraph::from_edges(
            vec![(); 7],
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (0, 3),
                (3, 4),
                (1, 4),
                (4, 5),
                (5, 6),
                (3, 6),
            ],
        );
        let tr_g = transitive_reduction_dag(&g).unwrap();
        let tr_m = transitive_reduction_matrix(&AdjMatrix::from_digraph(&g)).unwrap();
        assert_eq!(AdjMatrix::from_digraph(&tr_g), tr_m);
    }

    #[test]
    fn naive_and_fast_agree() {
        let g = DiGraph::from_edges(
            vec![(); 8],
            [
                (0, 1),
                (0, 2),
                (0, 5),
                (1, 3),
                (2, 3),
                (3, 4),
                (0, 4),
                (1, 4),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 7),
            ],
        );
        let fast = transitive_reduction_dag(&g).unwrap();
        let naive = transitive_reduction_naive(&g).unwrap();
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            naive.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_cycles() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 1), (1, 0)]);
        assert!(transitive_reduction_dag(&g).is_err());
        assert!(transitive_reduction_naive(&g).is_err());
    }

    #[test]
    fn reduction_of_reduction_is_identity() {
        let g = DiGraph::from_edges(
            vec![(); 5],
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (0, 4)],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        let tr2 = transitive_reduction_dag(&tr).unwrap();
        assert_eq!(
            tr.edges().collect::<Vec<_>>(),
            tr2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn budgeted_matches_plain_when_unlimited() {
        let g = DiGraph::from_edges(
            vec![(); 5],
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (0, 4)],
        );
        let m = AdjMatrix::from_digraph(&g);
        let plain = transitive_reduction_matrix(&m).unwrap();
        let budgeted = transitive_reduction_matrix_budgeted(&m, &Budget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn expired_budget_aborts_reduction() {
        use std::time::{Duration, Instant};
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let m = AdjMatrix::from_digraph(&g);
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            transitive_reduction_matrix_budgeted(&m, &budget),
            Err(GraphError::BudgetExhausted)
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(transitive_reduction_dag(&g).unwrap().edge_count(), 0);
        let g = DiGraph::from_edges(vec![(); 3], std::iter::empty());
        assert_eq!(transitive_reduction_dag(&g).unwrap().edge_count(), 0);
    }

    /// A layered DAG with shortcut edges: `layers` layers of `width`
    /// vertices, every vertex wired to the whole next layer plus a
    /// shortcut two layers ahead (all redundant).
    fn layered_dag(layers: usize, width: usize) -> AdjMatrix {
        let n = layers * width;
        let mut m = AdjMatrix::new(n);
        for l in 0..layers - 1 {
            for i in 0..width {
                for j in 0..width {
                    m.add_edge(l * width + i, (l + 1) * width + j);
                }
                if l + 2 < layers {
                    m.add_edge(l * width + i, (l + 2) * width + i);
                }
            }
        }
        m
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let m = layered_dag(6, 7);
        let serial = transitive_reduction_matrix(&m).unwrap();
        for threads in [0, 1, 2, 3, 8, 64] {
            let parallel =
                transitive_reduction_matrix_parallel_budgeted(&m, threads, &Budget::unlimited())
                    .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn parallel_rejects_cycles() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (2, 0)]);
        let m = AdjMatrix::from_digraph(&g);
        assert!(matches!(
            transitive_reduction_matrix_parallel_budgeted(&m, 4, &Budget::unlimited()),
            Err(GraphError::CycleDetected { .. })
        ));
    }

    #[test]
    fn parallel_expired_budget_aborts() {
        use std::time::{Duration, Instant};
        let m = layered_dag(4, 4);
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            transitive_reduction_matrix_parallel_budgeted(&m, 4, &budget),
            Err(GraphError::BudgetExhausted)
        );
    }

    #[test]
    fn parallel_handles_empty_and_tiny_graphs() {
        let empty = AdjMatrix::new(0);
        assert_eq!(
            transitive_reduction_matrix_parallel_budgeted(&empty, 4, &Budget::unlimited())
                .unwrap()
                .edge_count(),
            0
        );
        let mut two = AdjMatrix::new(2);
        two.add_edge(0, 1);
        let reduced =
            transitive_reduction_matrix_parallel_budgeted(&two, 8, &Budget::unlimited()).unwrap();
        assert!(reduced.has_edge(0, 1));
    }
}
