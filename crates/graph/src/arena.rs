//! A bump arena for bitset scratch rows.
//!
//! The mining stages allocate short-lived boolean-matrix scratch — the
//! per-execution induced subgraph and descendant DP rows of Appendix A's
//! transitive reduction, frontier rows in the parallel kernels — whose
//! sizes change with every execution. Allocating fresh `Vec<BitSet>`s
//! per execution puts `n` heap allocations on the hot path; the arena
//! replaces them with one growable `u64` region that is recycled with
//! [`reset`](Arena::reset) between executions (or stages) and only
//! grows monotonically to the session's high-water mark.
//!
//! The arena hands out zeroed `&mut [u64]` word blocks; callers treat
//! them as packed bitset rows via [`crate::words`]. Because an
//! allocation mutably borrows the arena, at most one live block exists
//! at a time — callers that need several rows allocate one block and
//! [`split_at_mut`](slice::split_at_mut) it, which is exactly the shape
//! the reduction kernels want (all rows of a DP table share a lifetime).

/// Cumulative allocation statistics for one [`Arena`], in bytes.
///
/// `bytes_allocated` counts every word handed out by
/// [`Arena::alloc`] over the arena's lifetime (8 bytes per word), not
/// the backing capacity; `high_water_bytes` is the largest in-use
/// footprint between two resets — i.e. the real memory the arena pins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total bytes handed out by `alloc` (cumulative across resets).
    pub bytes_allocated: u64,
    /// Number of `reset` calls.
    pub resets: u64,
    /// Largest number of bytes in use between two resets.
    pub high_water_bytes: u64,
}

impl ArenaStats {
    /// Folds another arena's statistics into this one (bytes and resets
    /// add; high-water takes the maximum). Used when parallel workers
    /// each own an arena and the join barrier aggregates telemetry.
    pub fn merge(&mut self, other: &ArenaStats) {
        self.bytes_allocated += other.bytes_allocated;
        self.resets += other.resets;
        self.high_water_bytes = self.high_water_bytes.max(other.high_water_bytes);
    }
}

/// A bump allocator over `u64` words; see the module docs.
#[derive(Debug, Default)]
pub struct Arena {
    words: Vec<u64>,
    used: usize,
    stats: ArenaStats,
}

impl Arena {
    /// An empty arena; the backing region grows on first use.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// An arena whose region already holds `words` words, avoiding
    /// growth during the first allocations.
    pub fn with_capacity(words: usize) -> Arena {
        Arena {
            words: vec![0; words],
            used: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Recycles the region: subsequent allocations reuse it from the
    /// start. Existing blocks must have been dropped (the borrow
    /// checker guarantees it — `alloc` borrows the arena mutably).
    pub fn reset(&mut self) {
        self.stats.resets += 1;
        self.stats.high_water_bytes = self
            .stats
            .high_water_bytes
            .max((self.used * WORD_BYTES) as u64);
        self.used = 0;
    }

    /// Allocates a zeroed block of `words` words from the region,
    /// growing it if needed. The block borrows the arena, so only one
    /// block is live at a time; split it for multiple rows.
    pub fn alloc(&mut self, words: usize) -> &mut [u64] {
        let start = self.used;
        let end = start + words;
        if end > self.words.len() {
            self.words.resize(end, 0);
        }
        self.used = end;
        self.stats.bytes_allocated += (words * WORD_BYTES) as u64;
        let block = &mut self.words[start..end];
        block.fill(0);
        block
    }

    /// Words currently handed out since the last reset.
    pub fn in_use(&self) -> usize {
        self.used
    }

    /// Cumulative allocation statistics (see [`ArenaStats`]). The
    /// high-water mark also reflects the current in-use footprint, so
    /// reading stats mid-stage does not under-report.
    pub fn stats(&self) -> ArenaStats {
        let mut s = self.stats;
        s.high_water_bytes = s.high_water_bytes.max((self.used * WORD_BYTES) as u64);
        s
    }
}

const WORD_BYTES: usize = std::mem::size_of::<u64>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_zeroed_blocks_and_tracks_stats() {
        let mut a = Arena::new();
        let block = a.alloc(4);
        assert_eq!(block, &[0u64; 4]);
        block[0] = u64::MAX;
        let more = a.alloc(2);
        assert_eq!(more, &[0u64; 2], "second block is fresh");
        assert_eq!(a.in_use(), 6);
        let s = a.stats();
        assert_eq!(s.bytes_allocated, 6 * 8);
        assert_eq!(s.resets, 0);
        assert_eq!(s.high_water_bytes, 6 * 8);
    }

    #[test]
    fn reset_recycles_and_zeroes_reused_memory() {
        let mut a = Arena::new();
        a.alloc(3).fill(u64::MAX);
        a.reset();
        assert_eq!(a.in_use(), 0);
        let block = a.alloc(3);
        assert_eq!(block, &[0u64; 3], "recycled memory is re-zeroed");
        let s = a.stats();
        assert_eq!(s.resets, 1);
        assert_eq!(s.bytes_allocated, 6 * 8, "bytes accumulate across resets");
        assert_eq!(
            s.high_water_bytes,
            3 * 8,
            "high-water is per-epoch, not cumulative"
        );
    }

    #[test]
    fn high_water_tracks_largest_epoch() {
        let mut a = Arena::new();
        a.alloc(2);
        a.reset();
        a.alloc(10);
        a.reset();
        a.alloc(1);
        assert_eq!(a.stats().high_water_bytes, 10 * 8);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut a = Arena::with_capacity(8);
        let block = a.alloc(8);
        assert_eq!(block.len(), 8);
        assert_eq!(a.stats().bytes_allocated, 8 * 8);
    }

    #[test]
    fn split_block_gives_independent_rows() {
        let mut a = Arena::new();
        let block = a.alloc(6);
        let (sub, desc) = block.split_at_mut(3);
        sub[0] = 1;
        desc[2] = 2;
        assert_eq!(sub, &[1, 0, 0]);
        assert_eq!(desc, &[0, 0, 2]);
    }

    #[test]
    fn stats_merge_adds_and_maxes() {
        let mut a = ArenaStats {
            bytes_allocated: 10,
            resets: 2,
            high_water_bytes: 100,
        };
        let b = ArenaStats {
            bytes_allocated: 5,
            resets: 1,
            high_water_bytes: 40,
        };
        a.merge(&b);
        assert_eq!(a.bytes_allocated, 15);
        assert_eq!(a.resets, 3);
        assert_eq!(a.high_water_bytes, 100);
    }
}
