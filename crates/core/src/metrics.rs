//! Recovery metrics: comparing a mined model against ground truth.
//!
//! Table 2 of the paper reports "edges present" vs. "edges found" and the
//! text describes programmatic edge-set comparison, plus the observation
//! that for partial logs the mined graph may be a *supergraph* or differ
//! by closure-preserving rewrites. This module aligns two models by
//! activity *name* (they may come from different activity tables) and
//! reports exact, closure-level, and precision/recall comparisons.

use crate::MinedModel;
use procmine_graph::diff::{self, EdgeDiff};
use procmine_graph::reach::transitive_closure;
use procmine_graph::DiGraph;

/// The outcome of comparing a mined model against a reference model.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Edge-level diff (in the reference's node numbering).
    pub diff: EdgeDiff,
    /// Edge sets identical.
    pub exact: bool,
    /// Same transitive closure — same dependency relation (Lemma 2).
    pub closure_equal: bool,
    /// Every reference edge is present in the mined graph.
    pub supergraph: bool,
}

/// Errors from model comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// The two models are not over the same activity-name set.
    ActivityMismatch {
        /// Names in the reference missing from the mined model.
        missing: Vec<String>,
        /// Names in the mined model missing from the reference.
        extra: Vec<String>,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::ActivityMismatch { missing, extra } => write!(
                f,
                "activity sets differ: missing from mined {missing:?}, extra in mined {extra:?}"
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Compares `mined` against `reference`, aligning activities by name.
pub fn compare_models(
    reference: &MinedModel,
    mined: &MinedModel,
) -> Result<Recovery, MetricsError> {
    // Check name sets match.
    let missing: Vec<String> = reference
        .graph()
        .nodes()
        .filter(|(_, n)| mined.node_of(n).is_none())
        .map(|(_, n)| n.clone())
        .collect();
    let extra: Vec<String> = mined
        .graph()
        .nodes()
        .filter(|(_, n)| reference.node_of(n).is_none())
        .map(|(_, n)| n.clone())
        .collect();
    if !missing.is_empty() || !extra.is_empty() {
        return Err(MetricsError::ActivityMismatch { missing, extra });
    }

    // Remap the mined graph into the reference's node numbering.
    let mut remapped: DiGraph<String> = DiGraph::with_capacity(reference.activity_count());
    for (_, name) in reference.graph().nodes() {
        remapped.add_node(name.clone());
    }
    // Infallible: the ActivityMismatch check above guarantees every
    // mined name exists in the reference.
    #[allow(clippy::expect_used)]
    for (u, v) in mined.graph().edges() {
        let ru = reference
            .node_of(mined.name_of(u))
            .expect("name checked above");
        let rv = reference
            .node_of(mined.name_of(v))
            .expect("name checked above");
        remapped.add_edge(ru, rv);
    }

    let diff = diff::compare_edges(reference.graph(), &remapped);
    Ok(Recovery {
        exact: diff.is_exact(),
        closure_equal: diff::same_closure(reference.graph(), &remapped),
        supergraph: diff::is_supergraph(reference.graph(), &remapped),
        diff,
    })
}

/// A dependency-level (transitive-closure) comparison, for the paper's
/// workflow-evaluation application: "comparing the synthesized process
/// graphs with purported graphs". Edge-level diffs over-report — two
/// graphs may differ in edges yet encode identical dependencies
/// (Lemma 2) — so this diff compares reachability instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyDiff {
    /// Dependencies (u must precede v) present in the mined model but
    /// not the reference.
    pub added: Vec<(String, String)>,
    /// Dependencies present in the reference but lost in the mined
    /// model.
    pub removed: Vec<(String, String)>,
}

impl DependencyDiff {
    /// `true` if both models encode exactly the same dependencies.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Compares the dependency relations (transitive closures) of two
/// models, aligned by activity name.
pub fn compare_dependencies(
    reference: &MinedModel,
    mined: &MinedModel,
) -> Result<DependencyDiff, MetricsError> {
    // Reuse the alignment logic by diffing the closures of the aligned
    // graphs compare_models builds.
    let recovery = compare_models(reference, mined)?;
    if recovery.closure_equal {
        return Ok(DependencyDiff {
            added: Vec::new(),
            removed: Vec::new(),
        });
    }
    let ref_closure = transitive_closure(reference.graph());
    // Align mined by name into the reference numbering, then close.
    let mut remapped: DiGraph<String> = DiGraph::with_capacity(reference.activity_count());
    for (_, name) in reference.graph().nodes() {
        remapped.add_node(name.clone());
    }
    // Infallible: compare_models above already errored on any
    // activity-name mismatch.
    #[allow(clippy::expect_used)]
    for (u, v) in mined.graph().edges() {
        let ru = reference.node_of(mined.name_of(u)).expect("aligned above");
        let rv = reference.node_of(mined.name_of(v)).expect("aligned above");
        remapped.add_edge(ru, rv);
    }
    let mined_closure = transitive_closure(&remapped);

    let mut added = Vec::new();
    let mut removed = Vec::new();
    let n = reference.activity_count();
    for u in 0..n {
        for v in 0..n {
            let in_ref = ref_closure.has_edge(u, v);
            let in_mined = mined_closure.has_edge(u, v);
            let name = |i: usize| {
                reference
                    .graph()
                    .node(procmine_graph::NodeId::new(i))
                    .clone()
            };
            if in_mined && !in_ref {
                added.push((name(u), name(v)));
            } else if in_ref && !in_mined {
                removed.push((name(u), name(v)));
            }
        }
    }
    Ok(DependencyDiff { added, removed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(names: &[&str], edges: &[(usize, usize)]) -> MinedModel {
        MinedModel::from_graph(DiGraph::from_edges(
            names.iter().map(|s| s.to_string()).collect(),
            edges.iter().copied(),
        ))
    }

    #[test]
    fn exact_recovery() {
        let reference = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mined = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let r = compare_models(&reference, &mined).unwrap();
        assert!(r.exact && r.closure_equal && r.supergraph);
        assert_eq!(r.diff.common, 2);
    }

    #[test]
    fn name_alignment_handles_different_orders() {
        // Same graph, activities interned in a different order.
        let reference = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mined = model(&["C", "A", "B"], &[(1, 2), (2, 0)]); // A→B, B→C
        let r = compare_models(&reference, &mined).unwrap();
        assert!(r.exact, "{:?}", r.diff);
    }

    #[test]
    fn closure_equal_but_not_exact() {
        let reference = model(&["A", "B", "C"], &[(0, 1), (1, 2), (0, 2)]);
        let mined = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let r = compare_models(&reference, &mined).unwrap();
        assert!(!r.exact && r.closure_equal && !r.supergraph);
    }

    #[test]
    fn supergraph_detected() {
        let reference = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let mined = model(&["A", "B", "C"], &[(0, 1), (1, 2), (0, 2)]);
        let r = compare_models(&reference, &mined).unwrap();
        assert!(r.supergraph && !r.exact);
    }

    #[test]
    fn dependency_diff_empty_for_closure_equal_models() {
        let with_shortcut = model(&["A", "B", "C"], &[(0, 1), (1, 2), (0, 2)]);
        let reduced = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        let d = compare_dependencies(&with_shortcut, &reduced).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn dependency_diff_reports_added_and_removed() {
        let reference = model(&["A", "B", "C"], &[(0, 1), (1, 2)]);
        // Mined lost B→C but invented C→A.
        let mined = model(&["A", "B", "C"], &[(0, 1), (2, 0)]);
        let d = compare_dependencies(&reference, &mined).unwrap();
        assert!(d.added.contains(&("C".to_string(), "A".to_string())));
        assert!(
            d.added.contains(&("C".to_string(), "B".to_string())),
            "via C→A→B"
        );
        assert!(d.removed.contains(&("B".to_string(), "C".to_string())));
        assert!(d.removed.contains(&("A".to_string(), "C".to_string())));
        assert!(!d.is_empty());
    }

    #[test]
    fn mismatched_activities_error() {
        let reference = model(&["A", "B"], &[(0, 1)]);
        let mined = model(&["A", "C"], &[(0, 1)]);
        let err = compare_models(&reference, &mined).unwrap_err();
        assert!(
            matches!(err, MetricsError::ActivityMismatch { ref missing, ref extra }
            if missing == &["B"] && extra == &["C"])
        );
    }
}
