//! Ablation A2 — what step 4 of Algorithm 2 (SCC removal) buys.
//!
//! With partial executions, cycles of followings arise between
//! activities that never co-occur in reversed order (Example 7's C, D,
//! E). Without the SCC step those spurious mutual dependencies survive
//! two-cycle removal and poison the graph. This ablation mines synthetic
//! partial logs with and without step 4 and compares edge precision and
//! conformance. The "without" variant is emulated by checking how many
//! intra-SCC edge pairs step 4 actually removes and what fraction of
//! logs contain such components. Run with `--release`.

use procmine_bench::{synthetic_workload, TextTable};
use procmine_core::conformance::check_conformance;
use procmine_core::follows::{FollowsAnalysis, OrderCounts};
use procmine_core::{mine_general_dag, MinerOptions};
use procmine_graph::{scc, AdjMatrix};

fn main() {
    println!("Ablation: strongly-connected-component removal (Algorithm 2, step 4)\n");
    let mut table = TextTable::new([
        "n",
        "m",
        "SCC components >1",
        "edges inside SCCs",
        "mined edges",
        "conformal",
    ]);

    for &(n, edges) in &[(10usize, 24usize), (25, 224), (50, 1058)] {
        for &m in &[100usize, 1000] {
            let (_, log) = synthetic_workload(n, edges, m, 3000 + n as u64);

            // Reconstruct the graph state after step 3 to measure what
            // step 4 removes.
            let counts = OrderCounts::from_log(&log);
            let mut g = AdjMatrix::new(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && counts.ordered(u, v) >= 1 {
                        g.add_edge(u, v);
                    }
                }
            }
            g.remove_two_cycles();
            let digraph = g.to_digraph(|_| ());
            let sccs = scc::tarjan_scc(&digraph);
            let nontrivial = sccs.nontrivial().count();
            let intra_edges: usize = sccs
                .nontrivial()
                .map(|comp| {
                    comp.iter()
                        .flat_map(|&u| comp.iter().map(move |&v| (u, v)))
                        .filter(|&(u, v)| u != v && g.has_edge(u.index(), v.index()))
                        .count()
                })
                .sum();

            let mined = mine_general_dag(&log, &MinerOptions::default()).expect("mine");
            let conformal = check_conformance(&mined, &log).is_conformal();
            table.row([
                n.to_string(),
                m.to_string(),
                nontrivial.to_string(),
                intra_edges.to_string(),
                mined.edge_count().to_string(),
                conformal.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    // The canonical small case: Example 7.
    let log = procmine_log::WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
    let f = FollowsAnalysis::analyze(&log);
    let (c, d, e) = (
        log.activities().id("C").unwrap().index(),
        log.activities().id("D").unwrap().index(),
        log.activities().id("E").unwrap().index(),
    );
    println!(
        "Example 7: follows(C,D)={} follows(D,E)={} follows(E,C)={} — a cycle of",
        f.follows(c, d),
        f.follows(d, e),
        f.follows(e, c)
    );
    println!("followings; step 4 declares C, D, E mutually independent:");
    println!(
        "  independent(C,D)={} independent(D,E)={} independent(C,E)={}",
        f.independent(c, d),
        f.independent(d, e),
        f.independent(c, e)
    );
}
