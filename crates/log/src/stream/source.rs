//! Pull-based Flowmark event source for streaming pipelines.
//!
//! [`FlowmarkSource`] reads one Flowmark record at a time with the same
//! [`RecoveryPolicy`] / [`IngestReport`] semantics as the batch codec:
//! under [`RecoveryPolicy::Strict`] the first bad line is fatal; under
//! a recovering policy bad lines are skipped and counted, a truncated
//! unterminated tail surfaces as
//! [`LogError::UnexpectedEof`](crate::LogError::UnexpectedEof), and a
//! [`RecoveryPolicy::Skip`] budget overrun ends the stream with
//! [`LogError::TooManyErrors`](crate::LogError::TooManyErrors). Unlike
//! [`ExecutionStream`](crate::codec::stream::ExecutionStream) it emits
//! raw *events*, leaving case assembly to a downstream
//! [`StreamSink`] — typically a
//! [`CaseAssembler`](super::CaseAssembler) behind some [`stages`](super::stages).

use super::{SourceLocation, StreamError, StreamSink};
use crate::codec::{flowmark, ByteLines, CodecStats, IngestReport, RecoveryPolicy};
use crate::{EventRecord, LogError};
use std::io::BufRead;

/// Streaming Flowmark reader yielding `(EventRecord, SourceLocation)`
/// pairs. After any `Err` from [`FlowmarkSource::next_event`] the
/// source is exhausted — fatal errors terminate the stream (they never
/// repeat, so a retry loop cannot spin).
pub struct FlowmarkSource<R: BufRead> {
    lines: ByteLines<R>,
    policy: RecoveryPolicy,
    stats: CodecStats,
    report: IngestReport,
    done: bool,
    /// Byte offset of the reader's first byte within the original
    /// source (nonzero when resuming from a checkpoint); added to every
    /// reported location so diagnostics stay absolute.
    base_offset: u64,
    /// Line number of the line *before* the reader's first line.
    base_line: usize,
}

impl<R: BufRead> FlowmarkSource<R> {
    /// Creates a source over `reader` with the given policy.
    pub fn new(reader: R, policy: RecoveryPolicy) -> Self {
        FlowmarkSource::with_origin(reader, policy, 0, 0)
    }

    /// Creates a source whose `reader` starts `byte_offset` bytes (and
    /// `line` full lines) into the original input — the resume
    /// constructor. All reported locations and
    /// [`FlowmarkSource::position`] are absolute in the original input.
    pub fn with_origin(reader: R, policy: RecoveryPolicy, byte_offset: u64, line: usize) -> Self {
        FlowmarkSource {
            lines: ByteLines::new(reader),
            policy,
            stats: CodecStats::default(),
            report: IngestReport::default(),
            done: false,
            base_offset: byte_offset,
            base_line: line,
        }
    }

    /// The absolute `(byte_offset, line)` position after the last
    /// consumed record — at a record boundary this is exactly the
    /// offset the next record starts at, which makes it safe to
    /// persist in a checkpoint and seek back to on resume.
    pub fn position(&self) -> (u64, usize) {
        (
            self.base_offset + self.lines.bytes(),
            self.base_line + self.lines.lineno(),
        )
    }

    /// Byte/event tallies so far (`executions_parsed` stays zero — the
    /// source does not assemble cases).
    pub fn stats(&self) -> CodecStats {
        CodecStats {
            bytes_read: self.lines.bytes(),
            ..self.stats
        }
    }

    /// Parse-side ingest accounting (records parsed/skipped, located
    /// errors). Merge with the downstream assembler's report for the
    /// complete picture.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Reads the next event. `Ok(None)` at end of input; any `Err`
    /// also ends the stream. Blank lines and `#` comments are skipped.
    pub fn next_event(&mut self) -> Result<Option<(EventRecord, SourceLocation)>, LogError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let (offset, lineno, had_newline) = match self.lines.read_next() {
                Ok(Some((offset, lineno, had_newline))) => (
                    self.base_offset + offset,
                    self.base_line + lineno,
                    had_newline,
                ),
                Ok(None) => {
                    self.done = true;
                    return Ok(None);
                }
                Err(e) => {
                    // Fatal I/O error: record it and terminate — a
                    // persistently failing reader must not produce an
                    // unbounded error stream.
                    self.report.record_error(
                        self.base_offset + self.lines.bytes(),
                        self.base_line + self.lines.lineno(),
                        e.to_string(),
                    );
                    self.done = true;
                    return Err(e);
                }
            };
            let parsed = match std::str::from_utf8(self.lines.line()) {
                Ok(text) => {
                    let trimmed = text.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    flowmark::parse_event_line(trimmed, lineno)
                }
                Err(_) => Err(LogError::Parse {
                    line: lineno,
                    message: "line is not valid UTF-8".to_string(),
                }),
            };
            match parsed {
                Ok(record) => {
                    self.stats.events_parsed += 1;
                    self.report.records_parsed += 1;
                    return Ok(Some((
                        record,
                        SourceLocation {
                            byte_offset: offset,
                            line: lineno,
                        },
                    )));
                }
                Err(e) => {
                    // A bad final line with no newline is a truncated tail.
                    let err = if had_newline {
                        e
                    } else {
                        LogError::UnexpectedEof {
                            byte_offset: offset,
                            message: format!("input ends mid-record ({e})"),
                        }
                    };
                    self.report.record_error(offset, lineno, err.to_string());
                    if self.policy.is_strict() {
                        self.done = true;
                        return Err(err);
                    }
                    self.report.records_skipped += 1;
                    if let Err(give_up) = self.report.over_budget(self.policy) {
                        self.done = true;
                        return Err(give_up);
                    }
                }
            }
        }
    }

    /// Drives the whole stream into `sink`, calling
    /// [`StreamSink::finish`] at end of input. On error the sink is
    /// *not* finished — partial state would masquerade as a clean read.
    pub fn pump<S: StreamSink>(&mut self, sink: &mut S) -> Result<(), StreamError> {
        while let Some((event, at)) = self.next_event()? {
            sink.on_event(event, at)?;
        }
        sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultReader};
    use std::io::BufReader;

    fn drain<R: BufRead>(source: &mut FlowmarkSource<R>) -> (Vec<EventRecord>, Option<LogError>) {
        let mut events = Vec::new();
        loop {
            match source.next_event() {
                Ok(Some((e, _))) => events.push(e),
                Ok(None) => return (events, None),
                Err(e) => return (events, Some(e)),
            }
        }
    }

    #[test]
    fn yields_events_with_locations() {
        let text = "# header\np1,A,START,0\n\np1,A,END,1\n";
        let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
        let (first, at) = source.next_event().unwrap().unwrap();
        assert_eq!(first.activity, "A");
        assert_eq!(at.line, 2);
        assert_eq!(at.byte_offset, "# header\n".len() as u64);
        let (_, at) = source.next_event().unwrap().unwrap();
        assert_eq!(at.line, 4);
        assert!(source.next_event().unwrap().is_none());
        assert_eq!(source.stats().events_parsed, 2);
        assert_eq!(source.stats().bytes_read, text.len() as u64);
    }

    #[test]
    fn strict_terminates_on_first_bad_line() {
        let text = "garbage\np1,A,START,0\n";
        let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Strict);
        let (events, err) = drain(&mut source);
        assert!(events.is_empty());
        assert!(matches!(err, Some(LogError::Parse { line: 1, .. })));
        assert!(source.next_event().unwrap().is_none(), "stream is done");
    }

    #[test]
    fn recovering_skips_and_counts_bad_lines() {
        let text = "p1,A,START,0\ngarbage\np1,A,END,1\n";
        let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::BestEffort);
        let (events, err) = drain(&mut source);
        assert_eq!(events.len(), 2);
        assert!(err.is_none());
        assert_eq!(source.report().records_skipped, 1);
        assert_eq!(source.report().errors_total, 1);
        assert_eq!(source.report().errors[0].line, 2);
    }

    #[test]
    fn skip_budget_overrun_terminates() {
        let text = "bad one\nbad two\np1,A,START,0\n";
        let mut source =
            FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::Skip { max_errors: 1 });
        let (events, err) = drain(&mut source);
        assert!(events.is_empty());
        assert!(matches!(err, Some(LogError::TooManyErrors { .. })));
        assert!(source.next_event().unwrap().is_none(), "stream is done");
    }

    #[test]
    fn io_error_terminates_even_under_best_effort() {
        let text = "p1,A,START,0\np1,A,END,1\n";
        // max_read chunks delivery so the one-shot fault fires after
        // the first full line instead of after one slurping read.
        let reader = BufReader::new(FaultReader::new(
            text.as_bytes(),
            FaultConfig {
                io_error_at: Some(13),
                max_read: Some(13),
                ..FaultConfig::default()
            },
        ));
        let mut source = FlowmarkSource::new(reader, RecoveryPolicy::BestEffort);
        let (events, err) = drain(&mut source);
        assert_eq!(events.len(), 1, "first record parses before the fault");
        assert!(matches!(err, Some(LogError::Io(_))));
        assert!(
            source.next_event().unwrap().is_none(),
            "one-shot fault resumes the reader, but the source stays done"
        );
        assert_eq!(source.report().errors.len(), 1);
    }

    #[test]
    fn truncated_tail_is_unexpected_eof() {
        let text = "p1,A,START,0\np1,A,EN";
        let mut source = FlowmarkSource::new(text.as_bytes(), RecoveryPolicy::BestEffort);
        let (events, err) = drain(&mut source);
        assert_eq!(events.len(), 1);
        assert!(err.is_none(), "recovering read salvages past the tail");
        assert!(source.report().errors[0].message.contains("mid-record"));
    }
}
