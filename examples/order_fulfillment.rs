//! End-to-end pipeline on a realistic business process: simulate an
//! order-fulfillment workflow with output-dependent routing, mine its
//! graph back from the logs, verify conformance, and learn the Boolean
//! edge conditions (§7).
//!
//! ```sh
//! cargo run --example order_fulfillment
//! ```

use procmine::classify::{learn_edge_conditions, TreeConfig};
use procmine::mine::metrics::compare_models;
use procmine::mine::{conformance, mine_general_dag, MinedModel, MinerOptions};
use procmine::sim::{engine, presets};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The "real" process, normally unknown to the miner: orders above
    //    500 need manager approval, risk above 70 triggers a fraud
    //    check, everything joins at shipping.
    let process = presets::order_fulfillment();
    println!(
        "process `{}`: {} activities, {} edges",
        process.name(),
        process.activity_count(),
        process.edge_count()
    );

    // 2. Simulate 500 cases with the condition-driven engine. Each log
    //    record carries the activity's output vector, as in Definition 2.
    let mut rng = StdRng::seed_from_u64(20260705);
    let log = engine::generate_log(&process, 500, &mut rng).expect("simulation");
    println!("simulated {} executions; samples:", log.len());
    for seq in log.display_sequences().iter().take(4) {
        println!("  {seq}");
    }

    // 3. Mine the control-flow graph back (Algorithm 2 — executions skip
    //    activities, so this is the general acyclic setting).
    let mined = mine_general_dag(&log, &MinerOptions::default()).expect("mining");
    println!("\nmined graph ({} edges):", mined.edge_count());
    for (u, v) in mined.edges_named() {
        println!("  {u} -> {v}");
    }

    // 4. Score against the generating model and the log.
    let reference = MinedModel::from_graph(process.graph_clone());
    let recovery = compare_models(&reference, &mined).expect("same activities");
    println!(
        "\nrecovery: exact={} precision={:.3} recall={:.3}",
        recovery.exact,
        recovery.diff.precision(),
        recovery.diff.recall()
    );
    let report = conformance::check_conformance(&mined, &log);
    println!("conformal with the log: {}", report.is_conformal());

    // 5. Learn the edge conditions from the outputs (§7): a decision
    //    tree per edge, reported as readable rules.
    println!("\nlearned edge conditions:");
    let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());
    for c in &learned {
        match (&c.tree, c.rules.is_empty()) {
            (None, _) => println!(
                "  {} -> {}: unconditional (no outputs logged)",
                c.from, c.to
            ),
            (Some(_), true) => println!("  {} -> {}: never taken", c.from, c.to),
            (Some(_), false) => {
                let rules: Vec<String> = c.rules.iter().map(ToString::to_string).collect();
                println!(
                    "  {} -> {}: {} (training accuracy {:.2})",
                    c.from,
                    c.to,
                    rules.join("  OR  "),
                    c.train_accuracy
                );
            }
        }
    }
    println!("\n(planted: ManagerApproval iff amount>500; FraudCheck iff risk>70)");
}
