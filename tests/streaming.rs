//! Streaming-layer tests: the `--follow` pipeline (FlowmarkSource →
//! CaseAssembler → OnlineMiner) against batch mining.
//!
//! * proptest parity: on clean logs — with cases arbitrarily
//!   interleaved in the event stream — online mining produces the same
//!   edge set *and the same edge-support counts* as batch mining the
//!   materialized log;
//! * corruption fuzz: the interleaved assembler survives corrupted
//!   streams under all three `RecoveryPolicy` variants;
//! * eviction: memory stays bounded by the open-case window.

use procmine::log::stream::{
    AssemblerConfig, CaseAssembler, FlowmarkSource, Observer, StreamError, StreamSink,
};
use procmine::log::validate::AssemblyPolicy;
use procmine::log::{
    codec::flowmark, ActivityTable, EventKind, EventRecord, Execution, LogError, RecoveryPolicy,
    WorkflowLog,
};
use procmine::mine::{mine_general_dag, MinedModel, MinerOptions, OnlineMiner, SnapshotPolicy};
use proptest::prelude::*;

/// Strategy: a random log of executions over activities `A`..`J`
/// (shuffled subsets wrapped in fixed start/end activities — the same
/// shape as tests/properties.rs).
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

/// Serializes `log` as flowmark text with the cases *interleaved*:
/// `picks` decides, event slot by event slot, which still-unfinished
/// case contributes the next record. Relative event order within each
/// case is preserved (START before END, instance order), which is all
/// the assembler requires.
fn interleaved_flowmark(log: &WorkflowLog, picks: &[usize]) -> String {
    let table = log.activities();
    let mut queues: Vec<Vec<EventRecord>> = log
        .executions()
        .iter()
        .map(|exec| {
            let mut events = Vec::new();
            for inst in exec.instances() {
                let name = table.name(inst.activity);
                events.push(EventRecord::start(&exec.id, name, inst.start));
                events.push(EventRecord::end(&exec.id, name, inst.end, None));
            }
            events.reverse(); // pop() from the back = front of the case
            events
        })
        .collect();
    let mut out = String::new();
    let mut emit = |e: EventRecord| {
        let kind = match e.kind {
            EventKind::Start => "START",
            EventKind::End => "END",
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            e.process, e.activity, kind, e.time
        ));
    };
    for &pick in picks {
        // Choose among the still-non-empty queues, wrapping the pick.
        let live: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        let q = live[pick % live.len()];
        if let Some(e) = queues[q].pop() {
            emit(e);
        }
    }
    for q in &mut queues {
        while let Some(e) = q.pop() {
            emit(e);
        }
    }
    out
}

/// Sorted `(from, to, support)` triples, names resolved so models with
/// different interning orders compare equal.
fn support_triples(model: &MinedModel) -> Vec<(String, String, u32)> {
    let mut triples: Vec<(String, String, u32)> = model
        .edge_support()
        .iter()
        .map(|&(u, v, c)| {
            let name = |i: usize| model.name_of(procmine::graph::NodeId::new(i)).to_string();
            (name(u), name(v), c)
        })
        .collect();
    triples.sort();
    triples
}

/// Runs the full follow pipeline over flowmark `text` and returns the
/// final model (plus executions absorbed).
fn mine_following(
    text: &str,
    policy: RecoveryPolicy,
    max_open_cases: usize,
) -> Result<(MinedModel, usize), StreamError> {
    let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
    let mut source = FlowmarkSource::new(text.as_bytes(), policy);
    let mut assembler = CaseAssembler::new(
        AssemblerConfig {
            max_open_cases,
            assembly: if policy.is_strict() {
                AssemblyPolicy::Strict
            } else {
                AssemblyPolicy::Lenient
            },
        },
        |exec: &Execution, table: &ActivityTable| -> Result<(), StreamError> {
            // Tolerate miner rejections (corruption can fabricate
            // repeats) the way the CLI does: skip the case.
            let _ = miner.absorb(exec, table);
            Ok(())
        },
    );
    source.pump(&mut assembler)?;
    drop(assembler);
    let executions = miner.executions();
    let model = miner
        .snapshot()
        .map_err(|e| StreamError::Sink(Box::new(e)))?;
    Ok((model, executions))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parity: online mining an interleaved stream == batch mining the
    /// materialized log — same edges, same support counts.
    #[test]
    fn follow_parity_with_batch(
        log in arb_log(10),
        picks in proptest::collection::vec(0usize..64, 0..200),
    ) {
        let text = interleaved_flowmark(&log, &picks);
        let batch_log = flowmark::read_log(text.as_bytes()).unwrap();
        let batch = mine_general_dag(&batch_log, &MinerOptions::default()).unwrap();
        // Window comfortably above the interleaving depth: no complete
        // case is ever split.
        let (online, executions) =
            mine_following(&text, RecoveryPolicy::Strict, 1024).unwrap();
        prop_assert_eq!(executions, log.len());
        prop_assert_eq!(support_triples(&online), support_triples(&batch));
    }

    /// The interleaved assembler survives corrupted streams under all
    /// three recovery policies: no panics, bounded behavior, and under
    /// `Skip` any give-up is the budget error.
    #[test]
    fn assembler_survives_corruption_under_all_policies(
        log in arb_log(6),
        picks in proptest::collection::vec(0usize..64, 0..100),
        rate_per_mille in 1u32..50,
        seed in 0u64..=u64::MAX,
    ) {
        use procmine::log::fault::{corrupt_bytes, FaultConfig};
        let clean = interleaved_flowmark(&log, &picks);
        let rate = f64::from(rate_per_mille) / 1000.0;
        let dirty = corrupt_bytes(clean.as_bytes(), &FaultConfig::bit_flips(rate, seed));
        let text = String::from_utf8_lossy(&dirty).into_owned();

        for policy in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Skip { max_errors: 4 },
            RecoveryPolicy::BestEffort,
        ] {
            match mine_following(&text, policy, 1024) {
                Ok(_) => {}
                Err(StreamError::Log(e)) => {
                    if let RecoveryPolicy::Skip { .. } = policy {
                        // Mid-stream give-up must be the budget error;
                        // only a corrupted *unterminated tail* may
                        // surface as UnexpectedEof instead.
                        prop_assert!(
                            matches!(
                                e,
                                LogError::TooManyErrors { .. } | LogError::UnexpectedEof { .. }
                            ),
                            "Skip surfaced {e:?}"
                        );
                    }
                }
                // Snapshot of an empty miner (everything corrupted away).
                Err(StreamError::Sink(_)) => {}
            }
        }
    }
}

/// Memory stays bounded by the open-case window: a horde of
/// never-completing cases cannot grow the assembler past the bound, and
/// each eviction is reported.
#[test]
fn eviction_bounds_memory_under_never_completing_cases() {
    const WINDOW: usize = 8;
    const CASES: usize = 100;
    let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
    let mut assembler = CaseAssembler::new(
        AssemblerConfig {
            max_open_cases: WINDOW,
            assembly: AssemblyPolicy::Lenient,
        },
        |exec: &Execution, table: &ActivityTable| -> Result<(), StreamError> {
            miner
                .absorb(exec, table)
                .map(|_| ())
                .map_err(|e| StreamError::Sink(Box::new(e)))
        },
    );
    for i in 0..CASES {
        let case = format!("case-{i}");
        // One complete instance (salvageable) …
        assembler
            .on_event(EventRecord::start(&case, "A", 0), Default::default())
            .unwrap();
        assembler
            .on_event(EventRecord::end(&case, "A", 1, None), Default::default())
            .unwrap();
        // … and a START that never ends: the case stays open forever.
        assembler
            .on_event(EventRecord::start(&case, "B", 2), Default::default())
            .unwrap();
        assert!(
            assembler.open_cases() <= WINDOW,
            "open cases {} exceeded the window at case {i}",
            assembler.open_cases()
        );
    }
    assembler.finish().unwrap();
    let report = assembler.report().clone();
    assert_eq!(
        report.cases_evicted as usize,
        CASES - WINDOW,
        "every case beyond the window was evicted incomplete"
    );
    assert_eq!(
        report.records_skipped as usize, CASES,
        "each case drops exactly its dangling START"
    );
    drop(assembler);
    // Every salvaged fragment still reached the miner.
    assert_eq!(miner.executions(), CASES);
    let model = miner.snapshot().unwrap();
    assert_eq!(model.activity_count(), 1, "only the completed A survives");
}

/// An eviction callback fires for cases cut down by the memory bound.
#[test]
fn eviction_notices_reach_the_observer() {
    struct Notice {
        evicted: Vec<String>,
    }
    impl Observer for &mut Notice {
        fn on_execution(
            &mut self,
            _exec: &Execution,
            _table: &ActivityTable,
        ) -> Result<(), StreamError> {
            Ok(())
        }
        fn on_eviction(&mut self, case: &str, _buffered: usize) {
            self.evicted.push(case.to_string());
        }
    }
    let mut notice = Notice { evicted: vec![] };
    let mut assembler = CaseAssembler::new(
        AssemblerConfig {
            max_open_cases: 1,
            assembly: AssemblyPolicy::Lenient,
        },
        &mut notice,
    );
    assembler
        .on_event(EventRecord::start("p1", "A", 0), Default::default())
        .unwrap();
    assembler
        .on_event(EventRecord::start("p2", "A", 0), Default::default())
        .unwrap();
    assembler.finish().unwrap();
    drop(assembler);
    assert_eq!(notice.evicted, vec!["p1".to_string()]);
}
