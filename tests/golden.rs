//! Golden-file tests: deterministic end-to-end outputs (mined DOT
//! graphs, BPMN export, learned rules) compared byte-for-byte against
//! checked-in references in `tests/golden/`.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use procmine::classify::{learn_edge_conditions, TreeConfig};
use procmine::log::WorkflowLog;
use procmine::mine::splits::analyze_gateways;
use procmine::mine::{bpmn, mine_auto, MinerOptions};
use procmine::sim::{annotate, engine, presets};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "output drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn example6_dot() {
    let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    check("example6.dot", &model.to_dot("example6"));
}

#[test]
fn example8_cyclic_dot() {
    let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    check("example8.dot", &model.to_dot("example8"));
}

#[test]
fn graph10_recovered_dot() {
    let annotated = annotate::with_xor_conditions(&presets::graph10());
    let mut rng = StdRng::seed_from_u64(7);
    let log = engine::generate_log(&annotated, 100, &mut rng).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    check("graph10_mined.dot", &model.to_dot("Graph10"));
}

#[test]
fn order_fulfillment_bpmn() {
    let process = presets::order_fulfillment();
    let mut rng = StdRng::seed_from_u64(2026);
    let log = engine::generate_log(&process, 300, &mut rng).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let gateways = analyze_gateways(&model, &log);
    check(
        "order_fulfillment.bpmn",
        &bpmn::to_bpmn_xml(&model, &gateways, "order_fulfillment"),
    );
}

#[test]
fn order_fulfillment_rules() {
    let process = presets::order_fulfillment();
    let mut rng = StdRng::seed_from_u64(2026);
    let log = engine::generate_log(&process, 300, &mut rng).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    let learned = learn_edge_conditions(&model, &log, &TreeConfig::default());
    let mut text = String::new();
    for c in &learned {
        text.push_str(&format!("{} -> {}:", c.from, c.to));
        if c.rules.is_empty() {
            text.push_str(" <no positive rules>");
        }
        for r in &c.rules {
            text.push_str(&format!(" [{r}]"));
        }
        text.push('\n');
    }
    check("order_fulfillment.rules", &text);
}

#[test]
fn support_annotated_dot() {
    let log = WorkflowLog::from_strings(["ABCE", "ABCE", "ABCE", "ACDE", "ADBE"]).unwrap();
    let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
    check("support.dot", &model.to_dot_with_support("support"));
}
