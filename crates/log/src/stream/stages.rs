//! Composable [`StreamSink`] adapters.
//!
//! Each stage wraps a downstream sink and forwards (possibly
//! transformed) events to it; [`StreamSink::finish`] always propagates,
//! so a chain flushes end to end. Stages hold O(1) state — they never
//! buffer the stream.

use super::{SourceLocation, StreamError, StreamSink};
use crate::{EventKind, EventRecord};

/// Forwards only events matching a predicate.
///
/// Dropped events are counted but not reported: filtering is a
/// deliberate consumer choice, not noise.
pub struct Filter<S, F> {
    inner: S,
    predicate: F,
    dropped: u64,
}

impl<S: StreamSink, F: FnMut(&EventRecord) -> bool> Filter<S, F> {
    /// Wraps `inner`, forwarding only events for which `predicate`
    /// returns `true`.
    pub fn new(inner: S, predicate: F) -> Self {
        Filter {
            inner,
            predicate,
            dropped: 0,
        }
    }

    /// Events dropped by the predicate so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Unwraps the downstream sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StreamSink, F: FnMut(&EventRecord) -> bool> StreamSink for Filter<S, F> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        if (self.predicate)(&event) {
            self.inner.on_event(event, at)
        } else {
            self.dropped += 1;
            Ok(())
        }
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        self.inner.finish()
    }
}

/// Drops consecutive exact-duplicate records — the classic
/// at-least-once-delivery artifact of log shippers. Only *adjacent*
/// duplicates are folded, so memory stays O(1).
pub struct Repair<S> {
    inner: S,
    last: Option<EventRecord>,
    deduplicated: u64,
}

impl<S: StreamSink> Repair<S> {
    /// Wraps `inner` with adjacent-duplicate folding.
    pub fn new(inner: S) -> Self {
        Repair {
            inner,
            last: None,
            deduplicated: 0,
        }
    }

    /// Duplicate events folded so far.
    pub fn deduplicated(&self) -> u64 {
        self.deduplicated
    }

    /// Unwraps the downstream sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StreamSink> StreamSink for Repair<S> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        if self.last.as_ref() == Some(&event) {
            self.deduplicated += 1;
            return Ok(());
        }
        self.last = Some(event.clone());
        self.inner.on_event(event, at)
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        self.inner.finish()
    }
}

/// Drops structurally unusable records — empty case or activity names —
/// that would otherwise pollute the open-case map with a garbage key.
pub struct Validate<S> {
    inner: S,
    rejected: u64,
}

impl<S: StreamSink> Validate<S> {
    /// Wraps `inner` with structural validation.
    pub fn new(inner: S) -> Self {
        Validate { inner, rejected: 0 }
    }

    /// Events rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Unwraps the downstream sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StreamSink> StreamSink for Validate<S> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        if event.process.is_empty() || event.activity.is_empty() {
            self.rejected += 1;
            return Ok(());
        }
        self.inner.on_event(event, at)
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        self.inner.finish()
    }
}

/// Running tallies over the event stream, kept by the [`Stats`] stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events forwarded.
    pub events: u64,
    /// START events forwarded.
    pub starts: u64,
    /// END events forwarded.
    pub ends: u64,
    /// Smallest timestamp seen.
    pub min_time: Option<u64>,
    /// Largest timestamp seen.
    pub max_time: Option<u64>,
}

/// Transparent stage that tallies the events flowing through it.
pub struct Stats<S> {
    inner: S,
    stats: StreamStats,
}

impl<S: StreamSink> Stats<S> {
    /// Wraps `inner` with event tallying.
    pub fn new(inner: S) -> Self {
        Stats {
            inner,
            stats: StreamStats::default(),
        }
    }

    /// The tallies so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Unwraps the downstream sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StreamSink> StreamSink for Stats<S> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        self.stats.events += 1;
        match event.kind {
            EventKind::Start => self.stats.starts += 1,
            EventKind::End => self.stats.ends += 1,
        }
        self.stats.min_time = Some(
            self.stats
                .min_time
                .map_or(event.time, |t| t.min(event.time)),
        );
        self.stats.max_time = Some(
            self.stats
                .max_time
                .map_or(event.time, |t| t.max(event.time)),
        );
        self.inner.on_event(event, at)
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every event it receives, plus whether finish was called.
    struct Collect {
        events: Vec<EventRecord>,
        finished: bool,
    }

    impl Collect {
        fn new() -> Self {
            Collect {
                events: Vec::new(),
                finished: false,
            }
        }
    }

    impl StreamSink for Collect {
        fn on_event(&mut self, event: EventRecord, _at: SourceLocation) -> Result<(), StreamError> {
            self.events.push(event);
            Ok(())
        }

        fn finish(&mut self) -> Result<(), StreamError> {
            self.finished = true;
            Ok(())
        }
    }

    fn at() -> SourceLocation {
        SourceLocation::default()
    }

    #[test]
    fn filter_drops_and_counts() {
        let mut stage = Filter::new(Collect::new(), |e: &EventRecord| e.activity != "noise");
        stage
            .on_event(EventRecord::start("p", "A", 0), at())
            .unwrap();
        stage
            .on_event(EventRecord::start("p", "noise", 1), at())
            .unwrap();
        stage.finish().unwrap();
        assert_eq!(stage.dropped(), 1);
        let inner = stage.into_inner();
        assert_eq!(inner.events.len(), 1);
        assert!(inner.finished);
    }

    #[test]
    fn repair_folds_adjacent_duplicates_only() {
        let mut stage = Repair::new(Collect::new());
        let e = EventRecord::start("p", "A", 0);
        stage.on_event(e.clone(), at()).unwrap();
        stage.on_event(e.clone(), at()).unwrap(); // duplicate: folded
        stage
            .on_event(EventRecord::end("p", "A", 1, None), at())
            .unwrap();
        stage.on_event(e.clone(), at()).unwrap(); // not adjacent: kept
        assert_eq!(stage.deduplicated(), 1);
        assert_eq!(stage.into_inner().events.len(), 3);
    }

    #[test]
    fn validate_rejects_empty_names() {
        let mut stage = Validate::new(Collect::new());
        stage
            .on_event(EventRecord::start("", "A", 0), at())
            .unwrap();
        stage
            .on_event(EventRecord::start("p", "", 0), at())
            .unwrap();
        stage
            .on_event(EventRecord::start("p", "A", 0), at())
            .unwrap();
        assert_eq!(stage.rejected(), 2);
        assert_eq!(stage.into_inner().events.len(), 1);
    }

    #[test]
    fn stats_tally_kinds_and_time_range() {
        let mut stage = Stats::new(Collect::new());
        stage
            .on_event(EventRecord::start("p", "A", 7), at())
            .unwrap();
        stage
            .on_event(EventRecord::end("p", "A", 9, None), at())
            .unwrap();
        let s = stage.stats();
        assert_eq!((s.events, s.starts, s.ends), (2, 1, 1));
        assert_eq!((s.min_time, s.max_time), (Some(7), Some(9)));
    }
}
