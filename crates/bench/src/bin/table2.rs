//! Table 2 — number of edges in synthesized vs. original graphs.
//!
//! The paper's numbers:
//!
//! ```text
//! vertices          10    25     50    100
//! edges present     24   224   1058   4569
//! found @   100     24   172    791   1638
//! found @  1000     24   224   1053   3712
//! found @ 10000     24   224   1076   4301
//! ```
//!
//! The shape to reproduce: small graphs are recovered exactly with few
//! executions; large graphs converge toward the generating edge count as
//! the log grows (from below at first, possibly overshooting into a
//! supergraph — the paper saw 1076 > 1058 at 50 vertices); the largest
//! graph is still short of fully recovered at 10 000 executions.
//! Run with `--release`.

use procmine_bench::{
    paper_execution_counts, paper_graph_configs, synthetic_workload, timed_mine, TextTable,
};
use procmine_core::metrics::compare_models;
use procmine_core::MinedModel;

fn main() {
    println!("Table 2: edges in synthesized vs. original graphs\n");
    let configs = paper_graph_configs();
    let mut headers = vec!["".to_string()];
    headers.extend(configs.iter().map(|(n, _)| format!("n={n}")));
    let mut table = TextTable::new(headers);

    // Edges present in the generating graphs (one fixed graph per size,
    // shared across all log sizes, as in the paper).
    let mut present_row = vec!["edges present".to_string()];
    let mut models = Vec::new();
    for (i, &(n, edges)) in configs.iter().enumerate() {
        let (model, _) = synthetic_workload(n, edges, 1, 2000 + i as u64);
        present_row.push(format!("{}", model.edge_count()));
        models.push(model);
    }
    table.row(present_row);

    for &m in &paper_execution_counts() {
        let mut row = vec![format!("found @ {m}")];
        for (i, &(n, edges)) in configs.iter().enumerate() {
            let (_, log) = synthetic_workload(n, edges, m, 2000 + i as u64);
            let (mined, _) = timed_mine(&log);
            row.push(format!("{}", mined.edge_count()));
        }
        table.row(row);
    }
    println!("{}", table.render());

    // Recovery quality at the largest log size.
    println!("recovery vs. ground truth at m=10000:");
    for (i, &(n, edges)) in configs.iter().enumerate() {
        let (model, log) = synthetic_workload(n, edges, 10_000, 2000 + i as u64);
        let (mined, _) = timed_mine(&log);
        let reference = MinedModel::from_graph(model.graph_clone());
        let r = compare_models(&reference, &mined).expect("same activity set");
        println!(
            "  n={n:>3}: precision {:.3}, recall {:.3}, exact={}, closure-equal={}, supergraph={}",
            r.diff.precision(),
            r.diff.recall(),
            r.exact,
            r.closure_equal,
            r.supergraph
        );
    }
}
