//! Corruption fuzzing across all four codecs: arbitrary truncation,
//! bit rot, and garbage bursts must never panic; `Strict` must report
//! the first decode error with its byte offset; recovering policies
//! must salvage everything parsable and account for every record they
//! drop. Deterministic regressions carry a `smoke_` prefix so `ci.sh`
//! can run them as a fast subset.

use procmine::log::codec::{flowmark, jsonl, seqs, xes, CodecStats};
use procmine::log::fault::{corrupt_bytes, corrupt_whole_lines, FaultConfig, FaultReader};
use procmine::log::{IngestReport, LogError, RecoveryPolicy, WorkflowLog};
use proptest::prelude::*;
use std::io::BufReader;

type DecodeFn = fn(&[u8], RecoveryPolicy, &mut IngestReport) -> Result<WorkflowLog, LogError>;
type EncodeFn = fn(&WorkflowLog) -> Vec<u8>;

/// Encode/decode pairs for every codec, named for failure messages.
fn codecs() -> Vec<(&'static str, EncodeFn, DecodeFn)> {
    fn enc_flowmark(log: &WorkflowLog) -> Vec<u8> {
        let mut b = Vec::new();
        flowmark::write_log(log, &mut b).unwrap();
        b
    }
    fn enc_seqs(log: &WorkflowLog) -> Vec<u8> {
        let mut b = Vec::new();
        seqs::write_log(log, &mut b).unwrap();
        b
    }
    fn enc_jsonl(log: &WorkflowLog) -> Vec<u8> {
        let mut b = Vec::new();
        jsonl::write_log(log, &mut b).unwrap();
        b
    }
    fn enc_xes(log: &WorkflowLog) -> Vec<u8> {
        let mut b = Vec::new();
        xes::write_log(log, &mut b).unwrap();
        b
    }
    fn dec_flowmark(
        data: &[u8],
        p: RecoveryPolicy,
        r: &mut IngestReport,
    ) -> Result<WorkflowLog, LogError> {
        flowmark::read_log_with(data, p, &mut CodecStats::default(), r)
    }
    fn dec_seqs(
        data: &[u8],
        p: RecoveryPolicy,
        r: &mut IngestReport,
    ) -> Result<WorkflowLog, LogError> {
        seqs::read_log_with(data, p, &mut CodecStats::default(), r)
    }
    fn dec_jsonl(
        data: &[u8],
        p: RecoveryPolicy,
        r: &mut IngestReport,
    ) -> Result<WorkflowLog, LogError> {
        jsonl::read_log_with(data, p, &mut CodecStats::default(), r)
    }
    fn dec_xes(
        data: &[u8],
        p: RecoveryPolicy,
        r: &mut IngestReport,
    ) -> Result<WorkflowLog, LogError> {
        xes::read_log_with(data, p, &mut CodecStats::default(), r)
    }
    vec![
        ("flowmark", enc_flowmark, dec_flowmark),
        ("seqs", enc_seqs, dec_seqs),
        ("jsonl", enc_jsonl, dec_jsonl),
        ("xes", enc_xes, dec_xes),
    ]
}

/// Strategy: a random log over activities `B`..`I` framed by `A`/`J`.
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central robustness property: no corruption pattern panics
    /// any codec; `Strict` failures leave a located first error in the
    /// report; `BestEffort` always comes back with a (possibly empty)
    /// log.
    #[test]
    fn corrupted_streams_never_panic(
        log in arb_log(8),
        seed in 0u64..1_000,
        flips_per_mille in 0u64..50,
        cut in 0usize..2_048,
    ) {
        let flip_rate = flips_per_mille as f64 / 1_000.0;
        for (name, enc, dec) in codecs() {
            let clean = enc(&log);
            let corpora = [
                corrupt_bytes(&clean, &FaultConfig::truncated(cut.min(clean.len()) as u64)),
                corrupt_bytes(&clean, &FaultConfig::bit_flips(flip_rate, seed)),
                corrupt_bytes(&clean, &FaultConfig {
                    seed,
                    garbage_rate: 0.2,
                    ..FaultConfig::default()
                }),
            ];
            for corrupted in &corpora {
                let mut report = IngestReport::default();
                let strict = dec(corrupted, RecoveryPolicy::Strict, &mut report);
                if strict.is_err() {
                    prop_assert!(
                        report.errors_total >= 1,
                        "{name}: strict error was not recorded"
                    );
                    prop_assert!(
                        report.errors[0].byte_offset <= corrupted.len() as u64,
                        "{name}: error offset {} beyond input of {} bytes",
                        report.errors[0].byte_offset,
                        corrupted.len()
                    );
                }

                let mut report = IngestReport::default();
                let best = dec(corrupted, RecoveryPolicy::BestEffort, &mut report);
                prop_assert!(
                    best.is_ok(),
                    "{name}: BestEffort must salvage, got {:?}",
                    best.err()
                );
                prop_assert!(
                    report.errors.len() as u64 <= report.errors_total,
                    "{name}: recorded more errors than counted"
                );
            }
        }
    }

    /// The streaming path survives the same corpora: corrupted bytes
    /// through `ExecutionStream` yield per-case `Err` items (strict)
    /// or counted skips (BestEffort) — never a panic — and the
    /// stream's report stays consistent with what the iterator saw.
    #[test]
    fn corrupted_execution_streams_never_panic(
        log in arb_log(8),
        seed in 0u64..1_000,
        flips_per_mille in 1u64..30,
    ) {
        use procmine::log::codec::stream::ExecutionStream;
        let mut clean = Vec::new();
        flowmark::write_log(&log, &mut clean).unwrap();
        let corrupted = corrupt_bytes(
            &clean,
            &FaultConfig::bit_flips(flips_per_mille as f64 / 1_000.0, seed),
        );
        for policy in [RecoveryPolicy::Strict, RecoveryPolicy::BestEffort] {
            let mut stream = ExecutionStream::with_policy(corrupted.as_slice(), policy);
            let mut yielded_errors = 0u64;
            for result in stream.by_ref() {
                if result.is_err() {
                    yielded_errors += 1;
                }
            }
            let report = stream.report();
            if policy.is_strict() {
                // Every recorded decode error is yielded; assembly
                // failures (unpaired events) yield extra Err items.
                prop_assert!(
                    yielded_errors >= report.errors_total,
                    "strict: {} Err items < {} recorded decode errors",
                    yielded_errors,
                    report.errors_total
                );
            } else {
                prop_assert_eq!(yielded_errors, 0, "BestEffort yields no Err items");
                // Skips cover decode errors plus lenient-assembly drops.
                prop_assert!(report.records_skipped >= report.errors_total);
            }
        }
    }

    /// `Skip {{ max_errors }}` is exact: a budget at least as large as
    /// the BestEffort error count succeeds with identical accounting; a
    /// smaller budget fails with `TooManyErrors`.
    #[test]
    fn skip_budget_is_exact(log in arb_log(6), seed in 0u64..1_000) {
        for (name, enc, dec) in codecs() {
            let clean = enc(&log);
            let corrupted = corrupt_bytes(&clean, &FaultConfig::bit_flips(0.01, seed));
            let mut best_report = IngestReport::default();
            dec(&corrupted, RecoveryPolicy::BestEffort, &mut best_report).unwrap();
            let errors = best_report.errors_total;

            let mut report = IngestReport::default();
            let within = dec(
                &corrupted,
                RecoveryPolicy::Skip { max_errors: errors },
                &mut report,
            );
            prop_assert!(within.is_ok(), "{name}: budget == errors must pass");
            prop_assert_eq!(report.errors_total, errors, "{}", name);

            if errors > 0 {
                let mut report = IngestReport::default();
                let over = dec(
                    &corrupted,
                    RecoveryPolicy::Skip { max_errors: errors - 1 },
                    &mut report,
                );
                prop_assert!(
                    matches!(over, Err(LogError::TooManyErrors { .. })),
                    "{name}: budget < errors must fail, got {over:?}"
                );
            }
        }
    }
}

/// A ten-execution reference log whose encodings have plenty of lines.
fn reference_log() -> WorkflowLog {
    WorkflowLog::from_strings([
        "ABCF", "ACDF", "ADEF", "AECF", "ABDF", "ACEF", "ABEF", "ADCF", "AEBF", "ABCF",
    ])
    .unwrap()
}

#[test]
fn smoke_whole_line_corruption_counts_match_injected_faults() {
    // Line-oriented codecs with real per-line syntax: each corrupted
    // line is exactly one decode error, reported at its byte offset.
    let log = reference_log();
    for (name, enc, dec) in codecs() {
        if name != "flowmark" && name != "jsonl" {
            continue;
        }
        let clean = enc(&log);
        for k in [1usize, 3, 5] {
            let (corrupted, offsets) = corrupt_whole_lines(&clean, k, 99);
            assert_eq!(offsets.len(), k, "{name}: not enough corruptible lines");
            let mut report = IngestReport::default();
            let salvaged = dec(&corrupted, RecoveryPolicy::BestEffort, &mut report).unwrap();
            assert_eq!(
                report.errors_total, k as u64,
                "{name}/k={k}: errors must match injected faults"
            );
            assert!(
                report.records_skipped >= k as u64,
                "{name}/k={k}: skipped records must cover the bad lines"
            );
            let reported: Vec<u64> = report.errors.iter().map(|e| e.byte_offset).collect();
            assert_eq!(reported, offsets, "{name}/k={k}: error offsets");
            assert!(
                salvaged.len() < log.len() || name == "flowmark",
                "{name}/k={k}: some execution must have been lost"
            );
        }
    }
}

#[test]
fn smoke_strict_reports_first_error_with_byte_offset() {
    let log = reference_log();
    let mut clean = Vec::new();
    flowmark::write_log(&log, &mut clean).unwrap();
    let (corrupted, offsets) = corrupt_whole_lines(&clean, 2, 7);
    let mut report = IngestReport::default();
    let err = flowmark::read_log_with(
        corrupted.as_slice(),
        RecoveryPolicy::Strict,
        &mut CodecStats::default(),
        &mut report,
    )
    .unwrap_err();
    assert!(matches!(err, LogError::Parse { .. }), "got {err:?}");
    assert_eq!(report.errors_total, 1, "strict stops at the first error");
    assert_eq!(report.errors[0].byte_offset, offsets[0]);
}

#[test]
fn smoke_truncation_is_eof_not_parse_error() {
    // Cutting a flowmark or jsonl stream mid-record must be reported as
    // truncation (UnexpectedEof), not as a garbage line, and a
    // recovering read must still salvage the complete prefix.
    let log = reference_log();
    for (name, enc, dec) in codecs() {
        if name != "flowmark" && name != "jsonl" {
            continue;
        }
        let clean = enc(&log);
        // Cut 3 bytes into the last line.
        let last_line_start = clean[..clean.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap();
        let truncated = &clean[..last_line_start + 3];

        let mut report = IngestReport::default();
        let err = dec(truncated, RecoveryPolicy::Strict, &mut report).unwrap_err();
        match err {
            LogError::UnexpectedEof { byte_offset, .. } => {
                assert_eq!(byte_offset, last_line_start as u64, "{name}")
            }
            other => panic!("{name}: expected UnexpectedEof, got {other:?}"),
        }

        let mut report = IngestReport::default();
        let salvaged = dec(truncated, RecoveryPolicy::BestEffort, &mut report).unwrap();
        assert!(!salvaged.is_empty(), "{name}: prefix must be salvaged");
        assert_eq!(report.errors_total, 1, "{name}");
    }
}

#[test]
fn smoke_truncated_xes_salvages_complete_traces() {
    let log = reference_log();
    let mut clean = Vec::new();
    xes::write_log(&log, &mut clean).unwrap();
    // Cut the document in half: mid-trace, missing the closing tags.
    let truncated = &clean[..clean.len() / 2];

    let mut report = IngestReport::default();
    assert!(xes::read_log_with(
        truncated,
        RecoveryPolicy::Strict,
        &mut CodecStats::default(),
        &mut report,
    )
    .is_err());

    let mut report = IngestReport::default();
    let salvaged = xes::read_log_with(
        truncated,
        RecoveryPolicy::BestEffort,
        &mut CodecStats::default(),
        &mut report,
    )
    .unwrap();
    assert!(
        !salvaged.is_empty() && salvaged.len() < log.len(),
        "salvaged {} of {} traces",
        salvaged.len(),
        log.len()
    );
}

#[test]
fn smoke_seqs_truncation_is_silent_by_design() {
    // Any prefix of a seqs line is itself a valid sequence, so
    // truncation cannot be detected — the documented trade-off of the
    // format. The read must still succeed.
    let log = reference_log();
    let mut clean = Vec::new();
    seqs::write_log(&log, &mut clean).unwrap();
    let truncated = &clean[..clean.len() - 3];
    let mut report = IngestReport::default();
    let back = seqs::read_log_with(
        truncated,
        RecoveryPolicy::Strict,
        &mut CodecStats::default(),
        &mut report,
    )
    .unwrap();
    assert_eq!(back.len(), log.len());
    assert_eq!(report.errors_total, 0);
}

#[test]
fn smoke_mid_stream_io_errors_are_fatal_under_every_policy() {
    // An I/O fault is infrastructure failure, not data corruption: no
    // policy may paper over it.
    let log = reference_log();
    let mut clean = Vec::new();
    flowmark::write_log(&log, &mut clean).unwrap();
    for policy in [
        RecoveryPolicy::Strict,
        RecoveryPolicy::Skip { max_errors: 1_000 },
        RecoveryPolicy::BestEffort,
    ] {
        let cfg = FaultConfig {
            io_error_at: Some(clean.len() as u64 / 2),
            ..FaultConfig::default()
        };
        let reader = BufReader::new(FaultReader::new(clean.as_slice(), cfg));
        let mut report = IngestReport::default();
        let result =
            flowmark::read_log_with(reader, policy, &mut CodecStats::default(), &mut report);
        assert!(
            matches!(result, Err(LogError::Io(_))),
            "{policy:?}: got {result:?}"
        );
    }
}
