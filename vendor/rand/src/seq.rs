//! Sequence helpers (`shuffle`, `choose`), matching rand 0.8's
//! sampling order.

use crate::{Rng, RngCore};

/// rand 0.8 `gen_index`: uses the u32 sampling path for small upper
/// bounds, which affects the consumed word stream.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) + 1 {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, descending, exactly
    /// as rand 0.8).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
