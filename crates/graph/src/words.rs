//! Set operations on raw packed-bit word rows.
//!
//! [`crate::AdjMatrix`] rows and [`crate::arena::Arena`] blocks are
//! plain `[u64]` slices; these free functions give them the same
//! vocabulary as [`crate::BitSet`] without wrapping them in an owning
//! type. Bit `i` of a row lives in word `i / 64`, position `i % 64`;
//! callers guarantee `i` is within the row's capacity (the slice length
//! bounds-checks the word index).

const BITS: usize = u64::BITS as usize;

/// Sets bit `bit` in `row`.
#[inline]
pub fn insert(row: &mut [u64], bit: usize) {
    row[bit / BITS] |= 1u64 << (bit % BITS);
}

/// Clears bit `bit` in `row`.
#[inline]
pub fn remove(row: &mut [u64], bit: usize) {
    row[bit / BITS] &= !(1u64 << (bit % BITS));
}

/// Tests bit `bit` of `row`.
#[inline]
pub fn contains(row: &[u64], bit: usize) -> bool {
    row[bit / BITS] & (1u64 << (bit % BITS)) != 0
}

/// `dst |= src`. Panics if the rows differ in width.
#[inline]
pub fn union(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row width mismatch");
    for (a, b) in dst.iter_mut().zip(src) {
        *a |= b;
    }
}

/// `dst &= !src` (set difference). Panics if the rows differ in width.
#[inline]
pub fn difference(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row width mismatch");
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= !b;
    }
}

/// `true` if any bit of `row` is set.
#[inline]
pub fn any(row: &[u64]) -> bool {
    row.iter().any(|&w| w != 0)
}

/// Number of set bits in `row`.
#[inline]
pub fn count(row: &[u64]) -> usize {
    row.iter().map(|w| w.count_ones() as usize).sum()
}

/// Iterates the set bits of `row` in increasing order.
pub fn ones(row: &[u64]) -> WordOnes<'_> {
    WordOnes {
        words: row,
        word_idx: 0,
        bits: row.first().copied().unwrap_or(0),
    }
}

/// Iterator over set bits of a word row, in increasing order.
pub struct WordOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    bits: u64,
}

impl Iterator for WordOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word_idx];
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word_idx * BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_across_word_boundary() {
        let mut row = vec![0u64; 3];
        insert(&mut row, 0);
        insert(&mut row, 63);
        insert(&mut row, 64);
        insert(&mut row, 130);
        assert!(contains(&row, 0) && contains(&row, 63));
        assert!(contains(&row, 64) && contains(&row, 130));
        assert!(!contains(&row, 1) && !contains(&row, 65));
        remove(&mut row, 64);
        assert!(!contains(&row, 64));
        assert_eq!(count(&row), 3);
    }

    #[test]
    fn union_and_difference() {
        let mut a = vec![0u64; 2];
        let mut b = vec![0u64; 2];
        for bit in [1usize, 2, 70] {
            insert(&mut a, bit);
        }
        for bit in [2usize, 3, 99] {
            insert(&mut b, bit);
        }
        union(&mut a, &b);
        assert_eq!(ones(&a).collect::<Vec<_>>(), vec![1, 2, 3, 70, 99]);
        difference(&mut a, &b);
        assert_eq!(ones(&a).collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn any_and_empty_iteration() {
        let row = vec![0u64; 2];
        assert!(!any(&row));
        assert_eq!(ones(&row).count(), 0);
        assert_eq!(ones(&[]).count(), 0);
        let mut row = row;
        insert(&mut row, 127);
        assert!(any(&row));
        assert_eq!(ones(&row).collect::<Vec<_>>(), vec![127]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn union_width_mismatch_panics() {
        let mut a = vec![0u64; 2];
        union(&mut a, &[0u64; 3]);
    }
}
